//! # devil — a reproduction of the Devil driver-robustness evaluation
//!
//! This facade crate re-exports the whole reproduction of
//! *Improving Driver Robustness: an Evaluation of the Devil Approach*
//! (Réveillère & Muller, DSN-2001 / INRIA RR-4136):
//!
//! * [`core`] — the Devil IDL: parser, layered consistency checker, C stub
//!   generator (debug and production modes) and an executable stub runtime.
//! * [`hwsim`] — register-accurate simulated peripherals (IDE disk, NE2000,
//!   Logitech busmouse, PCI, graphics, DMA, PIC) behind a port-mapped bus.
//! * [`minic`] — a C-subset compiler and interpreter standing in for
//!   gcc + kernel execution of the drivers.
//! * [`mutagen`] — the mutation-analysis engine (literal / operator /
//!   identifier mutation operators for Devil and C).
//! * [`kernel`] — the simulated kernel boot harness and outcome classifier.
//! * [`drivers`] — the experiment corpus: five Devil specifications and the
//!   C / CDevil IDE drivers.
//!
//! ## Quickstart
//!
//! ```
//! use devil::core::Spec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse("busmouse.dil", devil::drivers::specs::BUSMOUSE)?;
//! let checked = spec.check()?;
//! assert_eq!(checked.device_name(), "logitech_busmouse");
//! # Ok(())
//! # }
//! ```

pub use devil_core as core;
pub use devil_drivers as drivers;
pub use devil_hwsim as hwsim;
pub use devil_kernel as kernel;
pub use devil_minic as minic;
pub use devil_mutagen as mutagen;
