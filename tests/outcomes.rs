//! One hand-written faulty driver per outcome class: documents exactly
//! what kind of mutant lands in each row of Tables 3/4.

use devil::drivers::ide;
use devil::kernel::boot::{run_mutant, Detail, Outcome, DEFAULT_FUEL};
use devil::kernel::fs;

fn classify(source: &str) -> (Outcome, Detail) {
    run_mutant(ide::IDE_C_FILE, source, &[], None, &fs::standard_files(), DEFAULT_FUEL)
}

fn classify_with_line(source: &str, line: u32) -> (Outcome, Detail) {
    run_mutant(
        ide::IDE_C_FILE,
        source,
        &[],
        Some(line),
        &fs::standard_files(),
        DEFAULT_FUEL,
    )
}

#[test]
fn compile_check_row() {
    // An identifier typo that lands on an undeclared name.
    let bad = ide::IDE_C_DRIVER.replace("insw(HD_DATA, io_buf, 256);", "insw(HD_DATA, io_bufX, 256);");
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let (o, d) = classify(&bad);
    assert_eq!(o, Outcome::CompileCheck, "{d}");
}

#[test]
fn crash_row() {
    // A wild pointer: the classic silent killer.
    let bad = ide::IDE_C_DRIVER.replace(
        "insw(HD_DATA, io_buf, 256);",
        "insw(HD_DATA, (void *)0xdead0000, 256);",
    );
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let (o, d) = classify(&bad);
    assert_eq!(o, Outcome::Crash, "{d}");
}

#[test]
fn infinite_loop_row() {
    // Poll a status bit that never rises (write-fault instead of DRQ):
    // the unbounded DRQ wait spins forever.
    let bad = ide::IDE_C_DRIVER.replace(
        "if (inb(HD_STATUS) & ERR_STAT) return HD_FAIL(\"hd: read error\", -1);\n    while (!(inb(HD_STATUS) & DRQ_STAT)) inb(HD_STATUS);",
        "if (inb(HD_STATUS) & ERR_STAT) return HD_FAIL(\"hd: read error\", -1);\n    while (!(inb(HD_STATUS) & WRERR_STAT)) inb(HD_STATUS);",
    );
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let (o, d) = classify(&bad);
    assert_eq!(o, Outcome::InfiniteLoop, "{d}");
}

#[test]
fn halt_row() {
    // A command-byte typo the drive aborts: the driver reports an I/O
    // error, the kernel cannot mount root and panics.
    let bad = ide::IDE_C_DRIVER.replace("#define WIN_READ     0x20", "#define WIN_READ     0x2f");
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let (o, d) = classify(&bad);
    assert_eq!(o, Outcome::Halt, "{d}");
}

#[test]
fn damaged_boot_row() {
    // The write path targets a constant sector: the log lands on top of a
    // file — ground-truth fsck damage.
    let bad = ide::IDE_C_DRIVER.replace(
        "int ide_write(int lba)\n{\n    hd_out(1, lba & 0xff,",
        "int ide_write(int lba)\n{\n    hd_out(1, 1003 & 0xff,",
    );
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let (o, d) = classify(&bad);
    assert_eq!(o, Outcome::DamagedBoot, "{d}");
}

#[test]
fn boot_row_latent_error() {
    // A mask typo that is harmless for every LBA the boot touches — the
    // worst case: nothing notices.
    let bad = ide::IDE_C_DRIVER.replace("(lba >> 16) & 0xff,", "(lba >> 16) & 0xf7,");
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let (o, d) = classify(&bad);
    assert_eq!(o, Outcome::Boot, "{d}");
}

#[test]
fn dead_code_row() {
    // Mutate a line that never executes on a clean boot.
    let marker = "return (status & DRQ_STAT) ? 0 : HD_FAIL(\"hd: drive not responding\", -1);";
    let line = ide::IDE_C_DRIVER
        .lines()
        .position(|l| l.contains("hd: drive not responding"))
        .unwrap() as u32
        + 1;
    // The DRQ wait line itself executes; pick the unreachable diagnostics
    // in reset_controller instead? That line executes too. Use a new
    // never-taken branch to be explicit:
    let bad = ide::IDE_C_DRIVER.replace(
        marker,
        "if (retries == -12345) {\n        printk(\"hd: impossible\");\n    }\n    return (status & DRQ_STAT) ? 0 : HD_FAIL(\"hd: drive not responding\", -1);",
    );
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let dead_line = bad
        .lines()
        .position(|l| l.contains("hd: impossible"))
        .unwrap() as u32
        + 1;
    let (o, d) = classify_with_line(&bad, dead_line);
    assert_eq!(o, Outcome::DeadCode, "{d}");
    let _ = line;
}

#[test]
fn runtime_check_row_needs_devil() {
    // No C mutant can land in the run-time-check row; only the CDevil
    // driver's dil_* machinery produces it.
    let bad = ide::IDE_CDEVIL_DRIVER.replace(
        "if (dil_eq(get_drq(), DRQ_OFF))\n        return -1;",
        "if (dil_eq(get_drq(), SRST_ON))\n        return -1;",
    );
    assert_ne!(bad, ide::IDE_CDEVIL_DRIVER);
    let incs = ide::cdevil_includes();
    let incs_ref: Vec<(&str, &str)> =
        incs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    let (o, d) = run_mutant(
        ide::IDE_CDEVIL_FILE,
        &bad,
        &incs_ref,
        None,
        &fs::standard_files(),
        DEFAULT_FUEL,
    );
    assert_eq!(o, Outcome::RuntimeCheck, "{d}");
    assert!(d.contains("Devil assertion failed"), "{d}");
}
