//! End-to-end integration: specification → checker → codegen → minic
//! compile → simulated boot, across crates.

use devil::core::codegen::{generate, CodegenMode};
use devil::drivers::{ide, specs};
use devil::kernel::boot::{boot_ide, run_mutant, standard_ide_machine, Outcome, DEFAULT_FUEL};
use devil::kernel::fs;
use devil::mutagen::c::{CMutationModel, CStyle};
use devil::mutagen::devil::DevilMutationModel;

#[test]
fn every_bundled_spec_round_trips_through_codegen_and_minic() {
    for (name, file, src) in specs::all() {
        let checked = specs::compile(file, src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for mode in [CodegenMode::Debug, CodegenMode::Production, CodegenMode::DebugNoAsserts] {
            let c = generate(&checked, mode);
            // The generated header alone must be a valid translation unit.
            devil::minic::compile(file, &c)
                .unwrap_or_else(|e| panic!("{name} ({mode:?}): generated C does not compile: {e}"));
        }
    }
}

#[test]
fn both_ide_drivers_boot_identically_clean() {
    let files = fs::standard_files();
    for (file, src, includes) in [
        (ide::IDE_C_FILE, ide::IDE_C_DRIVER.to_string(), vec![]),
        (
            ide::IDE_CDEVIL_FILE,
            ide::IDE_CDEVIL_DRIVER.to_string(),
            ide::cdevil_includes(),
        ),
    ] {
        let incs: Vec<(&str, &str)> =
            includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let program = devil::minic::compile_with_includes(file, &src, &incs).unwrap();
        let (mut io, dev) = standard_ide_machine(&files);
        let report = boot_ide(&program, &mut io, dev, &files, DEFAULT_FUEL);
        assert_eq!(report.outcome, Outcome::Boot, "{file}: {}", report.detail);
    }
}

#[test]
fn devil_compiler_catches_most_spec_mutants() {
    // A quick slice of Table 2: sample the busmouse mutants.
    let model = DevilMutationModel::new(specs::BUSMOUSE).unwrap();
    let mutants = devil::mutagen::sample(model.mutants(), 0.2, 99);
    let detected = mutants
        .iter()
        .filter(|m| devil::core::compile("busmouse.dil", &m.source).is_err())
        .count();
    let rate = detected as f64 / mutants.len() as f64;
    assert!(
        rate > 0.8,
        "Devil compiler detected only {:.0}% of spec mutants",
        rate * 100.0
    );
}

#[test]
fn classic_type_confusion_compile_time_in_cdevil_run_time_in_dil_eq() {
    // The Figure-4 scenario: passing the wrong typed constant.
    let bad = ide::IDE_CDEVIL_DRIVER.replace("set_Drive(MASTER);", "set_Drive(IDENTIFY);");
    assert_ne!(bad, ide::IDE_CDEVIL_DRIVER);
    let incs = ide::cdevil_includes();
    let incs_ref: Vec<(&str, &str)> =
        incs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    let e = devil::minic::compile_with_includes(ide::IDE_CDEVIL_FILE, &bad, &incs_ref)
        .expect_err("struct types must catch this");
    assert!(e.to_string().contains("set_Drive"), "{e}");

    // The same confusion inside dil_eq is caught at *run time* (§2.3).
    let bad = ide::IDE_CDEVIL_DRIVER
        .replace("if (!dil_eq(get_Drive(), MASTER))", "if (!dil_eq(get_Drive(), IDENTIFY))");
    assert_ne!(bad, ide::IDE_CDEVIL_DRIVER);
    let files = fs::standard_files();
    let (outcome, detail) = run_mutant(
        ide::IDE_CDEVIL_FILE,
        &bad,
        &incs_ref,
        None,
        &files,
        DEFAULT_FUEL,
    );
    assert_eq!(outcome, Outcome::RuntimeCheck, "{detail}");
}

#[test]
fn plain_c_misses_what_devil_catches() {
    // Swap the drive-select constant in the C driver: compiles, boots,
    // and the error stays latent (status floats to "no drive" -> halt at
    // mount; the compiler said nothing).
    let bad = ide::IDE_C_DRIVER.replace("outb(0xe0 | sel, HD_CURRENT);", "outb(0xf0 | sel, HD_CURRENT);");
    assert_ne!(bad, ide::IDE_C_DRIVER);
    let files = fs::standard_files();
    let (outcome, _) = run_mutant(ide::IDE_C_FILE, &bad, &[], None, &files, DEFAULT_FUEL);
    assert!(
        !outcome.is_detected(),
        "plain C must not detect the raw constant typo, got {outcome}"
    );
}

#[test]
fn future_work_typed_eq_moves_the_check_to_compile_time() {
    // §6 of the paper: "we want to build a preprocessor tool that
    // generates a compile-time comparison function for any Devil type."
    // Implemented as the generated `eq_<var>` functions. The same
    // confusion that dil_eq only catches at run time is now a type error.
    let good = ide::IDE_CDEVIL_DRIVER
        .replace("if (!dil_eq(get_Drive(), MASTER))", "if (!eq_Drive(get_Drive(), MASTER))");
    assert_ne!(good, ide::IDE_CDEVIL_DRIVER);
    let incs = ide::cdevil_includes();
    let incs_ref: Vec<(&str, &str)> =
        incs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    devil::minic::compile_with_includes(ide::IDE_CDEVIL_FILE, &good, &incs_ref)
        .expect("typed comparison compiles");
    let bad = good.replace("eq_Drive(get_Drive(), MASTER)", "eq_Drive(get_Drive(), IDENTIFY)");
    let e = devil::minic::compile_with_includes(ide::IDE_CDEVIL_FILE, &bad, &incs_ref)
        .expect_err("typed comparison must reject the wrong constant at compile time");
    assert!(e.to_string().contains("eq_Drive"), "{e}");
}

#[test]
fn weak_types_ablation_collapses_compile_detection() {
    // The DESIGN.md ablation: against production stubs the struct encoding
    // disappears, so the same type-confusion mutant sails through.
    let bad = ide::IDE_CDEVIL_DRIVER.replace("set_Drive(MASTER);", "set_Drive(IDENTIFY);");
    let weak = [(
        ide::IDE_HEADER_NAME.to_string(),
        ide::ide_production_header(),
    )];
    let weak_ref: Vec<(&str, &str)> =
        weak.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    devil::minic::compile_with_includes(ide::IDE_CDEVIL_FILE, &bad, &weak_ref)
        .expect("production stubs cannot catch type confusion");
}

#[test]
fn mutation_site_lines_agree_with_coverage_files() {
    // Dead-code classification depends on (file, line) agreement between
    // the mutation model and the interpreter.
    let model = CMutationModel::new(ide::IDE_CDEVIL_DRIVER, &[], CStyle::CDevil);
    let dead_line = ide::IDE_CDEVIL_DRIVER
        .lines()
        .position(|l| l.contains("sector id not found"))
        .unwrap() as u32
        + 1;
    // There is at least one site on the dead switch arm.
    assert!(
        model.sites().iter().any(|s| s.line == dead_line),
        "expected a mutation site on the dead arm at line {dead_line}"
    );
}

#[test]
fn table2_row_for_pci_spec_runs_quickly() {
    let model = DevilMutationModel::new(specs::PCI82371).unwrap();
    let mutants = model.mutants();
    assert!(mutants.len() > 500);
    let detected = mutants
        .iter()
        .filter(|m| devil::core::compile("pci82371.dil", &m.source).is_err())
        .count();
    let rate = detected as f64 / mutants.len() as f64;
    assert!((0.75..=1.0).contains(&rate), "detection rate {rate}");
}
