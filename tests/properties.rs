//! Property-based tests over cross-crate invariants.

use devil::core::ir::Mask;
use devil::core::runtime::{DeviceInstance, StubMode};
use devil::hwsim::devices::Busmouse;
use devil::hwsim::IoSpace;
use devil::mutagen::literal::{literal_mutations, LiteralClass};
use proptest::prelude::*;

const BASE: u16 = 0x23C;

fn checked_busmouse() -> devil::core::CheckedSpec {
    devil::core::compile("busmouse.dil", devil::drivers::specs::BUSMOUSE).unwrap()
}

proptest! {
    /// Any injected motion is read back exactly through the Devil stubs.
    #[test]
    fn stub_runtime_round_trips_motion(dx in any::<i8>(), dy in any::<i8>(), b in 0u8..8) {
        let checked = checked_busmouse();
        let mut io = IoSpace::new();
        let id = io.map(BASE, 4, Box::new(Busmouse::new())).unwrap();
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(dx, dy, b);
        let mut dev = DeviceInstance::new(&checked, &[BASE], StubMode::Debug);
        prop_assert_eq!(dev.get(&mut io, "dx").unwrap().as_signed(8), dx as i64);
        prop_assert_eq!(dev.get(&mut io, "dy").unwrap().as_signed(8), dy as i64);
        prop_assert_eq!(dev.get(&mut io, "buttons").unwrap().raw, b as u64);
    }

    /// Mask algebra: a write through any mask respects the fixed bits and
    /// preserves exactly the relevant ones.
    #[test]
    fn mask_apply_write_invariants(pattern in "[01*.]{1,16}", value in any::<u64>()) {
        let mask = Mask::from_pattern(&pattern).unwrap();
        let wire = mask.apply_write(value);
        prop_assert_eq!(wire & mask.fixed_ones(), mask.fixed_ones());
        prop_assert_eq!(wire & mask.fixed_zeros(), 0);
        prop_assert_eq!(wire & mask.relevant(), value & mask.relevant());
        // The wire value always satisfies its own read check.
        prop_assert!(mask.read_respects_fixed(wire));
    }

    /// Mask views partition the bit positions.
    #[test]
    fn mask_views_partition(pattern in "[01*.]{1,32}") {
        let mask = Mask::from_pattern(&pattern).unwrap();
        let all = if mask.len() >= 64 { u64::MAX } else { (1u64 << mask.len()) - 1 };
        let r = mask.relevant();
        let o = mask.fixed_ones();
        let z = mask.fixed_zeros();
        prop_assert_eq!(r & o, 0);
        prop_assert_eq!(r & z, 0);
        prop_assert_eq!(o & z, 0);
        prop_assert!(r | o | z <= all);
    }

    /// Literal mutations stay in class, differ from the original, and
    /// never produce an empty literal.
    #[test]
    fn literal_mutations_stay_in_class(n in 0u64..100_000) {
        let text = n.to_string();
        for m in literal_mutations(&text, LiteralClass::Decimal, 0) {
            prop_assert!(!m.is_empty());
            prop_assert_ne!(&m, &text);
            prop_assert!(m.bytes().all(|b| b.is_ascii_digit()), "{}", m);
        }
        let hex = format!("0x{n:x}");
        for m in literal_mutations(&hex, LiteralClass::Hex, 2) {
            prop_assert!(m.starts_with("0x"));
            prop_assert!(m.len() > 2);
            prop_assert_ne!(&m, &hex);
        }
    }

    /// The Devil lexer never panics and always terminates on arbitrary
    /// input (fuzz-ish robustness).
    #[test]
    fn devil_lexer_total(input in "\\PC{0,200}") {
        let _ = devil::core::lexer::lex(&input);
    }

    /// The C preprocessor + parser never panic on arbitrary input.
    #[test]
    fn minic_frontend_total(input in "\\PC{0,200}") {
        let _ = devil::minic::compile("fuzz.c", &input);
    }

    /// Single-character corruption of a correct spec either still compiles
    /// or produces a proper error — never a panic (the Table 2 engine
    /// depends on this).
    #[test]
    fn corrupted_spec_never_panics(pos in 0usize..800, byte in 32u8..127) {
        let src = devil::drivers::specs::BUSMOUSE;
        if pos < src.len() && src.is_char_boundary(pos) {
            let mut s = src.as_bytes().to_vec();
            s[pos] = byte;
            if let Ok(text) = String::from_utf8(s) {
                let _ = devil::core::compile("fuzz.dil", &text);
            }
        }
    }

    /// Sampling is a subset of the input with the requested cardinality.
    #[test]
    fn sample_is_subset(frac in 0.0f64..1.0, seed in any::<u64>()) {
        let model = devil::mutagen::devil::DevilMutationModel::new(
            devil::drivers::specs::BUSMOUSE,
        ).unwrap();
        let all = model.mutants();
        let total = all.len();
        let sampled = devil::mutagen::sample(all, frac, seed);
        let expect = ((total as f64) * frac).round() as usize;
        prop_assert_eq!(sampled.len(), expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Booting the clean drivers is deterministic: same outcome, console
    /// and coverage every time, regardless of seed-like inputs.
    #[test]
    fn clean_boot_is_deterministic(_x in any::<u8>()) {
        use devil::kernel::boot::{boot_ide, standard_ide_machine, DEFAULT_FUEL};
        let files = devil::kernel::fs::standard_files();
        let program = devil::minic::compile(
            devil::drivers::ide::IDE_C_FILE,
            devil::drivers::ide::IDE_C_DRIVER,
        ).unwrap();
        let (mut io, dev) = standard_ide_machine(&files);
        let a = boot_ide(&program, &mut io, dev, &files, DEFAULT_FUEL);
        let (mut io2, dev2) = standard_ide_machine(&files);
        let b = boot_ide(&program, &mut io2, dev2, &files, DEFAULT_FUEL);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.console, b.console);
        prop_assert_eq!(a.coverage, b.coverage);
    }
}
