//! Every bundled specification, executed against its own device model
//! through the stub runtime — the five Table 2 specs are not just
//! checkable text, they drive the hardware they describe.

use devil::core::runtime::{DeviceInstance, StubMode};
use devil::core::CheckedSpec;
use devil::drivers::specs;
use devil::hwsim::devices::{
    BusMasterIde, Busmouse, IdeController, IdeDisk, Ne2000, Permedia2,
};
use devil::hwsim::IoSpace;

fn checked(file: &str, src: &str) -> CheckedSpec {
    specs::compile(file, src).expect("bundled spec compiles")
}

#[test]
fn busmouse_spec_drives_the_mouse() {
    let spec = checked("busmouse.dil", specs::BUSMOUSE);
    let mut io = IoSpace::new();
    let id = io.map(0x23C, 4, Box::new(Busmouse::new())).unwrap();
    io.device_mut::<Busmouse>(id).unwrap().inject_motion(-100, 100, 0b111);
    let mut dev = DeviceInstance::new(&spec, &[0x23C], StubMode::Debug);
    assert_eq!(dev.get(&mut io, "dx").unwrap().as_signed(8), -100);
    assert_eq!(dev.get(&mut io, "dy").unwrap().as_signed(8), 100);
    assert_eq!(dev.get(&mut io, "buttons").unwrap().raw, 0b111);
}

#[test]
fn ide_spec_reads_a_sector_from_the_drive() {
    let spec = checked("ide_piix4.dil", specs::IDE_PIIX4);
    let mut io = IoSpace::new();
    let mut disk = IdeDisk::small();
    let mut sector = [0u8; 512];
    sector[0] = 0xAB;
    sector[1] = 0xCD;
    disk.write_sector(7, &sector);
    io.map(0x1F0, 9, Box::new(IdeController::new(disk))).unwrap();
    // Secondary channel ports are unmapped; the spec still binds them.
    let mut dev = DeviceInstance::new(&spec, &[0x1F0, 0x1F0, 0x170, 0x170], StubMode::Debug);

    // Program the task file through typed variables.
    dev.set(&mut io, "sector_count", dev.int_value("sector_count", 1).unwrap()).unwrap();
    dev.set(&mut io, "sector_number", dev.int_value("sector_number", 7).unwrap()).unwrap();
    dev.set(&mut io, "cyl_low", dev.int_value("cyl_low", 0).unwrap()).unwrap();
    dev.set(&mut io, "cyl_high", dev.int_value("cyl_high", 0).unwrap()).unwrap();
    dev.set(&mut io, "Lba_mode", dev.value_of("Lba_mode", "LBA").unwrap()).unwrap();
    dev.set(&mut io, "Drive", dev.value_of("Drive", "MASTER").unwrap()).unwrap();
    dev.set(&mut io, "head", dev.int_value("head", 0).unwrap()).unwrap();
    dev.set(&mut io, "Command", dev.value_of("Command", "READ_SECTORS").unwrap()).unwrap();

    // Poll the typed status bits.
    for _ in 0..10_000 {
        let busy = dev.get(&mut io, "busy").unwrap();
        if busy.raw == 0 {
            break;
        }
    }
    assert_eq!(dev.get(&mut io, "error_bit").unwrap().raw, 0);
    assert_eq!(dev.get(&mut io, "drq").unwrap().raw, 1);
    let w0 = dev.get(&mut io, "io_data").unwrap().raw;
    assert_eq!(w0, 0xCDAB, "little-endian first word of the sector");
}

#[test]
fn ide_spec_drive_select_readback_matches_figure4() {
    let spec = checked("ide_piix4.dil", specs::IDE_PIIX4);
    let mut io = IoSpace::new();
    io.map(0x1F0, 9, Box::new(IdeController::new(IdeDisk::small()))).unwrap();
    let mut dev = DeviceInstance::new(&spec, &[0x1F0, 0x1F0, 0x170, 0x170], StubMode::Debug);
    let master = dev.value_of("Drive", "MASTER").unwrap();
    dev.set(&mut io, "Drive", master).unwrap();
    let back = dev.get(&mut io, "Drive").unwrap();
    // dil_eq semantics: same type id, same value.
    assert_eq!(back.type_id, master.type_id);
    assert_eq!(back.raw, master.raw);
    // The mask '1.1.....' read-back assertion passed implicitly (the model
    // keeps bits 7 and 5 high); selecting SLAVE and reading also works.
    let slave = dev.value_of("Drive", "SLAVE").unwrap();
    dev.set(&mut io, "Drive", slave).unwrap();
    assert_eq!(dev.get(&mut io, "Drive").unwrap().raw, slave.raw);
}

#[test]
fn pci_spec_runs_a_bus_master_transfer() {
    let spec = checked("pci82371.dil", specs::PCI82371);
    let mut io = IoSpace::new();
    let id = io.map(0xF000, 16, Box::new(BusMasterIde::new())).unwrap();
    let mut dev = DeviceInstance::new(&spec, &[0xF000, 0xF000], StubMode::Debug);

    // Program the descriptor table pointer (bits 31..2 of the register).
    let dtp = dev.int_value("descriptor_table", 0x0010_0000 >> 2).unwrap();
    dev.set(&mut io, "descriptor_table", dtp).unwrap();
    assert_eq!(io.device::<BusMasterIde>(id).unwrap().descriptor_pointer(0), 0x0010_0000);

    // Start the engine in read direction.
    dev.set(&mut io, "dma_direction", dev.value_of("dma_direction", "DMA_FROM_DEVICE").unwrap())
        .unwrap();
    dev.set(&mut io, "dma_engine", dev.value_of("dma_engine", "ENGINE_START").unwrap()).unwrap();
    assert_eq!(dev.get(&mut io, "dma_active").unwrap().raw, 1);

    // Poll until the transfer completes and the interrupt bit latches.
    for _ in 0..64 {
        if dev.get(&mut io, "dma_active").unwrap().raw == 0 {
            break;
        }
    }
    assert_eq!(dev.get(&mut io, "dma_active").unwrap().raw, 0);
    assert_eq!(dev.get(&mut io, "dma_interrupt").unwrap().raw, 1);
}

#[test]
fn pci_spec_null_descriptor_sets_error() {
    let spec = checked("pci82371.dil", specs::PCI82371);
    let mut io = IoSpace::new();
    io.map(0xF000, 16, Box::new(BusMasterIde::new())).unwrap();
    let mut dev = DeviceInstance::new(&spec, &[0xF000, 0xF000], StubMode::Debug);
    dev.set(&mut io, "dma_engine", dev.value_of("dma_engine", "ENGINE_START").unwrap()).unwrap();
    assert_eq!(dev.get(&mut io, "dma_error").unwrap().raw, 1);
}

#[test]
fn permedia2_spec_plots_a_pixel() {
    let spec = checked("permedia2.dil", specs::PERMEDIA2);
    let mut io = IoSpace::new();
    let id = io.map(0xC000, 13, Box::new(Permedia2::new())).unwrap();
    let mut dev = DeviceInstance::new(&spec, &[0xC000], StubMode::Debug);

    dev.set(&mut io, "fb_writes", dev.value_of("fb_writes", "WRITES_ON").unwrap()).unwrap();
    // Respect the FIFO protocol: check free space, then push the command.
    let free = dev.get(&mut io, "fifo_free").unwrap();
    assert!(free.raw >= 4);
    for word in [0x01u64, 9, 3, 0x00FF_00FF] {
        dev.set(&mut io, "fifo_in", dev.int_value("fifo_in", word).unwrap()).unwrap();
    }
    // Drain by polling space; then verify through the model.
    for _ in 0..32 {
        dev.get(&mut io, "fifo_free").unwrap();
    }
    assert_eq!(io.device::<Permedia2>(id).unwrap().pixel(9, 3), 0x00FF_00FF);
    assert!(!io.device::<Permedia2>(id).unwrap().overrun());

    // Sync tag round trip through the typed FIFO variables.
    dev.set(&mut io, "sync_tag", dev.int_value("sync_tag", 0xBEEF).unwrap()).unwrap();
    for _ in 0..16 {
        dev.get(&mut io, "fifo_free").unwrap();
    }
    assert_eq!(dev.get(&mut io, "fifo_pending").unwrap().raw, 1);
    assert_eq!(dev.get(&mut io, "fifo_out").unwrap().raw, 0xBEEF);
}

#[test]
fn permedia2_spec_reads_chip_id() {
    let spec = checked("permedia2.dil", specs::PERMEDIA2);
    let mut io = IoSpace::new();
    io.map(0xC000, 13, Box::new(Permedia2::new())).unwrap();
    let mut dev = DeviceInstance::new(&spec, &[0xC000], StubMode::Debug);
    assert_eq!(dev.get(&mut io, "chip_id").unwrap().raw, 2);
    dev.set(&mut io, "display", dev.value_of("display", "DISPLAY_ON").unwrap()).unwrap();
    assert_eq!(dev.get(&mut io, "display").unwrap().raw, 1);
}

#[test]
fn ne2000_spec_reads_the_prom_and_programs_par() {
    let spec = checked("ne2000.dil", specs::NE2000);
    let mac = [0x02u8, 0x60, 0x8C, 0x12, 0x34, 0x56];
    let mut io = IoSpace::new();
    let id = io.map(0x300, 0x20, Box::new(Ne2000::new(mac))).unwrap();
    let mut dev = DeviceInstance::new(&spec, &[0x300], StubMode::Debug);

    dev.set(&mut io, "remote_count_lo", dev.int_value("remote_count_lo", 12).unwrap()).unwrap();
    dev.set(&mut io, "remote_count_hi", dev.int_value("remote_count_hi", 0).unwrap()).unwrap();
    dev.set(&mut io, "remote_addr_lo", dev.int_value("remote_addr_lo", 0).unwrap()).unwrap();
    dev.set(&mut io, "remote_addr_hi", dev.int_value("remote_addr_hi", 0).unwrap()).unwrap();
    dev.set(&mut io, "remote_op", dev.int_value("remote_op", 1).unwrap()).unwrap();
    let mut got = [0u8; 6];
    for b in got.iter_mut() {
        *b = dev.get(&mut io, "remote_data").unwrap().raw as u8;
        let _ = dev.get(&mut io, "remote_data").unwrap(); // doubled byte
    }
    assert_eq!(got, mac);
    assert_eq!(dev.get(&mut io, "dma_done").unwrap().raw, 1);

    for (i, b) in mac.iter().enumerate() {
        let var = format!("mac{i}");
        dev.set(&mut io, &var, dev.int_value(&var, *b as u64).unwrap()).unwrap();
    }
    assert_eq!(io.device::<Ne2000>(id).unwrap().programmed_mac(), mac);
}

#[test]
fn debug_mode_catches_device_misbehaviour_via_fixed_bits() {
    // An IDE model is mapped at the WRONG base: select_reg reads float to
    // 0xFF which *happens* to satisfy '1.1.....'; status-typed variables
    // still work. Map nothing and read a variable whose register mask has
    // fixed ZERO bits — the control register is write-only, so use the PCI
    // spec's bmicx (mask '0000.00.', fixed zeros at bits 7..4, 2, 1).
    let spec = checked("pci82371.dil", specs::PCI82371);
    let mut io = IoSpace::new(); // nothing mapped: reads float to 0xFF
    let mut dev = DeviceInstance::new(&spec, &[0xF000, 0xF000], StubMode::Debug);
    let err = dev.get(&mut io, "dma_engine").unwrap_err();
    assert!(
        err.to_string().contains("violates mask"),
        "the §2.3 mask assertion must flag the misbehaving device: {err}"
    );
}
