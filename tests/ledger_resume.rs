//! Crash-safety differential for the outcome ledger: a campaign killed
//! with `SIGKILL` mid-flight and then resumed must produce exactly the
//! outcome vector of an uninterrupted run.
//!
//! The parent test re-executes this same test binary as a child process
//! (the `ledger_resume_child` helper, gated on an env var and `#[ignore]`d
//! so it never runs on its own), throttled so the campaign takes a while,
//! waits for the ledger file to accumulate a few records, and `kill -9`s
//! it — the one failure mode no `Drop` impl or atexit hook can soften.
//! Whatever half-written record the kill tore off, `Ledger::resume` must
//! truncate it away, replay the survivors as hits, and let the resumed
//! campaign classify only the rest.

use devil::drivers::corpus::{find_variant, spec_revision};
use devil::kernel::boot::{Outcome, DEFAULT_FUEL};
use devil::kernel::scenario::ScenarioMachine;
use devil::mutagen::c::CMutationModel;
use devil::mutagen::{sample, source_fingerprint, Campaign, Ledger, LedgerKey, Mutant};
use std::time::{Duration, Instant};

const CHILD_ENV: &str = "DEVIL_LEDGER_RESUME_CHILD";
const THROTTLE_ENV: &str = "DEVIL_LEDGER_RESUME_THROTTLE_MS";

/// The shared campaign both lives run: a 5% sample of busmouse mutants
/// under `mouse-stream`, checkpointed through `ledger`. `throttle` slows
/// each classification down so the parent can reliably kill the child
/// mid-campaign.
fn run_campaign(ledger: &Ledger, throttle: Option<Duration>) -> Vec<Outcome> {
    let v = find_variant("mouse-stream", "busmouse_c").expect("catalog variant");
    let model = CMutationModel::new(v.source, &[], v.style);
    let mutants = sample(model.mutants(), 0.05, 42);
    let rev = ledger.spec_rev();
    let file = v.file;
    Campaign::new(
        || {
            ScenarioMachine::with_scenario(
                devil::drivers::corpus::build_scenario("mouse-stream")
                    .expect("catalog scenario"),
                DEFAULT_FUEL,
            )
        },
        move |machine: &mut ScenarioMachine<_>, m: &Mutant| {
            if let Some(d) = throttle {
                std::thread::sleep(d);
            }
            machine.run(file, &m.source, &[], Some(m.line)).0
        },
    )
    .with_threads(2)
    .run_memoized(
        &mutants,
        ledger,
        |m| LedgerKey {
            file: file.to_string(),
            source: source_fingerprint(&m.source),
            scenario: "mouse-stream".to_string(),
            plan: String::new(),
            plan_seed: 0,
            dead_line: m.line,
            spec_rev: rev,
        },
        |o| o.is_deterministic().then(|| (o.code(), String::new())),
        |code, _| Outcome::from_code(code),
    )
}

/// The child half: runs the throttled campaign against the ledger named
/// by the env var, then exits. Never runs in a normal `cargo test`
/// sweep — it is `#[ignore]`d and a no-op without the env var.
#[test]
#[ignore = "re-executed as a child process by kill_nine_then_resume_is_bit_identical"]
fn ledger_resume_child() {
    let Ok(path) = std::env::var(CHILD_ENV) else { return };
    let throttle_ms: u64 = std::env::var(THROTTLE_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let rev = spec_revision(DEFAULT_FUEL);
    let ledger = Ledger::resume(&path, rev).expect("child opens the ledger");
    run_campaign(&ledger, Some(Duration::from_millis(throttle_ms)));
}

#[test]
fn kill_nine_then_resume_is_bit_identical() {
    let path = std::env::temp_dir()
        .join(format!("devil-ledger-resume-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let rev = spec_revision(DEFAULT_FUEL);

    // The golden vector: the same campaign, uninterrupted, no ledger.
    let golden_path = std::env::temp_dir()
        .join(format!("devil-ledger-resume-golden-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&golden_path);
    let golden_ledger = Ledger::create(&golden_path, rev).unwrap();
    let golden = run_campaign(&golden_ledger, None);
    let total = golden.len();
    drop(golden_ledger);
    std::fs::remove_file(&golden_path).unwrap();

    // Re-execute this test binary as the throttled child and let it make
    // some progress: wait until the ledger holds at least a few records.
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["ledger_resume_child", "--exact", "--ignored"])
        .env(CHILD_ENV, &path)
        .env(THROTTLE_ENV, "25")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child campaign");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if len > 200 {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("child finished before it could be killed: {status}");
        }
        assert!(Instant::now() < deadline, "child made no ledger progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    // SIGKILL: no destructors, no flushes — whatever byte the writer was
    // on, that is where the file ends.
    child.kill().expect("kill -9 the child");
    let _ = child.wait();

    // Resume: survivors replay as hits, the rest classify fresh, and the
    // result is the uninterrupted vector, bit for bit.
    let ledger = Ledger::resume(&path, rev).expect("resume after kill -9");
    let recovered = ledger.recovery().outcomes;
    assert!(
        recovered < total,
        "the kill must interrupt the campaign ({recovered}/{total} already done)"
    );
    let resumed = run_campaign(&ledger, None);
    assert_eq!(resumed, golden, "resumed campaign diverged from the golden run");
    let c = ledger.counters();
    assert!(c.hits > 0, "resume served no ledger hits");
    assert_eq!(
        c.hits + c.misses,
        total as u64,
        "every mutant is either a hit or a miss"
    );
    std::fs::remove_file(&path).unwrap();
}
