//! Differential tests for deterministic hardware fault injection.
//!
//! Every scenario in the catalog has a `<name>+faults` variant that runs
//! the same workload on deterministically flaky hardware (the bundled
//! `mixed` plan under `DEFAULT_FAULT_SEED`). This suite pins four
//! properties of that layer:
//!
//! * **Determinism across execution strategies** — for each scenario's
//!   sampled mutant set, the rebuild path (fresh machine per mutant), the
//!   reset path (snapshot-restored `ScenarioMachine`, fault cursor
//!   rewound by the restore) and both engines (bytecode VM vs the
//!   tree-walking interpreter) classify every mutant identically, and
//!   the outcome vector is pinned in `tests/golden/`
//!   (`scenario_<name>_faults.txt`).
//! * **Attribution soundness** — a *clean* driver run under every bundled
//!   plan across many seeds never produces a compile-time or run-time
//!   check: hardware misbehaviour must never be attributed to a driver
//!   bug. The full outcome tally is pinned in
//!   `tests/golden/fault_attribution.txt`.
//! * **Empty-plan identity** — selecting the `none` plan changes nothing
//!   observable (the hwsim proptests pin this at the bus level for a
//!   force-installed empty interposer; here it is pinned end-to-end
//!   through a scenario run, where rule-less plans are routed around the
//!   interposer so they keep the block-transfer fast paths).
//! * **Replay equality** — re-running a faulted machine after a restore
//!   reproduces the first run bit-for-bit, and matches a freshly built
//!   machine: the fault stream is part of the snapshot.
//!
//! Regenerate the golden files with:
//!
//! ```text
//! DEVIL_BLESS=1 cargo test --release --test fault_differential
//! ```

use devil::drivers::corpus::{
    build_faulted, build_scenario, default_fault_plan, scenario_catalog, ScenarioCase,
};
use devil::hwsim::FaultPlan;
use devil::kernel::boot::DEFAULT_FUEL;
use devil::kernel::scenario::{run_compiled, run_interp, run_mutant_in, ScenarioMachine};
use devil::kernel::{Outcome, ScenarioReport};
use devil::mutagen::c::CMutationModel;
use devil::mutagen::{run_parallel, sample, Campaign, Mutant};
use devil_bench::tables::{fault_attribution, render_attribution};
use std::fmt::Write as _;

/// Same worker count as the fault-free differential suite.
const THREADS: usize = 2;

/// Same sampling seed as the fault-free goldens, so the `+faults` golden
/// for a scenario covers the *same* mutant set and classification drift
/// is attributable to the fault plan alone.
const SEED: u64 = 2001;

fn golden_path(name: &str) -> String {
    format!(
        "{}/tests/golden/{}.txt",
        env!("CARGO_MANIFEST_DIR"),
        name.replace('-', "_")
    )
}

fn check_golden(name: &str, produced: &str) {
    let path = golden_path(name);
    if std::env::var_os("DEVIL_BLESS").is_some() {
        std::fs::write(&path, produced).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("golden file missing — run with DEVIL_BLESS=1 to create it");
    assert_eq!(
        produced, expected,
        "{name} diverged from {path} (rerun with DEVIL_BLESS=1 if the change is intended)"
    );
}

fn sampled(
    source: &str,
    headers: &[(String, String)],
    style: devil::mutagen::c::CStyle,
    fraction: f64,
) -> Vec<Mutant> {
    let header_texts: Vec<&str> = headers.iter().map(|(_, t)| t.as_str()).collect();
    let model = CMutationModel::new(source, &header_texts, style);
    sample(model.mutants(), fraction, SEED)
}

/// Run one mutant through both engines on fresh *faulted* machines;
/// `None` when it does not compile.
fn run_both_faulted(
    scenario_name: &str,
    file: &str,
    source: &str,
    includes: &[(&str, &str)],
) -> Option<(ScenarioReport, ScenarioReport)> {
    let program = devil::minic::compile_with_includes(file, source, includes).ok()?;
    let mut s_vm = build_faulted(scenario_name, default_fault_plan())
        .expect("catalog scenario builds");
    let mut io_vm = s_vm.build();
    let vm = run_compiled(&s_vm, &program.to_bytecode(), &mut io_vm, DEFAULT_FUEL);
    let mut s_tw = build_faulted(scenario_name, default_fault_plan())
        .expect("catalog scenario builds");
    let mut io_tw = s_tw.build();
    let tw = run_interp(&s_tw, &program, &mut io_tw, DEFAULT_FUEL);
    Some((vm, tw))
}

fn check_fault_scenario(case: &ScenarioCase) {
    let mut golden = String::new();
    for v in &case.drivers {
        let mutants = sampled(v.source, &v.headers, v.style, v.golden_fraction);
        assert!(
            mutants.len() >= 10,
            "{}/{}: sample too small ({}) to be meaningful",
            case.scenario,
            v.label,
            mutants.len()
        );
        let incs: Vec<(&str, &str)> =
            v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();

        // Rebuild path: a fresh faulted machine per mutant. The plan is
        // installed inside `Scenario::build`, so the fault stream starts
        // at the seed for every mutant.
        let rebuild: Vec<Outcome> = run_parallel(&mutants, THREADS, |m| {
            run_mutant_in(
                build_faulted(case.scenario, default_fault_plan())
                    .expect("catalog scenario builds"),
                v.file,
                &m.source,
                &incs,
                Some(m.line),
                DEFAULT_FUEL,
            )
            .0
        });
        // Reset path: one faulted machine per worker; the snapshot holds
        // the seed-position fault cursor and every restore rewinds it.
        let reset: Vec<Outcome> = Campaign::new(
            || {
                ScenarioMachine::with_scenario(
                    build_faulted(case.scenario, default_fault_plan())
                        .expect("catalog scenario builds"),
                    DEFAULT_FUEL,
                )
            },
            |machine: &mut ScenarioMachine<_>, m: &Mutant| {
                machine.run(v.file, &m.source, &incs, Some(m.line)).0
            },
        )
        .with_threads(THREADS)
        .run(&mutants);

        // Engine differential: the VM and the interpreter must sample
        // the exact same fault stream (the block fast paths decline when
        // an interposer is installed, so accesses stay 1:1).
        let checked: Vec<bool> = run_parallel(&mutants, THREADS, |m| {
            if let Some((vm, tw)) = run_both_faulted(case.scenario, v.file, &m.source, &incs) {
                let what = format!(
                    "{}/{}: site {} ({})",
                    case.scenario, v.label, m.site, m.description
                );
                assert_eq!(vm.outcome, tw.outcome, "{what}: outcome diverged under faults");
                assert_eq!(vm.detail, tw.detail, "{what}: detail diverged under faults");
                assert_eq!(vm.console, tw.console, "{what}: console diverged under faults");
                assert_eq!(vm.coverage, tw.coverage, "{what}: coverage diverged under faults");
            }
            true
        });
        assert_eq!(checked.len(), mutants.len());

        for (i, m) in mutants.iter().enumerate() {
            assert_eq!(
                rebuild[i], reset[i],
                "{}/{}: site {} ({}) classified differently by the reset engine under faults",
                case.scenario, v.label, m.site, m.description
            );
            writeln!(
                golden,
                "{}\t{}\t{}\t{:?}",
                v.label, m.site, m.description, reset[i]
            )
            .expect("writing to a String cannot fail");
        }
    }
    check_golden(&format!("scenario_{}_faults", case.scenario), &golden);
}

fn case(name: &str) -> ScenarioCase {
    scenario_catalog()
        .into_iter()
        .find(|c| c.scenario == name)
        .expect("scenario in catalog")
}

// One test per scenario, mirroring the fault-free differential suite.
// The boot scenario is included here (its fault-free golden lives in
// `campaign_differential.txt`, but it has no fault variant pinned there).

#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn ide_boot_faults_differential() {
    check_fault_scenario(&case("ide-boot"));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn ide_stress_faults_differential() {
    check_fault_scenario(&case("ide-stress"));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn mouse_stream_faults_differential() {
    check_fault_scenario(&case("mouse-stream"));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn ne2000_stress_faults_differential() {
    check_fault_scenario(&case("ne2000-stress"));
}

/// The attribution control: every *clean* catalog driver, under every
/// bundled plan, across a spread of seeds. No run may classify as a
/// compile-time or run-time check — those are the "driver bug detected"
/// verdicts, and the driver is unmutated, so any such outcome would be
/// hardware noise misattributed to the driver. The full tally is pinned
/// as a golden so rate/plan tuning is a conscious re-bless.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn clean_drivers_attribute_zero_bugs_to_hardware() {
    let seeds: Vec<u64> = (0..8u64).map(|i| 0xD11A_0000 + i * 0x9E37).collect();
    let rows = fault_attribution(FaultPlan::plan_names(), &seeds, THREADS, DEFAULT_FUEL);
    assert!(!rows.is_empty());
    for row in &rows {
        assert_eq!(
            row.misattributed(),
            0,
            "{}/{} under plan `{}`: hardware-only faults were classified as \
             driver-bug detections ({:?})",
            row.scenario,
            row.driver,
            row.plan,
            row.outcomes
        );
    }
    check_golden("fault_attribution", &render_attribution(&rows));
}

/// Selecting the `none` plan end-to-end (through `build_faulted` and a
/// whole scenario run) is observationally identical to fault-free
/// hardware — outcome, detail, console, coverage and every bus counter
/// match. Since the empty plan is routed around the interposer entirely
/// (`FaultScenario::build` skips installation for rule-less plans, so
/// the block I/O fast paths stay active), the machine must also report
/// *no* interposer present.
#[test]
fn empty_plan_scenario_runs_are_identical() {
    for case in scenario_catalog() {
        for v in &case.drivers {
            let incs: Vec<(&str, &str)> =
                v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let compiled = devil::minic::compile_with_includes(v.file, v.source, &incs)
                .expect("clean catalog drivers compile")
                .to_bytecode();
            let mut s_f = build_faulted(case.scenario, FaultPlan::none(0xA11CE))
                .expect("catalog scenario builds");
            let mut io_f = s_f.build();
            let with = run_compiled(&s_f, &compiled, &mut io_f, DEFAULT_FUEL);
            let mut s_p = build_scenario(case.scenario).expect("catalog scenario builds");
            let mut io_p = s_p.build();
            let without = run_compiled(&s_p, &compiled, &mut io_p, DEFAULT_FUEL);
            let what = format!("{}/{}", case.scenario, v.label);
            assert_eq!(with.outcome, without.outcome, "{what}: outcome");
            assert_eq!(with.detail, without.detail, "{what}: detail");
            assert_eq!(with.console, without.console, "{what}: console");
            assert_eq!(with.coverage, without.coverage, "{what}: coverage");
            assert_eq!(io_f.clock(), io_p.clock(), "{what}: bus clock");
            assert_eq!(io_f.read_count(), io_p.read_count(), "{what}: read count");
            assert_eq!(io_f.write_count(), io_p.write_count(), "{what}: write count");
            assert_eq!(
                io_f.fault_injected(),
                None,
                "{what}: empty plan must be routed to the fault-free path"
            );
            assert_eq!(io_p.fault_injected(), None, "{what}: no interposer");
        }
    }
}

/// Replay equality: a faulted `ScenarioMachine` re-run after its
/// per-mutant restore reproduces the first run exactly (the restore
/// rewinds the fault cursor to the pristine snapshot's seed position),
/// and both match a freshly built machine.
#[test]
fn faulted_machine_reset_replays_the_fault_stream() {
    for case in scenario_catalog() {
        for v in &case.drivers {
            let incs: Vec<(&str, &str)> =
                v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let compiled = devil::minic::compile_with_includes(v.file, v.source, &incs)
                .expect("clean catalog drivers compile")
                .to_bytecode();
            let mut machine = ScenarioMachine::with_scenario(
                build_faulted(case.scenario, default_fault_plan())
                    .expect("catalog scenario builds"),
                DEFAULT_FUEL,
            );
            let first = machine.run_compiled(&compiled);
            let again = machine.run_compiled(&compiled);
            let mut fresh = ScenarioMachine::with_scenario(
                build_faulted(case.scenario, default_fault_plan())
                    .expect("catalog scenario builds"),
                DEFAULT_FUEL,
            );
            let rebuilt = fresh.run_compiled(&compiled);
            let what = format!("{}/{}", case.scenario, v.label);
            for (label, other) in [("reset replay", &again), ("fresh rebuild", &rebuilt)] {
                assert_eq!(first.outcome, other.outcome, "{what}: {label} outcome");
                assert_eq!(first.detail, other.detail, "{what}: {label} detail");
                assert_eq!(first.console, other.console, "{what}: {label} console");
                assert_eq!(first.coverage, other.coverage, "{what}: {label} coverage");
            }
        }
    }
}
