//! Differential tests: the native stub runtime and the minic-interpreted
//! generated C must produce identical port traffic — they are two
//! implementations of the same Devil semantics.

use devil::core::codegen::{generate, CodegenMode};
use devil::core::runtime::{DeviceInstance, StubMode};
use devil::core::Spec;
use devil::hwsim::devices::Busmouse;
use devil::hwsim::{Access, IoSpace};
use devil::kernel::MachineHost;
use devil::minic::interp::Interpreter;
use devil::minic::value::Value;

const BASE: u16 = 0x23C;

fn mouse_machine(dx: i8, dy: i8, buttons: u8) -> IoSpace {
    let mut io = IoSpace::new();
    let id = io.map(BASE, 4, Box::new(Busmouse::new())).unwrap();
    io.device_mut::<Busmouse>(id).unwrap().inject_motion(dx, dy, buttons);
    io.enable_trace();
    io
}

fn ops(trace: &[Access]) -> Vec<(devil::hwsim::AccessKind, u16, u32)> {
    trace.iter().map(|a| (a.kind, a.port, a.value)).collect()
}

/// A C harness that performs a fixed stub sequence, compiled against the
/// generated header.
fn interp_trace(mode: CodegenMode, body: &str, dx: i8, dy: i8, buttons: u8) -> Vec<Access> {
    let checked = Spec::parse("busmouse.dil", devil::drivers::specs::BUSMOUSE)
        .unwrap()
        .check()
        .unwrap();
    let header = generate(&checked, mode);
    let driver = format!(
        "#include \"bm.h\"\nint go(void)\n{{\n    logitech_busmouse_init(0x23c);\n{body}\n    return 0;\n}}\n"
    );
    let program =
        devil::minic::compile_with_includes("drv.c", &driver, &[("bm.h", header.as_str())])
            .expect("harness compiles");
    let mut io = mouse_machine(dx, dy, buttons);
    {
        let mut host = MachineHost::new(&mut io);
        let mut interp = Interpreter::new(&program, &mut host, 1_000_000);
        let r = interp.call("go", &[]).expect("harness runs");
        assert_eq!(r, Value::Int(0));
    }
    io.take_trace()
}

fn native_trace(mode: StubMode, f: impl FnOnce(&mut DeviceInstance<'_>, &mut IoSpace), dx: i8, dy: i8, b: u8) -> Vec<Access> {
    let checked = Spec::parse("busmouse.dil", devil::drivers::specs::BUSMOUSE)
        .unwrap()
        .check()
        .unwrap();
    let mut io = mouse_machine(dx, dy, b);
    let mut dev = DeviceInstance::new(&checked, &[BASE], mode);
    f(&mut dev, &mut io);
    io.take_trace()
}

#[test]
fn dx_read_traffic_is_identical() {
    for (dx, dy, b) in [(5i8, -2i8, 1u8), (-128, 127, 7), (0, 0, 0)] {
        let native = native_trace(
            StubMode::Debug,
            |dev, io| {
                dev.get(io, "dx").unwrap();
            },
            dx,
            dy,
            b,
        );
        let interp = interp_trace(
            CodegenMode::Debug,
            "    get_dx();",
            dx,
            dy,
            b,
        );
        assert_eq!(ops(&native), ops(&interp), "dx={dx} dy={dy} b={b}");
    }
}

#[test]
fn interrupt_enable_traffic_is_identical() {
    let native = native_trace(
        StubMode::Debug,
        |dev, io| {
            let v = dev.value_of("interrupt", "DISABLE").unwrap();
            dev.set(io, "interrupt", v).unwrap();
            let v = dev.value_of("interrupt", "ENABLE").unwrap();
            dev.set(io, "interrupt", v).unwrap();
        },
        0,
        0,
        0,
    );
    let interp = interp_trace(
        CodegenMode::Debug,
        "    set_interrupt(DISABLE);\n    set_interrupt(ENABLE);",
        0,
        0,
        0,
    );
    assert_eq!(ops(&native), ops(&interp));
}

#[test]
fn signature_write_read_traffic_is_identical() {
    let native = native_trace(
        StubMode::Debug,
        |dev, io| {
            let v = dev.int_value("signature", 0xA5).unwrap();
            dev.set(io, "signature", v).unwrap();
            dev.get(io, "signature").unwrap();
        },
        0,
        0,
        0,
    );
    let interp = interp_trace(
        CodegenMode::Debug,
        "    set_signature(mk_signature(0xa5));\n    get_signature();",
        0,
        0,
        0,
    );
    assert_eq!(ops(&native), ops(&interp));
}

#[test]
fn debug_and_production_generate_identical_traffic() {
    // The assertions differ; the wire traffic must not.
    for body in [
        "    get_dx();",
        "    get_buttons();",
        "    set_interrupt(DISABLE);\n    get_dy();",
    ] {
        let dbg = interp_trace(CodegenMode::Debug, body, 11, -7, 0b010);
        let prod = interp_trace(CodegenMode::Production, body, 11, -7, 0b010);
        assert_eq!(ops(&dbg), ops(&prod), "body: {body}");
    }
}

#[test]
fn native_debug_and_production_agree_on_values() {
    for (dx, dy, b) in [(1i8, 2i8, 3u8), (-5, -6, 5)] {
        let mut values = Vec::new();
        for mode in [StubMode::Debug, StubMode::Production] {
            let checked = Spec::parse("busmouse.dil", devil::drivers::specs::BUSMOUSE)
                .unwrap()
                .check()
                .unwrap();
            let mut io = mouse_machine(dx, dy, b);
            let mut dev = DeviceInstance::new(&checked, &[BASE], mode);
            values.push((
                dev.get(&mut io, "dx").unwrap().as_signed(8),
                dev.get(&mut io, "dy").unwrap().as_signed(8),
                dev.get(&mut io, "buttons").unwrap().raw,
            ));
        }
        assert_eq!(values[0], values[1]);
        assert_eq!(values[0], (dx as i64, dy as i64, b as u64));
    }
}
