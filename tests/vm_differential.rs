//! VM-vs-tree-walker differential test: the bytecode VM boot path must be
//! *observationally identical* to the tree-walking interpreter it
//! replaced — same outcomes, same detail strings, same console logs, same
//! line coverage — over every bundled driver's clean boot **and** over the
//! busmouse/IDE mutant sets (the same sampled sets the golden campaign
//! test pins, so `tests/golden/campaign_differential.txt` stays unchanged
//! by construction).
//!
//! This is the acceptance gate for `minic::bytecode`/`minic::vm`: the
//! tree-walker is the oracle (the `reference::LinearIoSpace` pattern), and
//! any semantic divergence — a fault at the wrong line, one fuel unit
//! burned early, a missed coverage bit flipping a DeadCode refinement —
//! fails here before it can silently skew campaign tables.

use devil::drivers::{busmouse, ide};
use devil::kernel::boot::{
    boot_ide, boot_ide_interp, standard_ide_machine, BootReport, Outcome, DEFAULT_FUEL,
};
use devil::kernel::fs;
use devil::mutagen::c::{CMutationModel, CStyle};
use devil::mutagen::{run_parallel, sample, Mutant};

/// Compare every observable of two boot reports.
fn assert_reports_equal(vm: &BootReport, interp: &BootReport, what: &str) {
    assert_eq!(vm.outcome, interp.outcome, "{what}: outcome diverged");
    assert_eq!(vm.detail, interp.detail, "{what}: detail diverged");
    assert_eq!(vm.console, interp.console, "{what}: console diverged");
    assert_eq!(vm.coverage, interp.coverage, "{what}: coverage diverged");
}

/// Boot one driver through both engines on fresh machines.
fn boot_both(file: &str, source: &str, includes: &[(&str, &str)], fuel: u64) -> Option<(BootReport, BootReport)> {
    let program = devil::minic::compile_with_includes(file, source, includes).ok()?;
    let files = fs::standard_files();
    let (mut io_vm, ide_vm) = standard_ide_machine(&files);
    let vm = boot_ide(&program, &mut io_vm, ide_vm, &files, fuel);
    let (mut io_tw, ide_tw) = standard_ide_machine(&files);
    let tw = boot_ide_interp(&program, &mut io_tw, ide_tw, &files, fuel);
    Some((vm, tw))
}

/// One clean-boot case: file name, source, include set.
type BootCase<'a> = (&'a str, &'a str, Vec<(&'a str, &'a str)>);

#[test]
fn clean_boots_are_engine_identical() {
    let bm_includes = busmouse::bm_includes();
    let ide_includes = ide::cdevil_includes();
    let cases: Vec<BootCase> = vec![
        (ide::IDE_C_FILE, ide::IDE_C_DRIVER, vec![]),
        (
            ide::IDE_CDEVIL_FILE,
            ide::IDE_CDEVIL_DRIVER,
            ide_includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect(),
        ),
        (busmouse::BM_C_FILE, busmouse::BM_C_DRIVER, vec![]),
        (
            busmouse::BM_CDEVIL_FILE,
            busmouse::BM_CDEVIL_DRIVER,
            bm_includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect(),
        ),
    ];
    for (file, source, includes) in cases {
        let (vm, tw) =
            boot_both(file, source, &includes, DEFAULT_FUEL).expect("bundled drivers compile");
        assert_reports_equal(&vm, &tw, file);
        // The IDE drivers must actually boot; the busmouse drivers go
        // through the IDE harness and halt identically on both engines.
        if file.starts_with("ide") {
            assert_eq!(vm.outcome, Outcome::Boot, "{file}: {}", vm.detail);
        }
    }
}

/// The unfused encoding stays a first-class path: booting through
/// `to_bytecode_unfused` must match both the tree-walking oracle and the
/// (default) fused boot on every observable — the end-to-end guarantee
/// that the superinstruction pass can be turned off without changing a
/// single classification.
#[test]
fn unfused_bytecode_boots_identically() {
    use devil::kernel::boot::boot_ide_compiled;
    let ide_includes = ide::cdevil_includes();
    let cases: Vec<BootCase> = vec![
        (ide::IDE_C_FILE, ide::IDE_C_DRIVER, vec![]),
        (
            ide::IDE_CDEVIL_FILE,
            ide::IDE_CDEVIL_DRIVER,
            ide_includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect(),
        ),
    ];
    for (file, source, includes) in cases {
        let program = devil::minic::compile_with_includes(file, source, &includes)
            .expect("bundled drivers compile");
        let unfused = program.to_bytecode_unfused();
        let fused = program.to_bytecode();
        assert_eq!(unfused.fused_op_count(), 0);
        assert!(fused.fused_op_count() > 0, "{file}: driver loops must fuse");
        let files = fs::standard_files();
        for fuel in [DEFAULT_FUEL, 20_000] {
            let (mut io_a, dev_a) = standard_ide_machine(&files);
            let a = boot_ide_compiled(&unfused, &mut io_a, dev_a, &files, fuel);
            let (mut io_b, dev_b) = standard_ide_machine(&files);
            let b = boot_ide_compiled(&fused, &mut io_b, dev_b, &files, fuel);
            assert_reports_equal(&a, &b, &format!("{file} unfused-vs-fused, fuel {fuel}"));
            let (mut io_tw, dev_tw) = standard_ide_machine(&files);
            let tw = boot_ide_interp(&program, &mut io_tw, dev_tw, &files, fuel);
            assert_reports_equal(&a, &tw, &format!("{file} unfused-vs-oracle, fuel {fuel}"));
        }
    }
}

#[test]
fn fuel_starvation_classifies_identically() {
    // Sweep boot fuel budgets so OutOfFuel lands mid-boot at many
    // different points; the engines must stop at exactly the same place.
    for fuel in [0u64, 1, 10, 1_000, 20_000, 100_000] {
        let (vm, tw) = boot_both(ide::IDE_C_FILE, ide::IDE_C_DRIVER, &[], fuel)
            .expect("bundled driver compiles");
        assert_reports_equal(&vm, &tw, &format!("ide_c with fuel {fuel}"));
    }
}

struct MutantSet {
    label: &'static str,
    file: &'static str,
    source: &'static str,
    headers: Vec<(String, String)>,
    style: CStyle,
    fraction: f64,
}

/// The same sets (and sampling seed) the golden campaign test uses.
fn mutant_sets() -> Vec<MutantSet> {
    vec![
        MutantSet {
            label: "busmouse_c",
            file: busmouse::BM_C_FILE,
            source: busmouse::BM_C_DRIVER,
            headers: Vec::new(),
            style: CStyle::PlainC,
            fraction: 0.10,
        },
        MutantSet {
            label: "ide_piix4_c",
            file: ide::IDE_C_FILE,
            source: ide::IDE_C_DRIVER,
            headers: Vec::new(),
            style: CStyle::PlainC,
            fraction: 0.008,
        },
        MutantSet {
            label: "ide_piix4_cdevil",
            file: ide::IDE_CDEVIL_FILE,
            source: ide::IDE_CDEVIL_DRIVER,
            headers: ide::cdevil_includes(),
            style: CStyle::CDevil,
            fraction: 0.008,
        },
    ]
}

#[test]
// ~200 interpreted kernel boots; CI runs it in the release step next to
// the golden campaign differential.
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn mutant_sets_are_engine_identical() {
    for set in mutant_sets() {
        let header_texts: Vec<&str> = set.headers.iter().map(|(_, t)| t.as_str()).collect();
        let model = CMutationModel::new(set.source, &header_texts, set.style);
        let mutants: Vec<Mutant> = sample(model.mutants(), set.fraction, 2001);
        assert!(mutants.len() >= 10, "{}: sample too small", set.label);
        let incs: Vec<(&str, &str)> =
            set.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let checked: Vec<bool> = run_parallel(&mutants, 2, |m| {
            match boot_both(set.file, &m.source, &incs, DEFAULT_FUEL) {
                // Compile-rejected mutants never reach either engine.
                None => true,
                Some((vm, tw)) => {
                    assert_reports_equal(
                        &vm,
                        &tw,
                        &format!("{}: site {} ({})", set.label, m.site, m.description),
                    );
                    true
                }
            }
        });
        assert_eq!(checked.len(), mutants.len());
    }
}
