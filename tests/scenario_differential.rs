//! Per-scenario differential tests: for every non-boot scenario in the
//! catalog (`devil_drivers::corpus`), the sampled mutant set of each of
//! its drivers is pushed through
//!
//! * the **rebuild** path — `scenario::run_mutant_in`, which builds a
//!   fresh machine per mutant,
//! * the **reset** path — a `mutagen::Campaign` of per-worker
//!   `ScenarioMachine`s that snapshot-restore one machine per mutant
//!   (the dirty-sector journal fast path on the IDE scenarios), and
//! * both execution engines — the bytecode VM vs the tree-walking
//!   interpreter oracle, comparing outcome, detail, console and coverage,
//!
//! and the outcome vector is pinned against a per-scenario golden file
//! under `tests/golden/` (`scenario_<name>.txt`). The IDE *boot* scenario
//! keeps its original golden in `campaign_differential.txt`.
//!
//! Regenerate the golden files with:
//!
//! ```text
//! DEVIL_BLESS=1 cargo test --release --test scenario_differential
//! ```

use devil::drivers::corpus::{build_scenario, scenario_catalog, ScenarioCase};
use devil::kernel::boot::DEFAULT_FUEL;
use devil::kernel::scenario::{run_compiled, run_interp, run_mutant_in, ScenarioMachine};
use devil::kernel::{Outcome, ScenarioReport};
use devil::mutagen::c::CMutationModel;
use devil::mutagen::{run_parallel, sample, Campaign, Mutant};
use std::fmt::Write as _;

/// Workers for the campaign paths: two exercises cross-thread workspace
/// ownership without flooding small CI machines.
const THREADS: usize = 2;

/// Same sampling seed as the boot-scenario golden, for continuity.
const SEED: u64 = 2001;

fn golden_path(scenario: &str) -> String {
    format!(
        "{}/tests/golden/scenario_{}.txt",
        env!("CARGO_MANIFEST_DIR"),
        scenario.replace('-', "_")
    )
}

fn sampled(case_source: &str, headers: &[(String, String)], style: devil::mutagen::c::CStyle, fraction: f64) -> Vec<Mutant> {
    let header_texts: Vec<&str> = headers.iter().map(|(_, t)| t.as_str()).collect();
    let model = CMutationModel::new(case_source, &header_texts, style);
    sample(model.mutants(), fraction, SEED)
}

/// Run one mutant through both engines on fresh machines; `None` when it
/// does not compile (classified CompileCheck upstream of any engine).
fn run_both(
    scenario_name: &str,
    file: &str,
    source: &str,
    includes: &[(&str, &str)],
) -> Option<(ScenarioReport, ScenarioReport)> {
    let program = devil::minic::compile_with_includes(file, source, includes).ok()?;
    let mut s_vm = build_scenario(scenario_name).expect("catalog scenario builds");
    let mut io_vm = s_vm.build();
    let vm = run_compiled(&s_vm, &program.to_bytecode(), &mut io_vm, DEFAULT_FUEL);
    let mut s_tw = build_scenario(scenario_name).expect("catalog scenario builds");
    let mut io_tw = s_tw.build();
    let tw = run_interp(&s_tw, &program, &mut io_tw, DEFAULT_FUEL);
    Some((vm, tw))
}

fn check_scenario(case: &ScenarioCase) {
    let mut golden = String::new();
    for v in &case.drivers {
        let mutants = sampled(v.source, &v.headers, v.style, v.golden_fraction);
        assert!(
            mutants.len() >= 10,
            "{}/{}: sample too small ({}) to be meaningful",
            case.scenario,
            v.label,
            mutants.len()
        );
        let incs: Vec<(&str, &str)> =
            v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();

        // Rebuild path: a fresh machine per mutant.
        let rebuild: Vec<Outcome> = run_parallel(&mutants, THREADS, |m| {
            run_mutant_in(
                build_scenario(case.scenario).expect("catalog scenario builds"),
                v.file,
                &m.source,
                &incs,
                Some(m.line),
                DEFAULT_FUEL,
            )
            .0
        });
        // Reset path: one machine per worker, snapshot-restored per mutant.
        let reset: Vec<Outcome> = Campaign::new(
            || {
                ScenarioMachine::with_scenario(
                    build_scenario(case.scenario).expect("catalog scenario builds"),
                    DEFAULT_FUEL,
                )
            },
            |machine: &mut ScenarioMachine<_>, m: &Mutant| {
                machine.run(v.file, &m.source, &incs, Some(m.line)).0
            },
        )
        .with_threads(THREADS)
        .run(&mutants);

        // Engine differential: VM vs interpreter on every mutant.
        let checked: Vec<bool> = run_parallel(&mutants, THREADS, |m| {
            if let Some((vm, tw)) = run_both(case.scenario, v.file, &m.source, &incs) {
                let what = format!(
                    "{}/{}: site {} ({})",
                    case.scenario, v.label, m.site, m.description
                );
                assert_eq!(vm.outcome, tw.outcome, "{what}: outcome diverged");
                assert_eq!(vm.detail, tw.detail, "{what}: detail diverged");
                assert_eq!(vm.console, tw.console, "{what}: console diverged");
                assert_eq!(vm.coverage, tw.coverage, "{what}: coverage diverged");
            }
            true
        });
        assert_eq!(checked.len(), mutants.len());

        for (i, m) in mutants.iter().enumerate() {
            assert_eq!(
                rebuild[i], reset[i],
                "{}/{}: site {} ({}) classified differently by the reset engine",
                case.scenario, v.label, m.site, m.description
            );
            writeln!(
                golden,
                "{}\t{}\t{}\t{:?}",
                v.label, m.site, m.description, reset[i]
            )
            .expect("writing to a String cannot fail");
        }
    }

    let path = golden_path(case.scenario);
    if std::env::var_os("DEVIL_BLESS").is_some() {
        std::fs::write(&path, &golden).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("golden file missing — run with DEVIL_BLESS=1 to create it");
    assert_eq!(
        golden, expected,
        "{} outcomes diverged from {path} (rerun with DEVIL_BLESS=1 if the change is intended)",
        case.scenario
    );
}

fn case(name: &str) -> ScenarioCase {
    scenario_catalog()
        .into_iter()
        .find(|c| c.scenario == name)
        .expect("scenario in catalog")
}

// One test per scenario so a regression names its workload directly (and
// the scenarios run in parallel under the default test harness). The
// ide-boot scenario is pinned by the original `campaign_differential`
// golden, byte-identical since the engine port, so it is not repeated
// here.

#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn mouse_stream_scenario_differential() {
    check_scenario(&case("mouse-stream"));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn ne2000_stress_scenario_differential() {
    check_scenario(&case("ne2000-stress"));
}

/// The block-transfer driver swap re-blessed the main ne2000 golden; this
/// test pins that the *execution overhaul itself* reclassified nothing.
/// The PR-4 word-at-a-time driver's sampled mutant set must classify
/// exactly as it did before superinstructions and bulk I/O landed — the
/// outcome vector (and therefore every per-outcome count) stays
/// byte-identical to the frozen words golden, which is a verbatim copy of
/// the pre-overhaul `scenario_ne2000_stress.txt`. Only the wire-log
/// granularity of the *block* driver may differ from the words driver;
/// classifications may not. This file is frozen: `DEVIL_BLESS` does not
/// rewrite it.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn ne2000_word_driver_outcome_counts_unchanged() {
    use devil::drivers::ne2000::{NE2000_C_DRIVER_WORDS, NE2000_C_FILE};
    let mutants = sampled(NE2000_C_DRIVER_WORDS, &[], devil::mutagen::c::CStyle::PlainC, 0.05);
    assert!(mutants.len() >= 10, "sample too small ({})", mutants.len());
    let outcomes: Vec<Outcome> = Campaign::new(
        || {
            ScenarioMachine::with_scenario(
                build_scenario("ne2000-stress").expect("catalog scenario builds"),
                DEFAULT_FUEL,
            )
        },
        |machine: &mut ScenarioMachine<_>, m: &Mutant| {
            machine.run(NE2000_C_FILE, &m.source, &[], Some(m.line)).0
        },
    )
    .with_threads(THREADS)
    .run(&mutants);
    let mut golden = String::new();
    for (m, o) in mutants.iter().zip(&outcomes) {
        writeln!(golden, "ne2000_c\t{}\t{}\t{:?}", m.site, m.description, o)
            .expect("writing to a String cannot fail");
    }
    let path = format!(
        "{}/tests/golden/scenario_ne2000_stress_words.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    let expected = std::fs::read_to_string(&path).expect("frozen words golden present");
    assert_eq!(
        golden, expected,
        "word-at-a-time ne2000 outcomes changed — the execution overhaul must not \
         reclassify the PR-4 corpus ({path} is frozen, not re-blessable)"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn ide_stress_scenario_differential() {
    check_scenario(&case("ide-stress"));
}
