//! Differential campaign test: the snapshot-reset engine must classify
//! exactly like the rebuild-per-mutant path.
//!
//! Samples the bundled busmouse and IDE (PIIX4) driver mutant sets, runs
//! every sampled mutant through
//!
//! * the **rebuild** path — `kernel::boot::run_mutant`, which constructs a
//!   fresh machine per mutant, and
//! * the **reset** path — a `mutagen::Campaign` of per-worker
//!   `CampaignMachine`s that snapshot-restore one machine per mutant,
//!
//! and asserts the outcome vectors are identical — then pins both against
//! the golden file under `tests/golden/`, so a semantic regression in
//! either path (not just a divergence between them) fails the test.
//!
//! Regenerate the golden file with:
//!
//! ```text
//! DEVIL_BLESS=1 cargo test --release --test campaign_differential
//! ```

use devil::drivers::{busmouse, ide};
use devil::kernel::boot::{run_mutant, CampaignMachine, Outcome, DEFAULT_FUEL};
use devil::kernel::fs;
use devil::mutagen::c::{CMutationModel, CStyle};
use devil::mutagen::{run_parallel, sample, Campaign, Mutant};
use std::fmt::Write as _;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/campaign_differential.txt"
);

/// Workers for both paths. Two is enough to exercise cross-thread
/// workspace ownership without flooding small CI machines.
const THREADS: usize = 2;

struct MutantSet {
    label: &'static str,
    file: &'static str,
    source: &'static str,
    headers: Vec<(String, String)>,
    style: CStyle,
    /// Sampling fraction, tuned so each set stays at a few dozen boots.
    fraction: f64,
}

fn mutant_sets() -> Vec<MutantSet> {
    vec![
        MutantSet {
            label: "busmouse_c",
            file: busmouse::BM_C_FILE,
            source: busmouse::BM_C_DRIVER,
            headers: Vec::new(),
            style: CStyle::PlainC,
            fraction: 0.10,
        },
        MutantSet {
            label: "ide_piix4_c",
            file: ide::IDE_C_FILE,
            source: ide::IDE_C_DRIVER,
            headers: Vec::new(),
            style: CStyle::PlainC,
            fraction: 0.008,
        },
        MutantSet {
            label: "ide_piix4_cdevil",
            file: ide::IDE_CDEVIL_FILE,
            source: ide::IDE_CDEVIL_DRIVER,
            headers: ide::cdevil_includes(),
            style: CStyle::CDevil,
            fraction: 0.008,
        },
    ]
}

fn sampled_mutants(set: &MutantSet) -> Vec<Mutant> {
    let header_texts: Vec<&str> = set.headers.iter().map(|(_, t)| t.as_str()).collect();
    let model = CMutationModel::new(set.source, &header_texts, set.style);
    sample(model.mutants(), set.fraction, 2001)
}

#[test]
// ~100 interpreted kernel boots: 20 s unoptimized vs 2 s in release. CI
// runs it in a dedicated release step; skipping the debug pass avoids
// paying for the same boots twice per pipeline.
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release (CI does)")]
fn reset_engine_matches_rebuild_per_mutant() {
    let files = fs::standard_files();
    let mut golden = String::new();
    for set in mutant_sets() {
        let mutants = sampled_mutants(&set);
        assert!(
            mutants.len() >= 10,
            "{}: sample too small ({}) to be meaningful",
            set.label,
            mutants.len()
        );
        let incs: Vec<(&str, &str)> =
            set.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();

        // Old path: a fresh machine per mutant.
        let rebuild: Vec<Outcome> = run_parallel(&mutants, THREADS, |m| {
            run_mutant(set.file, &m.source, &incs, Some(m.line), &files, DEFAULT_FUEL).0
        });
        // New path: one machine per worker, snapshot-restored per mutant.
        let reset: Vec<Outcome> = Campaign::new(
            || CampaignMachine::new(&files, DEFAULT_FUEL),
            |machine: &mut CampaignMachine, m: &Mutant| {
                machine.run(set.file, &m.source, &incs, Some(m.line)).0
            },
        )
        .with_threads(THREADS)
        .run(&mutants);

        for (i, m) in mutants.iter().enumerate() {
            assert_eq!(
                rebuild[i], reset[i],
                "{}: site {} ({}) classified differently by the reset engine",
                set.label, m.site, m.description
            );
            writeln!(
                golden,
                "{}\t{}\t{}\t{:?}",
                set.label, m.site, m.description, reset[i]
            )
            .expect("writing to a String cannot fail");
        }
    }

    if std::env::var_os("DEVIL_BLESS").is_some() {
        std::fs::write(GOLDEN, &golden).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run with DEVIL_BLESS=1 to create it");
    assert_eq!(
        golden, expected,
        "campaign outcomes diverged from tests/golden/campaign_differential.txt \
         (rerun with DEVIL_BLESS=1 if the change is intended)"
    );
}
