//! Show the Devil compiler's two backends side by side for one variable:
//! the Figure-4 debug stub (struct-encoded, asserted) versus the lean
//! production stub.
//!
//! ```text
//! cargo run --example codegen [spec.dil]
//! ```
//!
//! With an argument, compiles that specification file from disk instead of
//! the bundled IDE spec.

use devil::core::codegen::{generate, CodegenMode};
use devil::core::Spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (name, source) = match std::env::args().nth(1) {
        Some(path) => (path.clone(), std::fs::read_to_string(&path)?),
        None => (
            "ide_piix4.dil".to_string(),
            devil::drivers::specs::IDE_PIIX4.to_string(),
        ),
    };
    let checked = Spec::parse(&name, &source)?.check()?;
    println!("device {}:\n", checked.device_name());
    println!("{}", checked.render_schematic());
    for mode in [CodegenMode::Debug, CodegenMode::Production] {
        let c = generate(&checked, mode);
        println!("=== {mode:?} mode: {} lines ===", c.lines().count());
        // Print the API surface only (stub signatures).
        for line in c.lines() {
            if line.starts_with("static") && line.contains('(') && !line.ends_with(';') {
                println!("  {}", line.trim_end_matches('{').trim_end());
            }
        }
        println!();
    }
    Ok(())
}
