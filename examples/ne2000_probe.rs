//! Probe the NE2000 through Devil stubs: read the station address from the
//! PROM via remote DMA, program it into the PAR registers (a *paged*
//! register file — every access goes through the `page` pre-action), and
//! start the NIC.
//!
//! ```text
//! cargo run --example ne2000_probe
//! ```

use devil::core::runtime::{DeviceInstance, StubMode};
use devil::core::Spec;
use devil::hwsim::devices::Ne2000;
use devil::hwsim::IoSpace;

const BASE: u16 = 0x300;
const MAC: [u8; 6] = [0x00, 0x0E, 0xA5, 0x42, 0x42, 0x42];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = Spec::parse("ne2000.dil", devil::drivers::specs::NE2000)?.check()?;
    let mut io = IoSpace::new();
    let nic = io.map(BASE, 0x20, Box::new(Ne2000::new(MAC)))?;
    let mut dev = DeviceInstance::new(&checked, &[BASE], StubMode::Debug);

    // Reset via the read-trigger register, then confirm through the ISR.
    dev.get(&mut io, "reset_trigger")?;
    let rst = dev.get(&mut io, "reset_state")?;
    assert_eq!(rst.raw, 1, "ISR.RST must be set after reset");
    println!("reset complete (ISR.RST readable through the stubs)");

    // Stop the NIC and abort remote DMA, as the probe sequence does.
    dev.set(&mut io, "remote_op", dev.int_value("remote_op", 4)?)?;
    dev.set(&mut io, "stop", dev.int_value("stop", 1)?)?;

    // Remote-DMA the 12 first PROM bytes (each MAC byte is doubled).
    dev.set(&mut io, "remote_count_lo", dev.int_value("remote_count_lo", 12)?)?;
    dev.set(&mut io, "remote_count_hi", dev.int_value("remote_count_hi", 0)?)?;
    dev.set(&mut io, "remote_addr_lo", dev.int_value("remote_addr_lo", 0)?)?;
    dev.set(&mut io, "remote_addr_hi", dev.int_value("remote_addr_hi", 0)?)?;
    dev.set(&mut io, "remote_op", dev.int_value("remote_op", 1)?)?;
    let mut mac = [0u8; 6];
    for (i, byte) in mac.iter_mut().enumerate() {
        let hi = dev.get(&mut io, "remote_data")?.raw as u8;
        let _lo = dev.get(&mut io, "remote_data")?.raw as u8;
        *byte = hi;
        let _ = i;
    }
    println!(
        "PROM station address: {:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
        mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]
    );
    assert_eq!(mac, MAC);
    let done = dev.get(&mut io, "dma_done")?;
    assert_eq!(done.raw, 1, "ISR.RDC after the transfer drains");

    // Program the PAR registers: page-1 accesses — the stubs insert the
    // `page = 1` pre-action (and restore writes go through the CR cache).
    for (i, b) in mac.iter().enumerate() {
        let var = format!("mac{i}");
        let v = dev.int_value(&var, *b as u64)?;
        dev.set(&mut io, &var, v)?;
    }
    let programmed = io.device::<Ne2000>(nic).expect("mapped").programmed_mac();
    assert_eq!(programmed, MAC, "PAR registers must hold the station address");
    println!("PAR registers programmed through page-1 pre-actions");

    // Start the NIC (page select back to 0 happens implicitly on the next
    // page-0 access; start/stop live in the unpaged CR bits).
    dev.set(&mut io, "stop", dev.int_value("stop", 0)?)?;
    dev.set(&mut io, "start", dev.int_value("start", 1)?)?;
    assert!(io.device::<Ne2000>(nic).expect("mapped").is_running());
    println!("NIC started; {} port accesses total", io.clock());
    Ok(())
}
