//! Boot the simulated kernel twice — once with the classic C IDE driver,
//! once with the CDevil driver — and show they behave identically, then
//! inject one typo into each and watch the difference.
//!
//! ```text
//! cargo run --example ide_boot
//! ```

use devil::drivers::ide;
use devil::kernel::boot::{boot_ide, standard_ide_machine, DEFAULT_FUEL};
use devil::kernel::fs;

fn boot(label: &str, file: &str, source: &str, includes: &[(String, String)]) {
    let incs: Vec<(&str, &str)> =
        includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    match devil::minic::compile_with_includes(file, source, &incs) {
        Err(e) => println!("{label}: COMPILE ERROR: {e}"),
        Ok(program) => {
            let files = fs::standard_files();
            let (mut io, ide_dev) = standard_ide_machine(&files);
            let report = boot_ide(&program, &mut io, ide_dev, &files, DEFAULT_FUEL);
            println!("{label}: {} — {}", report.outcome, report.detail);
            for line in &report.console {
                println!("{label}:   console: {line}");
            }
        }
    }
}

fn main() {
    println!("== clean drivers ==");
    boot("C     ", ide::IDE_C_FILE, ide::IDE_C_DRIVER, &[]);
    boot(
        "CDevil",
        ide::IDE_CDEVIL_FILE,
        ide::IDE_CDEVIL_DRIVER,
        &ide::cdevil_includes(),
    );

    println!("\n== one-character typo: drive-select constant ==");
    // C: 0xe0 -> 0xf0 silently selects the (absent) slave drive.
    let c_typo = ide::IDE_C_DRIVER.replace("outb(0xe0 | sel, HD_CURRENT);", "outb(0xf0 | sel, HD_CURRENT);");
    boot("C     ", ide::IDE_C_FILE, &c_typo, &[]);
    // CDevil: the equivalent inattention error — the wrong constant.
    let d_typo = ide::IDE_CDEVIL_DRIVER.replace("set_Drive(MASTER);\n    set_head", "set_Drive(SLAVE);\n    set_head");
    boot(
        "CDevil",
        ide::IDE_CDEVIL_FILE,
        &d_typo,
        &ide::cdevil_includes(),
    );

    println!("\n== type confusion: a command constant where a drive belongs ==");
    let d_confused = ide::IDE_CDEVIL_DRIVER.replace("set_Drive(MASTER);\n    set_head", "set_Drive(IDENTIFY);\n    set_head");
    boot(
        "CDevil",
        ide::IDE_CDEVIL_FILE,
        &d_confused,
        &ide::cdevil_includes(),
    );
    println!("(the struct encoding of Devil types catches this at compile time)");
}
