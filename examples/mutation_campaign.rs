//! Run a miniature mutation campaign (a 5% sample) under any scenario in
//! the catalog and print the outcome distribution — a fast preview of
//! Tables 3 and 4 for the IDE boot, and of their equivalents for every
//! other workload. The full campaigns live in `devil-bench`.
//!
//! ```text
//! cargo run --release --example mutation_campaign \
//!     [-- <scenario> [--threads=N] [--fault-plan=NAME] [--fault-seed=N]
//!         [--ledger=PATH] [--resume]]
//! ```
//!
//! `--ledger=PATH` checkpoints every classification to a crash-safe
//! append-only outcome ledger (`devil::mutagen::ledger`) as workers
//! produce it; `--resume` replays the file's surviving records as hits
//! first and classifies only what is missing, so a campaign killed
//! partway — even `kill -9` — finishes with the same distribution as an
//! uninterrupted run. Without `--resume` the file starts fresh.
//!
//! `<scenario>` defaults to `ide-boot`; any name from
//! `devil::drivers::corpus::scenario_names()` works (`ide-stress`,
//! `mouse-stream`, `ne2000-stress`), as does its `<name>+faults` variant.
//! Every driver paired with the scenario is mutated and campaigned.
//!
//! `--threads=N` sets the worker-thread count; the default (`0`) uses
//! every available core.
//!
//! `--fault-plan=NAME` runs the campaign on deterministically flaky
//! hardware under one of the bundled fault plans (`none`, `flaky-status`,
//! `dropped-irq`, `bus-noise`, `absent-window`, `mixed`); `--fault-seed=N`
//! picks the plan's PRNG seed (default `DEFAULT_FAULT_SEED`, decimal or
//! `0x`/`0X` hex accepted). Passing either flag — or a
//! `<scenario>+faults` name — selects the fault variant; the bare name
//! with no flags runs fault-free.
//!
//! Each worker thread owns one [`ScenarioMachine`]: the simulated machine
//! is built once per worker and snapshot-restored before every mutant
//! (IDE platter restores ride the dirty-sector journal; the fault
//! interposer's cursor rewinds with the snapshot, so every mutant sees
//! the same fault sequence), instead of being reconstructed ~100 times.
//! The generated stub headers are pre-lexed once per campaign into a
//! shared [`IncludeCache`] (it is `Sync`), so every worker re-lexes only
//! the spliced driver file, and each mutant runs through the minic
//! bytecode VM.

use devil::drivers::corpus::{
    build_faulted, build_scenario, scenario_catalog, scenario_names, DriverVariant,
};
use devil::hwsim::{FaultPlan, DEFAULT_FAULT_SEED};
use devil::kernel::boot::{Outcome, DEFAULT_FUEL};
use devil::kernel::scenario::ScenarioMachine;
use devil::minic::pp::IncludeCache;
use devil::mutagen::c::CMutationModel;
use devil::mutagen::{sample, source_fingerprint, Campaign, Ledger, LedgerKey, Mutant};
use devil_bench::tables::parse_seed;
use std::collections::BTreeMap;

fn campaign(
    scenario_name: &'static str,
    plan: Option<&FaultPlan>,
    v: &DriverVariant,
    threads: usize,
    ledger: Option<&Ledger>,
) {
    let header_texts: Vec<&str> = v.headers.iter().map(|(_, t)| t.as_str()).collect();
    let model = CMutationModel::new(v.source, &header_texts, v.style);
    let mutants = sample(model.mutants(), 0.05, 42);
    let incs: Vec<(&str, &str)> =
        v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    // One pre-lexed header set for the whole campaign; workers share it.
    let cache = IncludeCache::new(&incs);
    let file = v.file;
    let runner = Campaign::new(
        || {
            let scenario = match plan {
                Some(p) => build_faulted(scenario_name, p.clone()),
                None => build_scenario(scenario_name),
            }
            .expect("catalog scenario builds");
            ScenarioMachine::with_scenario(scenario, DEFAULT_FUEL)
        },
        |machine: &mut ScenarioMachine<_>, m: &Mutant| {
            machine.run_cached(file, &m.source, &cache, Some(m.line), None).0
        },
    )
    .with_threads(threads);
    let outcomes = match ledger {
        None => runner.run(&mutants),
        Some(ledger) => {
            let rev = ledger.spec_rev();
            let (plan_name, plan_seed) =
                plan.map(|p| (p.name().to_string(), p.seed())).unwrap_or_default();
            runner.run_memoized(
                &mutants,
                ledger,
                |m| LedgerKey {
                    file: file.to_string(),
                    source: source_fingerprint(&m.source),
                    scenario: scenario_name.to_string(),
                    plan: plan_name.clone(),
                    plan_seed,
                    dead_line: m.line,
                    spec_rev: rev,
                },
                |o| o.is_deterministic().then(|| (o.code(), String::new())),
                |code, _| Outcome::from_code(code),
            )
        }
    };
    let mut tally: BTreeMap<Outcome, usize> = BTreeMap::new();
    for o in outcomes {
        *tally.entry(o).or_default() += 1;
    }
    let hardware = match plan {
        Some(p) => format!(" [fault plan `{}`, seed {:#x}]", p.name(), p.seed()),
        None => String::new(),
    };
    println!(
        "{} under {scenario_name}{hardware}: {} sites, {} mutants evaluated",
        v.label,
        model.sites().len(),
        mutants.len()
    );
    if let Some(l) = ledger {
        let c = l.counters();
        println!("  ledger: {} replayed, {} classified fresh", c.hits, c.misses);
    }
    for outcome in Outcome::table_order() {
        if let Some(n) = tally.get(&outcome) {
            println!(
                "  {outcome:<20} {n:>5}  ({:.1}%)",
                100.0 * *n as f64 / mutants.len() as f64
            );
        }
    }
    let detected: usize = tally
        .iter()
        .filter(|(o, _)| o.is_detected())
        .map(|(_, n)| n)
        .sum();
    println!(
        "  detected at compile or run time: {:.1}%\n",
        100.0 * detected as f64 / mutants.len() as f64
    );
}

fn main() {
    let mut requested: Option<String> = None;
    let mut plan_name: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    // 0 = one worker per available core (the `Campaign` convention).
    let mut threads: usize = 0;
    let mut ledger_path: Option<std::path::PathBuf> = None;
    let mut resume = false;
    for arg in std::env::args().skip(1) {
        if arg == "--resume" {
            resume = true;
        } else if let Some(p) = arg.strip_prefix("--ledger=") {
            ledger_path = Some(std::path::PathBuf::from(p));
        } else if let Some(v) = arg.strip_prefix("--fault-plan=") {
            plan_name = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--fault-seed=") {
            match parse_seed(v) {
                Ok(n) => fault_seed = Some(n),
                Err(e) => {
                    eprintln!("--fault-seed: {e}");
                    std::process::exit(1);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v.parse().unwrap_or_else(|_| {
                eprintln!("--threads expects a thread count, got `{v}`");
                std::process::exit(1);
            });
        } else if requested.is_none() {
            requested = Some(arg);
        } else {
            eprintln!("unexpected argument `{arg}`");
            std::process::exit(1);
        }
    }
    let mut requested = requested.unwrap_or_else(|| "ide-boot".into());
    // `<name>+faults` is shorthand for the default plan; explicit flags
    // compose with it.
    if let Some(base) = requested.strip_suffix("+faults") {
        requested = base.to_string();
        plan_name.get_or_insert_with(|| "mixed".into());
    }
    if fault_seed.is_some() {
        plan_name.get_or_insert_with(|| "mixed".into());
    }
    let plan = plan_name.map(|name| {
        FaultPlan::named(&name, fault_seed.unwrap_or(DEFAULT_FAULT_SEED)).unwrap_or_else(
            || {
                eprintln!(
                    "unknown fault plan `{name}`; available: {}",
                    FaultPlan::plan_names().join(", ")
                );
                std::process::exit(1);
            },
        )
    });
    if resume && ledger_path.is_none() {
        eprintln!("--resume requires --ledger=PATH");
        std::process::exit(1);
    }
    let Some(case) = scenario_catalog().into_iter().find(|c| c.scenario == requested) else {
        eprintln!(
            "unknown scenario `{requested}`; available: {} (each also as `<name>+faults`)",
            scenario_names().join(", ")
        );
        std::process::exit(1);
    };
    // --ledger without --resume starts the file fresh; every driver of
    // the scenario appends to the same file (per-driver spec revisions
    // keep their entries apart).
    let mut keep = resume;
    for v in &case.drivers {
        let ledger = ledger_path.as_ref().map(|path| {
            let opts = devil_bench::tables::CampaignOptions {
                fault_plan: plan.clone(),
                ..devil_bench::tables::CampaignOptions::default()
            };
            let l = devil_bench::tables::open_campaign_ledger(path, keep, v, &opts)
                .unwrap_or_else(|e| {
                    eprintln!("cannot open ledger {}: {e}", path.display());
                    std::process::exit(1);
                });
            keep = true;
            l
        });
        campaign(case.scenario, plan.as_ref(), v, threads, ledger.as_ref());
    }
}
