//! Run a miniature mutation campaign (a 5% sample) under any scenario in
//! the catalog and print the outcome distribution — a fast preview of
//! Tables 3 and 4 for the IDE boot, and of their equivalents for every
//! other workload. The full campaigns live in `devil-bench`.
//!
//! ```text
//! cargo run --release --example mutation_campaign [-- <scenario>]
//! ```
//!
//! `<scenario>` defaults to `ide-boot`; any name from
//! `devil::drivers::corpus::scenario_names()` works (`ide-stress`,
//! `mouse-stream`, `ne2000-stress`). Every driver paired with the
//! scenario is mutated and campaigned.
//!
//! Each worker thread owns one [`ScenarioMachine`]: the simulated machine
//! is built once per worker and snapshot-restored before every mutant
//! (IDE platter restores ride the dirty-sector journal), instead of being
//! reconstructed ~100 times. The generated stub headers are pre-lexed
//! once per campaign into a shared [`IncludeCache`] (it is `Sync`), so
//! every worker re-lexes only the spliced driver file, and each mutant
//! runs through the minic bytecode VM.

use devil::drivers::corpus::{build_scenario, scenario_catalog, scenario_names, DriverVariant};
use devil::kernel::boot::{Outcome, DEFAULT_FUEL};
use devil::kernel::scenario::ScenarioMachine;
use devil::minic::pp::IncludeCache;
use devil::mutagen::c::CMutationModel;
use devil::mutagen::{sample, Campaign, Mutant};
use std::collections::BTreeMap;

fn campaign(scenario_name: &'static str, v: &DriverVariant) {
    let header_texts: Vec<&str> = v.headers.iter().map(|(_, t)| t.as_str()).collect();
    let model = CMutationModel::new(v.source, &header_texts, v.style);
    let mutants = sample(model.mutants(), 0.05, 42);
    let incs: Vec<(&str, &str)> =
        v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    // One pre-lexed header set for the whole campaign; workers share it.
    let cache = IncludeCache::new(&incs);
    let file = v.file;
    let outcomes = Campaign::new(
        || {
            ScenarioMachine::with_scenario(
                build_scenario(scenario_name).expect("catalog scenario builds"),
                DEFAULT_FUEL,
            )
        },
        |machine, m: &Mutant| machine.run_cached(file, &m.source, &cache, Some(m.line)).0,
    )
    .with_threads(8)
    .run(&mutants);
    let mut tally: BTreeMap<Outcome, usize> = BTreeMap::new();
    for o in outcomes {
        *tally.entry(o).or_default() += 1;
    }
    println!(
        "{} under {scenario_name}: {} sites, {} mutants evaluated",
        v.label,
        model.sites().len(),
        mutants.len()
    );
    for outcome in Outcome::table_order() {
        if let Some(n) = tally.get(&outcome) {
            println!(
                "  {outcome:<20} {n:>5}  ({:.1}%)",
                100.0 * *n as f64 / mutants.len() as f64
            );
        }
    }
    let detected: usize = tally
        .iter()
        .filter(|(o, _)| o.is_detected())
        .map(|(_, n)| n)
        .sum();
    println!(
        "  detected at compile or run time: {:.1}%\n",
        100.0 * detected as f64 / mutants.len() as f64
    );
}

fn main() {
    let requested = std::env::args().nth(1).unwrap_or_else(|| "ide-boot".into());
    let Some(case) = scenario_catalog().into_iter().find(|c| c.scenario == requested) else {
        eprintln!(
            "unknown scenario `{requested}`; available: {}",
            scenario_names().join(", ")
        );
        std::process::exit(1);
    };
    for v in &case.drivers {
        campaign(case.scenario, v);
    }
}
