//! Run a miniature mutation campaign (a 5% sample) against both IDE
//! drivers and print the outcome distribution — a fast preview of
//! Tables 3 and 4. The full campaigns live in `devil-bench`.
//!
//! Each worker thread owns one [`CampaignMachine`]: the simulated machine
//! is built (and `mkfs`ed) once per worker and snapshot-restored before
//! every mutant, instead of being reconstructed ~100 times. The generated
//! stub headers are pre-lexed once per campaign into a shared
//! [`IncludeCache`] (it is `Sync`), so every worker re-lexes only the
//! spliced driver file, and each mutant boots through the minic bytecode
//! VM.
//!
//! ```text
//! cargo run --release --example mutation_campaign
//! ```

use devil::kernel::boot::{CampaignMachine, Outcome, DEFAULT_FUEL};
use devil::kernel::fs;
use devil::minic::pp::IncludeCache;
use devil::mutagen::c::{CMutationModel, CStyle};
use devil::mutagen::{sample, Campaign, Mutant};
use std::collections::BTreeMap;

fn campaign(label: &str, file: &str, source: &str, headers: &[(String, String)], style: CStyle) {
    let header_texts: Vec<&str> = headers.iter().map(|(_, t)| t.as_str()).collect();
    let model = CMutationModel::new(source, &header_texts, style);
    let mutants = sample(model.mutants(), 0.05, 42);
    let incs: Vec<(&str, &str)> =
        headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    // One pre-lexed header set for the whole campaign; workers share it.
    let cache = IncludeCache::new(&incs);
    let files = fs::standard_files();
    let outcomes = Campaign::new(
        || CampaignMachine::new(&files, DEFAULT_FUEL),
        |machine: &mut CampaignMachine, m: &Mutant| {
            machine.run_cached(file, &m.source, &cache, Some(m.line)).0
        },
    )
    .with_threads(8)
    .run(&mutants);
    let mut tally: BTreeMap<Outcome, usize> = BTreeMap::new();
    for o in outcomes {
        *tally.entry(o).or_default() += 1;
    }
    println!("{label}: {} sites, {} mutants evaluated", model.sites().len(), mutants.len());
    for outcome in Outcome::table_order() {
        if let Some(n) = tally.get(&outcome) {
            println!(
                "  {outcome:<20} {n:>5}  ({:.1}%)",
                100.0 * *n as f64 / mutants.len() as f64
            );
        }
    }
    let detected: usize = tally
        .iter()
        .filter(|(o, _)| o.is_detected())
        .map(|(_, n)| n)
        .sum();
    println!(
        "  detected at compile or run time: {:.1}%\n",
        100.0 * detected as f64 / mutants.len() as f64
    );
}

fn main() {
    let ide = devil::drivers::ide::IDE_C_DRIVER;
    campaign("C driver", devil::drivers::ide::IDE_C_FILE, ide, &[], CStyle::PlainC);
    let headers = devil::drivers::ide::cdevil_includes();
    campaign(
        "CDevil driver",
        devil::drivers::ide::IDE_CDEVIL_FILE,
        devil::drivers::ide::IDE_CDEVIL_DRIVER,
        &headers,
        CStyle::CDevil,
    );
}
