//! Quickstart: the full Devil workflow of Figure 1 in five steps.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use devil::core::codegen::{generate, CodegenMode};
use devil::core::runtime::{DeviceInstance, StubMode};
use devil::core::Spec;
use devil::hwsim::devices::Busmouse;
use devil::hwsim::IoSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the device specification (Figure 3 of the paper).
    let spec = Spec::parse("busmouse.dil", devil::drivers::specs::BUSMOUSE)?;

    // 2. Check it: intra-layer and inter-layer consistency.
    let checked = spec.check()?;
    println!(
        "checked `{}`: {} ports, {} registers, {} variables",
        checked.device_name(),
        checked.ports.len(),
        checked.registers.len(),
        checked.variables.len()
    );

    // 3. Generate the C stubs a driver programmer would #include.
    let debug_stubs = generate(&checked, CodegenMode::Debug);
    println!(
        "generated {} lines of debug stubs (and {} in production mode)",
        debug_stubs.lines().count(),
        generate(&checked, CodegenMode::Production).lines().count()
    );

    // 4. Build a simulated machine with the mouse at its classic port.
    let mut io = IoSpace::new();
    let mouse = io.map(0x23C, 4, Box::new(Busmouse::new()))?;
    io.device_mut::<Busmouse>(mouse)
        .expect("just mapped")
        .inject_motion(-3, 9, 0b100);

    // 5. Drive the device through the executable stub runtime.
    let mut dev = DeviceInstance::new(&checked, &[0x23C], StubMode::Debug);
    let disable = dev.value_of("interrupt", "DISABLE")?;
    dev.set(&mut io, "interrupt", disable)?;
    let dx = dev.get(&mut io, "dx")?;
    let dy = dev.get(&mut io, "dy")?;
    let buttons = dev.get(&mut io, "buttons")?;
    println!(
        "mouse state: dx={} dy={} buttons={:03b}",
        dx.as_signed(8),
        dy.as_signed(8),
        buttons.raw
    );
    assert_eq!(dx.as_signed(8), -3);
    assert_eq!(dy.as_signed(8), 9);
    Ok(())
}
