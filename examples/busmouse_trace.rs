//! Trace the exact port traffic the Devil stubs generate for one mouse
//! read, and verify the interpreted CDevil driver produces the *same*
//! traffic — the differential check between the two stub implementations.
//!
//! ```text
//! cargo run --example busmouse_trace
//! ```

use devil::core::runtime::{DeviceInstance, StubMode};
use devil::core::Spec;
use devil::hwsim::devices::Busmouse;
use devil::hwsim::{Access, IoSpace};
use devil::kernel::MachineHost;
use devil::minic::interp::Interpreter;

const BASE: u16 = 0x23C;

fn machine() -> (IoSpace, devil::hwsim::DeviceId) {
    let mut io = IoSpace::new();
    let id = io.map(BASE, 4, Box::new(Busmouse::new())).unwrap();
    io.device_mut::<Busmouse>(id).unwrap().inject_motion(5, -2, 0b001);
    (io, id)
}

fn show(trace: &[Access]) {
    for a in trace {
        println!(
            "  {:<5} port {:#06x} value {:#04x}",
            match a.kind {
                devil::hwsim::AccessKind::Read => "in",
                devil::hwsim::AccessKind::Write => "out",
            },
            a.port,
            a.value
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Native stub runtime.
    let checked = Spec::parse("busmouse.dil", devil::drivers::specs::BUSMOUSE)?.check()?;
    let (mut io, _) = machine();
    io.enable_trace();
    let mut dev = DeviceInstance::new(&checked, &[BASE], StubMode::Debug);
    let dx = dev.get(&mut io, "dx")?;
    let native_trace = io.take_trace();
    println!("native stub runtime read dx = {} via:", dx.as_signed(8));
    show(&native_trace);

    // Interpreted CDevil driver doing the same read.
    let includes = devil::drivers::busmouse::bm_includes();
    let incs: Vec<(&str, &str)> =
        includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    let program = devil::minic::compile_with_includes(
        "bm.c",
        devil::drivers::busmouse::BM_CDEVIL_DRIVER,
        &incs,
    )?;
    let (mut io2, _) = machine();
    io2.enable_trace();
    {
        let mut host = MachineHost::new(&mut io2);
        let mut interp = Interpreter::new(&program, &mut host, 1_000_000);
        interp.call("bm_read_state", &[])?;
    }
    let interp_trace = io2.take_trace();
    println!("\ninterpreted CDevil driver traffic ({} accesses):", interp_trace.len());
    show(&interp_trace);

    // The native dx read must appear as a sub-sequence of the driver's
    // full state read (same ports, same values).
    let native_ops: Vec<(u16, u32)> = native_trace.iter().map(|a| (a.port, a.value)).collect();
    let interp_ops: Vec<(u16, u32)> = interp_trace.iter().map(|a| (a.port, a.value)).collect();
    let found = interp_ops
        .windows(native_ops.len())
        .any(|w| w == native_ops.as_slice());
    println!(
        "\nnative dx sequence {} inside the interpreted driver's traffic",
        if found { "FOUND" } else { "NOT FOUND" }
    );
    assert!(found, "the two stub implementations must agree access for access");
    Ok(())
}
