//! Reference bus implementation: linear-scan dispatch, eager ticking.
//!
//! [`LinearIoSpace`] preserves the pre-optimisation `IoSpace` behaviour —
//! an O(mappings) scan per access and an eager `tick(1)` delivered to
//! *every* device on *every* access. It exists for two jobs:
//!
//! * **correctness oracle** — property tests map identical device sets
//!   into both fabrics and assert access-for-access agreement with the
//!   O(1) routing table of [`crate::IoSpace`];
//! * **performance baseline** — the `bus_dispatch` bench measures both
//!   fabrics on the same workload, which is what `BENCH_dispatch.json`'s
//!   speedup figures compare against.
//!
//! Keep this implementation boring. It is intentionally the naive code.

use crate::bus::{AccessSize, BusFault, DeviceFault, IoBus, IoDevice, MapError, UnmappedPolicy};

struct Mapping {
    base: u16,
    len: u16,
    device: usize,
}

/// The naive port-mapped I/O space: linear lookup, eager tick fan-out.
#[derive(Default)]
pub struct LinearIoSpace {
    mappings: Vec<Mapping>,
    devices: Vec<Box<dyn IoDevice>>,
    policy: UnmappedPolicy,
    clock: u64,
}

impl LinearIoSpace {
    /// Create an empty reference space with the floating unmapped policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the behaviour of accesses that hit no device.
    pub fn set_unmapped_policy(&mut self, policy: UnmappedPolicy) {
        self.policy = policy;
    }

    /// Current bus clock (one tick per access).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Map `device` at `[base, base + len)` with the same window rules as
    /// [`crate::IoSpace::map`].
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] on an empty window, a window past the end of
    /// the port space, or an overlap with an existing mapping.
    pub fn map(&mut self, base: u16, len: u16, device: Box<dyn IoDevice>) -> Result<(), MapError> {
        if len == 0 || (base as u32) + (len as u32) > 0x1_0000 {
            return Err(MapError::BadWindow { base, len });
        }
        let new_end = base as u32 + len as u32;
        for m in &self.mappings {
            let end = m.base as u32 + m.len as u32;
            if (base as u32) < end && (m.base as u32) < new_end {
                return Err(MapError::Overlap { base, len });
            }
        }
        let idx = self.devices.len();
        self.devices.push(device);
        self.mappings.push(Mapping { base, len, device: idx });
        Ok(())
    }

    /// The linear lookup the optimised table replaced.
    pub fn lookup(&self, port: u16) -> Option<(usize, u16)> {
        for m in &self.mappings {
            if port >= m.base && (port as u32) < m.base as u32 + m.len as u32 {
                return Some((m.device, port - m.base));
            }
        }
        None
    }

    fn advance(&mut self) {
        self.clock += 1;
        for d in &mut self.devices {
            d.tick(1);
        }
    }

    fn read_any(&mut self, port: u16, size: AccessSize) -> Result<u32, BusFault> {
        self.advance();
        let value = match self.lookup(port) {
            Some((idx, offset)) => self.devices[idx]
                .read(offset, size)
                .map_err(|fault| BusFault::Device { port, fault })?,
            None => match self.policy {
                UnmappedPolicy::Float => size.mask(),
                UnmappedPolicy::Fault => return Err(BusFault::Unmapped { port, size }),
            },
        } & size.mask();
        Ok(value)
    }

    fn write_any(&mut self, port: u16, size: AccessSize, value: u32) -> Result<(), BusFault> {
        self.advance();
        let value = value & size.mask();
        match self.lookup(port) {
            Some((idx, offset)) => self.devices[idx]
                .write(offset, size, value)
                .map_err(|fault| BusFault::Device { port, fault }),
            None => match self.policy {
                UnmappedPolicy::Float => Ok(()),
                UnmappedPolicy::Fault => Err(BusFault::Unmapped { port, size }),
            },
        }
    }
}

impl IoBus for LinearIoSpace {
    fn inb(&mut self, port: u16) -> Result<u8, BusFault> {
        Ok(self.read_any(port, AccessSize::Byte)? as u8)
    }

    fn inw(&mut self, port: u16) -> Result<u16, BusFault> {
        Ok(self.read_any(port, AccessSize::Word)? as u16)
    }

    fn inl(&mut self, port: u16) -> Result<u32, BusFault> {
        self.read_any(port, AccessSize::Dword)
    }

    fn outb(&mut self, port: u16, value: u8) -> Result<(), BusFault> {
        self.write_any(port, AccessSize::Byte, value as u32)
    }

    fn outw(&mut self, port: u16, value: u16) -> Result<(), BusFault> {
        self.write_any(port, AccessSize::Word, value as u32)
    }

    fn outl(&mut self, port: u16, value: u32) -> Result<(), BusFault> {
        self.write_any(port, AccessSize::Dword, value)
    }
}

/// A deliberately inert device for dispatch benchmarks and routing tests:
/// reads echo the offset, writes are stored to one cell, no timers.
#[derive(Debug, Clone, Default)]
pub struct NullDevice {
    last: u32,
}

impl NullDevice {
    /// Create an inert device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Last value written.
    pub fn last(&self) -> u32 {
        self.last
    }
}

impl IoDevice for NullDevice {
    fn name(&self) -> &str {
        "null"
    }

    fn read(&mut self, offset: u16, _size: AccessSize) -> Result<u32, DeviceFault> {
        Ok(offset as u32)
    }

    fn write(&mut self, _offset: u16, _size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        self.last = value;
        Ok(())
    }

    fn save(&self, w: &mut crate::snap::StateWriter<'_>) {
        w.u32(self.last);
    }

    fn load(&mut self, r: &mut crate::snap::StateReader<'_>) {
        self.last = r.u32();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::ScratchRegisters;
    use crate::IoSpace;

    #[test]
    fn linear_space_round_trips() {
        let mut io = LinearIoSpace::new();
        io.map(0x100, 4, Box::new(ScratchRegisters::new(4))).unwrap();
        io.outb(0x101, 0x7E).unwrap();
        assert_eq!(io.inb(0x101).unwrap(), 0x7E);
        assert_eq!(io.inb(0x400).unwrap(), 0xFF, "floats like the real bus");
    }

    #[test]
    fn linear_space_rejects_overlap_like_the_table() {
        let mut lin = LinearIoSpace::new();
        let mut tab = IoSpace::new();
        for (base, len) in [(0x10u16, 8u16), (0x14, 4), (0x18, 2), (0x0, 0), (0xFFFF, 2)] {
            let a = lin.map(base, len, Box::new(NullDevice::new())).is_ok();
            let b = tab.map(base, len, Box::new(NullDevice::new())).is_ok();
            assert_eq!(a, b, "map({base:#x}, {len}) must agree");
        }
    }
}
