//! Register-accurate simulated I/O hardware for the Devil reproduction.
//!
//! The Devil paper evaluates drivers against real ISA/PCI peripherals (an IDE
//! disk, an NE2000 Ethernet card, a Logitech busmouse, ...). This crate
//! provides behavioural models of those peripherals behind a single
//! [`IoSpace`] port-mapped bus, so that generated Devil stubs and C drivers
//! exercise the *same* protocol state machines the originals did.
//!
//! # Quick example
//!
//! ```
//! use devil_hwsim::{IoBus, IoSpace, devices::Busmouse};
//!
//! let mut io = IoSpace::new();
//! let mouse = io.map(0x23c, 4, Box::new(Busmouse::new())).unwrap();
//! // Write the signature register (base + 1) and read it back.
//! io.outb(0x23d, 0xA5).unwrap();
//! assert_eq!(io.inb(0x23d).unwrap(), 0xA5);
//! # let _ = mouse;
//! ```
//!
//! Device models live in [`devices`]; the bus fabric in [`bus`].
//!
//! # Campaign snapshots
//!
//! Mutation campaigns evaluate thousands of driver variants against the
//! same machine. Instead of rebuilding the [`IoSpace`] per variant, build
//! it once, capture a [`Snapshot`] with [`IoSpace::snapshot`], and rewind
//! with [`IoSpace::restore`] before each run — a memcpy-sized,
//! allocation-free reset that reuses the O(1) routing table. The
//! [`snap`] module documents the lifecycle and the
//! [`IoDevice::save`]/[`IoDevice::load`] contract device models must
//! implement to participate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod devices;
pub mod fault;
pub mod reference;
pub mod snap;

pub use bus::{
    Access, AccessKind, AccessSize, BusFault, DeviceFault, DeviceId, IoBus, IoDevice, IoSpace,
    MapError, UnmappedPolicy,
};
pub use fault::{FaultKind, FaultPlan, FaultRule, DEFAULT_FAULT_SEED};
pub use snap::{RestoreError, Snapshot, StateReader, StateWriter};
