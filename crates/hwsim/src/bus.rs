//! The port-mapped I/O bus fabric.
//!
//! An [`IoSpace`] owns a set of [`IoDevice`]s, each mapped at a base port
//! with a length. Drivers (interpreted C or Devil stubs) talk to the space
//! through the [`IoBus`] trait — `inb`/`outb` and the 16/32-bit variants —
//! exactly mirroring the x86 port instructions the paper's drivers used.
//!
//! Unmapped accesses follow a configurable [`UnmappedPolicy`]: the faithful
//! ISA behaviour (reads float to `0xFF`, writes vanish) or a strict mode that
//! reports a [`BusFault`], useful in unit tests.

use crate::fault::{FaultInterposer, FaultPlan};
use crate::snap::{RestoreError, Snapshot, StateReader, StateWriter};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique snapshot identities, starting at 1 (0 = "unknown").
fn next_snapshot_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Width of a single port access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 8-bit access (`inb`/`outb`).
    Byte,
    /// 16-bit access (`inw`/`outw`).
    Word,
    /// 32-bit access (`inl`/`outl`).
    Dword,
}

impl AccessSize {
    /// Number of bits moved by this access.
    pub fn bits(self) -> u32 {
        match self {
            AccessSize::Byte => 8,
            AccessSize::Word => 16,
            AccessSize::Dword => 32,
        }
    }

    /// Mask covering the bits moved by this access.
    pub fn mask(self) -> u32 {
        match self {
            AccessSize::Byte => 0xFF,
            AccessSize::Word => 0xFFFF,
            AccessSize::Dword => 0xFFFF_FFFF,
        }
    }
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessSize::Byte => f.write_str("byte"),
            AccessSize::Word => f.write_str("word"),
            AccessSize::Dword => f.write_str("dword"),
        }
    }
}

/// Direction of a port access, used in the bus trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// An `in` instruction.
    Read,
    /// An `out` instruction.
    Write,
}

/// One recorded bus access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Monotonic bus timestamp (one tick per access).
    pub time: u64,
    /// Port address.
    pub port: u16,
    /// Width of the access.
    pub size: AccessSize,
    /// Read or write.
    pub kind: AccessKind,
    /// Value read or written.
    pub value: u32,
}

/// A refusal raised by a device model, without heap allocation.
///
/// Devices reject accesses that are not meaningful for their register file
/// (wrong width, offset outside the decoded window, or a protocol rule).
/// The enum is `Copy`, so the success path of a port access never touches
/// the allocator — the paper's core performance claim for generated stubs
/// depends on the failure machinery being free when nothing fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFault {
    /// The access width is not supported at this offset.
    Width {
        /// Offset within the device window.
        offset: u16,
        /// Attempted width.
        size: AccessSize,
    },
    /// The offset is outside the device's decoded window.
    OutOfWindow {
        /// Offset within the device window.
        offset: u16,
    },
    /// A device-specific protocol rule was violated.
    Protocol(&'static str),
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFault::Width { offset, size } => {
                write!(f, "{size} access unsupported at offset {offset:#x}")
            }
            DeviceFault::OutOfWindow { offset } => {
                write!(f, "offset {offset:#x} is outside the device window")
            }
            DeviceFault::Protocol(rule) => f.write_str(rule),
        }
    }
}

impl std::error::Error for DeviceFault {}

/// A fault raised by the bus fabric or a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFault {
    /// Access to a port with no mapped device under [`UnmappedPolicy::Fault`].
    Unmapped {
        /// Faulting port.
        port: u16,
        /// Attempted width.
        size: AccessSize,
    },
    /// A device refused the access (e.g. unsupported width on that register).
    Device {
        /// Faulting port.
        port: u16,
        /// The device's refusal.
        fault: DeviceFault,
    },
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusFault::Unmapped { port, size } => {
                write!(f, "unmapped {size} access at port {port:#06x}")
            }
            BusFault::Device { port, fault } => {
                write!(f, "device fault at port {port:#06x}: {fault}")
            }
        }
    }
}

impl std::error::Error for BusFault {}

/// What happens when an access hits no mapped device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnmappedPolicy {
    /// Faithful ISA behaviour: reads float high (all ones for the width),
    /// writes are dropped. This is the default, and what the kernel boot
    /// experiments use — a stray access does not stop the machine, it
    /// silently misbehaves, exactly as on the paper's test PC.
    #[default]
    Float,
    /// Return [`BusFault::Unmapped`]. Useful for unit tests that must prove a
    /// driver touches only its own ports.
    Fault,
}

/// Identifier of a mapped device within an [`IoSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(usize);

/// Error mapping a device into an [`IoSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The requested window overlaps an existing mapping.
    Overlap {
        /// Requested base port.
        base: u16,
        /// Requested window length.
        len: u16,
    },
    /// The window is empty or runs past the end of the 64 KiB port space.
    BadWindow {
        /// Requested base port.
        base: u16,
        /// Requested window length.
        len: u16,
    },
    /// The packed routing table is full: 65 535 devices are already
    /// mapped (device indices above `0xFFFE` cannot be encoded).
    TooManyDevices,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap { base, len } => {
                write!(f, "window {base:#06x}+{len} overlaps an existing mapping")
            }
            MapError::BadWindow { base, len } => {
                write!(f, "window {base:#06x}+{len} is empty or exceeds the port space")
            }
            MapError::TooManyDevices => {
                f.write_str("routing table is full: 65535 devices already mapped")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// A port-mapped peripheral model.
///
/// Offsets passed to [`IoDevice::read`]/[`IoDevice::write`] are relative to
/// the mapping base. Models are free to keep arbitrary internal state; the
/// bus clock is advanced by one tick per access and delivered via `tick`.
pub trait IoDevice: Any {
    /// Short device name used in traces and faults.
    fn name(&self) -> &str;

    /// Handle a port read at `offset` (relative to the mapping base).
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceFault`] when the access is not meaningful for the
    /// device (e.g. a dword read of a byte-only register) and the bus
    /// should fault.
    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault>;

    /// Handle a port write at `offset` (relative to the mapping base).
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceFault`] when the access is not meaningful for the
    /// device.
    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault>;

    /// Advance internal time by `ticks` bus cycles.
    ///
    /// Devices use this for busy timers (e.g. the IDE controller staying BSY
    /// for a few polls after a command). The default does nothing.
    ///
    /// The bus delivers ticks *lazily*: a device sees its accumulated clock
    /// delta immediately before each of its own accesses (and on
    /// [`IoSpace::sync`]), not one call per bus cycle. Timer logic must
    /// therefore handle multi-tick deltas — which every model does, since
    /// the signature always carried a count.
    fn tick(&mut self, ticks: u64) {
        let _ = ticks;
    }

    /// Serialize every piece of *mutable* device state into `w`.
    ///
    /// Part of the snapshot/restore campaign machinery (see
    /// [`crate::snap`]): [`IoSpace::snapshot`] concatenates each device's
    /// payload, and [`IoSpace::restore`] hands the exact same bytes back to
    /// [`IoDevice::load`]. Construction-time configuration (geometry, MAC
    /// address, window wiring) need not be saved — a snapshot is only ever
    /// restored into the machine it was captured from.
    ///
    /// The default saves nothing, which is correct **only** for a fully
    /// stateless device. Every stateful model must override `save` and
    /// `load` as an exact pair.
    fn save(&self, w: &mut StateWriter<'_>) {
        let _ = w;
    }

    /// Restore the state written by [`IoDevice::save`] on this device.
    ///
    /// Must consume exactly the bytes `save` wrote and leave the device
    /// bit-identical to the saved one, without allocating on the success
    /// path (dynamic logs may allocate when the saved content exceeds the
    /// live capacity — see [`crate::snap`]). The default loads nothing.
    fn load(&mut self, r: &mut StateReader<'_>) {
        let _ = r;
    }

    /// Serve `out.len()` consecutive reads at `offset` as **one** call —
    /// the bulk-access hook behind [`IoSpace::read_block`], which is how
    /// `insb`/`insw`-style string I/O moves a whole repetition count to
    /// the device at memcpy speed instead of one dispatch per element.
    ///
    /// # Contract
    ///
    /// * Return `false` **without touching any state** when the fast path
    ///   does not apply (wrong offset or width, wrong transfer phase,
    ///   unaligned stream position, a pending busy timer); the bus then
    ///   falls back to the single-access loop.
    /// * When returning `true`, every element must be filled exactly as
    ///   the equivalent sequence of [`IoDevice::read`] calls would have
    ///   filled it, including mid-block state transitions (a transfer
    ///   that completes part-way floats the remainder, just as the
    ///   per-access reads would).
    /// * An accepting device must be insensitive to tick granularity
    ///   across the block: the bus delivers the block's clock ticks in
    ///   one [`IoDevice::tick`] batch rather than one per element, so a
    ///   device whose timers could fire *mid-block* must decline while
    ///   such a timer is pending.
    ///
    /// The default declines everything, which is always correct.
    fn read_block(&mut self, offset: u16, size: AccessSize, out: &mut [u32]) -> bool {
        let _ = (offset, size, out);
        false
    }

    /// Serve `values.len()` consecutive writes at `offset` as one call —
    /// the `outsb`/`outsw` counterpart of [`IoDevice::read_block`], under
    /// the same all-or-decline contract. Values arrive unmasked; use only
    /// the low `size` bits of each, as [`IoDevice::write`] would see.
    fn write_block(&mut self, offset: u16, size: AccessSize, values: &[u32]) -> bool {
        let _ = (offset, size, values);
        false
    }

    /// Upcast for state inspection in tests and the boot harness.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for state injection (e.g. simulating mouse motion).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The byte-granular port bus interface the drivers program against.
///
/// This is the only thing generated Devil stubs and interpreted C drivers
/// see; both real hardware models and test doubles implement it. Functions
/// that accept `B: IoBus` can also be handed `&mut B` thanks to the blanket
/// impl below.
pub trait IoBus {
    /// 8-bit port read.
    ///
    /// # Errors
    ///
    /// Propagates a [`BusFault`] per the space's unmapped policy or a device
    /// refusal.
    fn inb(&mut self, port: u16) -> Result<u8, BusFault>;
    /// 16-bit port read.
    ///
    /// # Errors
    ///
    /// See [`IoBus::inb`].
    fn inw(&mut self, port: u16) -> Result<u16, BusFault>;
    /// 32-bit port read.
    ///
    /// # Errors
    ///
    /// See [`IoBus::inb`].
    fn inl(&mut self, port: u16) -> Result<u32, BusFault>;
    /// 8-bit port write.
    ///
    /// # Errors
    ///
    /// See [`IoBus::inb`].
    fn outb(&mut self, port: u16, value: u8) -> Result<(), BusFault>;
    /// 16-bit port write.
    ///
    /// # Errors
    ///
    /// See [`IoBus::inb`].
    fn outw(&mut self, port: u16, value: u16) -> Result<(), BusFault>;
    /// 32-bit port write.
    ///
    /// # Errors
    ///
    /// See [`IoBus::inb`].
    fn outl(&mut self, port: u16, value: u32) -> Result<(), BusFault>;
}

impl<B: IoBus + ?Sized> IoBus for &mut B {
    fn inb(&mut self, port: u16) -> Result<u8, BusFault> {
        (**self).inb(port)
    }
    fn inw(&mut self, port: u16) -> Result<u16, BusFault> {
        (**self).inw(port)
    }
    fn inl(&mut self, port: u16) -> Result<u32, BusFault> {
        (**self).inl(port)
    }
    fn outb(&mut self, port: u16, value: u8) -> Result<(), BusFault> {
        (**self).outb(port, value)
    }
    fn outw(&mut self, port: u16, value: u16) -> Result<(), BusFault> {
        (**self).outw(port, value)
    }
    fn outl(&mut self, port: u16, value: u32) -> Result<(), BusFault> {
        (**self).outl(port, value)
    }
}

/// One entry of the flat port routing table: packed `(device index + 1,
/// base port)`, or [`EMPTY_SLOT`] when no device decodes the port.
type PortSlot = u32;

/// Slot value for unmapped ports.
const EMPTY_SLOT: PortSlot = 0;

/// Number of ports in the x86 I/O space.
const PORT_SPACE: usize = 0x1_0000;

#[inline]
fn pack_slot(device: usize, base: u16) -> PortSlot {
    ((device as u32 + 1) << 16) | base as u32
}

#[inline]
fn unpack_slot(slot: PortSlot) -> (usize, u16) {
    ((slot >> 16) as usize - 1, (slot & 0xFFFF) as u16)
}

/// Initial capacity reserved when tracing is enabled, so long traced runs
/// do not pay reallocation churn from the first few thousand accesses.
const TRACE_INITIAL_CAPACITY: usize = 16 * 1024;

/// The machine's port-mapped I/O space.
///
/// Owns all peripheral models, routes accesses by port, keeps a monotonic
/// clock, counts accesses, and (optionally) records a full access trace.
///
/// # Dispatch
///
/// Routing uses a flat 64 K-entry table built at [`IoSpace::map`] time:
/// one load per access resolves the owning device and its base port, so
/// dispatch is O(1) in the number of mapped devices and allocation-free.
///
/// # Time
///
/// The bus clock still advances once per access, but tick delivery to
/// devices is *lazy*: each device accumulates its clock delta and receives
/// it in one [`IoDevice::tick`] call immediately before its next access
/// (or when [`IoSpace::sync`] is called, or before a
/// [`IoSpace::device_mut`] inspection). A device polled in a loop
/// therefore observes exactly the same tick sequence as under eager
/// delivery, while devices not involved in an access burst cost nothing.
pub struct IoSpace {
    table: Box<[PortSlot; PORT_SPACE]>,
    devices: Vec<Box<dyn IoDevice>>,
    /// Per-device clock value at which ticks were last delivered.
    last_sync: Vec<u64>,
    policy: UnmappedPolicy,
    clock: u64,
    reads: u64,
    writes: u64,
    trace: Option<Vec<Access>>,
    /// Deterministic hardware-fault interposer, when installed (see
    /// [`crate::fault`]). Sits between routing and the CPU-visible values.
    faults: Option<FaultInterposer>,
}

impl fmt::Debug for IoSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoSpace")
            .field("devices", &self.devices.len())
            .field("clock", &self.clock)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Default for IoSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSpace {
    /// Create an empty I/O space with the default (floating) unmapped policy.
    pub fn new() -> Self {
        let table: Box<[PortSlot]> = vec![EMPTY_SLOT; PORT_SPACE].into_boxed_slice();
        IoSpace {
            table: table.try_into().expect("table has PORT_SPACE entries"),
            devices: Vec::new(),
            last_sync: Vec::new(),
            policy: UnmappedPolicy::default(),
            clock: 0,
            reads: 0,
            writes: 0,
            trace: None,
            faults: None,
        }
    }

    /// Install a deterministic hardware-fault interposer executing `plan`
    /// (replacing any previous one, cursor reset to the plan's seed).
    ///
    /// Like device mapping, installation is machine *configuration*: do it
    /// before [`IoSpace::snapshot`]. A snapshot records the interposer's
    /// cursor, and [`IoSpace::restore`] refuses to cross an
    /// install/[`IoSpace::clear_faults`] boundary
    /// ([`RestoreError::FaultSetChanged`]).
    ///
    /// While an interposer is installed the block-transfer fast path is
    /// declined and every element of a [`IoSpace::read_block`] /
    /// [`IoSpace::write_block`] takes the single-access path, so faults
    /// are sampled once per access on every execution engine.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultInterposer::new(plan));
    }

    /// Remove the fault interposer, if any. Snapshots taken while it was
    /// installed can no longer be restored (and vice versa).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The installed fault interposer, if any.
    pub fn faults(&self) -> Option<&FaultInterposer> {
        self.faults.as_ref()
    }

    /// Number of fault events injected so far, or `None` when no
    /// interposer is installed.
    pub fn fault_injected(&self) -> Option<u64> {
        self.faults.as_ref().map(FaultInterposer::injected)
    }

    /// Set the behaviour of accesses that hit no device.
    pub fn set_unmapped_policy(&mut self, policy: UnmappedPolicy) {
        self.policy = policy;
    }

    /// Start recording every access.
    ///
    /// If tracing is already enabled the accesses recorded so far are kept;
    /// a trace previously removed with [`IoSpace::take_trace`] is gone and
    /// recording restarts from an empty buffer. Capacity is pre-reserved so
    /// long traced runs do not pay per-access reallocation churn.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::with_capacity(TRACE_INITIAL_CAPACITY));
        }
    }

    /// Stop recording and return the trace collected so far, if any.
    pub fn take_trace(&mut self) -> Vec<Access> {
        self.trace.take().unwrap_or_default()
    }

    /// Number of port reads performed so far.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of port writes performed so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Current bus clock (one tick per access).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Map `device` at `[base, base + len)`.
    ///
    /// Builds the O(1) routing entries for the window. Costs O(`len`);
    /// dispatch afterwards is one table load regardless of how many
    /// devices are mapped.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the range overlaps an existing mapping, is
    /// empty, runs past the end of the port space, or the routing table is
    /// full (65 535 devices). The device is dropped on error.
    pub fn map(
        &mut self,
        base: u16,
        len: u16,
        device: Box<dyn IoDevice>,
    ) -> Result<DeviceId, MapError> {
        if len == 0 || (base as u32) + (len as u32) > PORT_SPACE as u32 {
            return Err(MapError::BadWindow { base, len });
        }
        let window = base as usize..base as usize + len as usize;
        if self.table[window.clone()].iter().any(|&s| s != EMPTY_SLOT) {
            return Err(MapError::Overlap { base, len });
        }
        let idx = self.devices.len();
        if idx > 0xFFFE {
            // `pack_slot` stores `idx + 1` in 16 bits, so 0xFFFE is the
            // largest representable index.
            return Err(MapError::TooManyDevices);
        }
        let slot = pack_slot(idx, base);
        self.table[window].fill(slot);
        self.devices.push(device);
        self.last_sync.push(self.clock);
        Ok(DeviceId(idx))
    }

    /// Borrow a mapped device, downcast to its concrete type.
    ///
    /// Returns `None` when the id is stale or the type does not match.
    /// Pending ticks are *not* delivered (this takes `&self`); call
    /// [`IoSpace::sync`] first when inspecting timer-driven state outside
    /// an access sequence.
    pub fn device<T: IoDevice>(&self, id: DeviceId) -> Option<&T> {
        self.devices.get(id.0)?.as_any().downcast_ref::<T>()
    }

    /// Mutably borrow a mapped device, downcast to its concrete type.
    ///
    /// Delivers the device's pending clock delta first, so timer-driven
    /// state is current.
    pub fn device_mut<T: IoDevice>(&mut self, id: DeviceId) -> Option<&mut T> {
        if id.0 < self.devices.len() {
            self.touch(id.0);
        }
        self.devices.get_mut(id.0)?.as_any_mut().downcast_mut::<T>()
    }

    /// Deliver every device's accumulated clock delta now.
    ///
    /// Equivalent to the old eager behaviour at a point in time: after
    /// `sync()` all devices have observed the full bus clock.
    pub fn sync(&mut self) {
        for idx in 0..self.devices.len() {
            self.touch(idx);
        }
    }

    /// Capture the machine's complete mutable state.
    ///
    /// Saves the clock, the access counters, the per-device lazy-tick
    /// bookkeeping, the trace recorded so far (when tracing is on) and
    /// every device's [`IoDevice::save`] payload. Pending ticks are *not*
    /// delivered first — the lazy-delivery positions are part of the state,
    /// so a restored machine is bit-identical to one that replayed the
    /// same access prefix from scratch.
    ///
    /// Campaigns call this once on the freshly built machine and then
    /// [`IoSpace::restore`] per mutant; see [`crate::snap`] for the full
    /// lifecycle.
    pub fn snapshot(&self) -> Snapshot {
        let mut state = Vec::new();
        let mut spans = Vec::with_capacity(self.devices.len() + 1);
        spans.push(0);
        for dev in &self.devices {
            {
                let mut w = StateWriter::new(&mut state);
                dev.save(&mut w);
            }
            spans.push(state.len());
        }
        Snapshot {
            id: next_snapshot_id(),
            policy: self.policy,
            clock: self.clock,
            reads: self.reads,
            writes: self.writes,
            last_sync: self.last_sync.clone(),
            state,
            spans,
            trace: self.trace.clone(),
            fault: self.faults.as_ref().map(FaultInterposer::cursor),
        }
    }

    /// Rewind the machine to a previously captured [`Snapshot`].
    ///
    /// Restores counters, clock, unmapped policy, trace, lazy-tick
    /// bookkeeping and every device's state. The O(1) routing table is
    /// *reused*, not rebuilt — the mapped device set must be exactly the
    /// one the snapshot was taken from. Allocation-free on success as long
    /// as the snapshot's dynamic logs fit the live machine's capacity
    /// (always true when the snapshot machine was freshly built).
    ///
    /// # Errors
    ///
    /// [`RestoreError::DeviceSetChanged`] when the device count differs
    /// (e.g. a device was mapped after the snapshot); the machine is left
    /// untouched. [`RestoreError::StatePayloadMismatch`] when a device's
    /// `load` does not consume exactly its saved payload, indicating an
    /// inconsistent [`IoDevice::save`]/[`IoDevice::load`] pair; the rewind
    /// still completes in full — per-device payloads are span-isolated, so
    /// every other device, the counters and the trace are restored — but
    /// the flagged device's own state is only as good as its broken codec.
    /// This error means a device implementation bug, not a runtime
    /// condition: fix the `save`/`load` pair rather than recovering.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), RestoreError> {
        if snap.last_sync.len() != self.devices.len() {
            return Err(RestoreError::DeviceSetChanged {
                snapshot: snap.last_sync.len(),
                machine: self.devices.len(),
            });
        }
        match (&snap.fault, &mut self.faults) {
            (Some(cursor), Some(live)) => live.restore_cursor(cursor),
            (None, None) => {}
            (s, m) => {
                // Like the device set, the fault interposer is machine
                // configuration: a snapshot cannot cross an
                // install/clear boundary.
                return Err(RestoreError::FaultSetChanged {
                    snapshot: s.is_some(),
                    machine: m.is_some(),
                });
            }
        }
        self.policy = snap.policy;
        self.clock = snap.clock;
        self.reads = snap.reads;
        self.writes = snap.writes;
        self.last_sync.copy_from_slice(&snap.last_sync);
        let mut mismatch = None;
        for (idx, dev) in self.devices.iter_mut().enumerate() {
            let payload = &snap.state[snap.spans[idx]..snap.spans[idx + 1]];
            let mut r = StateReader::with_id(payload, snap.id);
            dev.load(&mut r);
            if r.remaining() != 0 && mismatch.is_none() {
                mismatch = Some(RestoreError::StatePayloadMismatch {
                    device: idx,
                    unread: r.remaining(),
                });
            }
        }
        match (&mut self.trace, &snap.trace) {
            (Some(live), Some(saved)) => {
                live.clear();
                live.extend_from_slice(saved);
            }
            (live @ Some(_), None) => *live = None,
            (live @ None, Some(saved)) => *live = Some(saved.clone()),
            (None, None) => {}
        }
        match mismatch {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Deliver device `idx`'s pending ticks.
    #[inline]
    fn touch(&mut self, idx: usize) {
        let delta = self.clock - self.last_sync[idx];
        if delta > 0 {
            self.last_sync[idx] = self.clock;
            self.devices[idx].tick(delta);
        }
    }

    #[inline]
    fn record(&mut self, port: u16, size: AccessSize, kind: AccessKind, value: u32) {
        if let Some(trace) = &mut self.trace {
            trace.push(Access { time: self.clock, port, size, kind, value });
        }
    }

    /// Width-generic read: the single hot path behind `inb`/`inw`/`inl`.
    ///
    /// Allocation-free on success: one table load, one lazy tick delivery,
    /// one device call.
    pub(crate) fn read_any(&mut self, port: u16, size: AccessSize) -> Result<u32, BusFault> {
        self.clock += 1;
        self.reads += 1;
        let clock = self.clock;
        let slot = self.table[port as usize];
        let mut value = if slot != EMPTY_SLOT {
            if self.faults.as_mut().is_some_and(|f| f.absent(port, clock)) {
                // The device is off the bus this window: the line floats
                // and the model is neither called nor ticked.
                size.mask()
            } else {
                let (idx, base) = unpack_slot(slot);
                self.touch(idx);
                self.devices[idx]
                    .read(port - base, size)
                    .map_err(|fault| BusFault::Device { port, fault })?
            }
        } else {
            match self.policy {
                UnmappedPolicy::Float => size.mask(),
                UnmappedPolicy::Fault => return Err(BusFault::Unmapped { port, size }),
            }
        };
        if let Some(f) = &mut self.faults {
            // Read faults perturb what the CPU sees, never the model; the
            // trace below therefore records the post-fault wire value.
            value = f.filter_read(port, value);
        }
        let value = value & size.mask();
        self.record(port, size, AccessKind::Read, value);
        Ok(value)
    }

    /// Block read: `out.len()` consecutive reads of `size` at `port` —
    /// the bulk fast path behind `insb`/`insw`-style string I/O.
    ///
    /// Observationally identical to the equivalent loop of single
    /// accesses with per-element errors replaced by the ISA float value
    /// (exactly how the kernel host consumes single-access errors): same
    /// clock and counter advance, same total tick delivery, same device
    /// end state. When the owning device accepts the block via
    /// [`IoDevice::read_block`] the whole transfer is one device call;
    /// otherwise it degrades to the per-access loop. Traced spaces and
    /// spaces with a fault interposer installed always take the
    /// per-access loop, so a recorded wire log keeps single-access
    /// granularity and faults are sampled once per element.
    pub fn read_block(&mut self, port: u16, size: AccessSize, out: &mut [u32]) {
        if out.is_empty() {
            return;
        }
        let slot = self.table[port as usize];
        if self.trace.is_none() && self.faults.is_none() && slot != EMPTY_SLOT {
            let (idx, base) = unpack_slot(slot);
            // Catch the device up before it inspects its own state; an
            // accepting device is tick-batch-insensitive by contract.
            self.touch(idx);
            if self.devices[idx].read_block(port - base, size, out) {
                let n = out.len() as u64;
                self.clock += n;
                self.reads += n;
                // Deliver the block's own ticks as one batch, so a timer
                // due *after* the block still fires on schedule.
                self.touch(idx);
                let mask = size.mask();
                for v in out.iter_mut() {
                    *v &= mask;
                }
                return;
            }
        }
        for v in out.iter_mut() {
            *v = self.read_any(port, size).unwrap_or_else(|_| size.mask());
        }
    }

    /// Block write of `values` — the `outsb`/`outsw` counterpart of
    /// [`IoSpace::read_block`], with the same equivalence guarantees
    /// (per-element errors are swallowed, as the kernel host does for
    /// single writes).
    pub fn write_block(&mut self, port: u16, size: AccessSize, values: &[u32]) {
        if values.is_empty() {
            return;
        }
        let slot = self.table[port as usize];
        if self.trace.is_none() && self.faults.is_none() && slot != EMPTY_SLOT {
            let (idx, base) = unpack_slot(slot);
            self.touch(idx);
            if self.devices[idx].write_block(port - base, size, values) {
                let n = values.len() as u64;
                self.clock += n;
                self.writes += n;
                // See `read_block`: the block's ticks are owed in one batch.
                self.touch(idx);
                return;
            }
        }
        for v in values {
            let _ = self.write_any(port, size, *v);
        }
    }

    /// Width-generic write: the single hot path behind `outb`/`outw`/`outl`.
    ///
    /// Allocation-free on success (see [`IoSpace::read_any`]).
    pub(crate) fn write_any(&mut self, port: u16, size: AccessSize, value: u32) -> Result<(), BusFault> {
        self.clock += 1;
        self.writes += 1;
        let mut value = value & size.mask();
        // The trace records what the CPU issued; a write fault below may
        // still drop or corrupt it on the way to the model.
        self.record(port, size, AccessKind::Write, value);
        let slot = self.table[port as usize];
        if slot != EMPTY_SLOT {
            let clock = self.clock;
            if let Some(f) = &mut self.faults {
                if f.absent(port, clock) {
                    // Device off the bus: the write vanishes, no tick.
                    return Ok(());
                }
                match f.filter_write(port, value) {
                    Some(v) => value = v & size.mask(),
                    None => return Ok(()), // dropped edge
                }
            }
            let (idx, base) = unpack_slot(slot);
            self.touch(idx);
            self.devices[idx]
                .write(port - base, size, value)
                .map_err(|fault| BusFault::Device { port, fault })
        } else {
            match self.policy {
                UnmappedPolicy::Float => Ok(()),
                UnmappedPolicy::Fault => Err(BusFault::Unmapped { port, size }),
            }
        }
    }
}

impl IoBus for IoSpace {
    fn inb(&mut self, port: u16) -> Result<u8, BusFault> {
        Ok(self.read_any(port, AccessSize::Byte)? as u8)
    }

    fn inw(&mut self, port: u16) -> Result<u16, BusFault> {
        Ok(self.read_any(port, AccessSize::Word)? as u16)
    }

    fn inl(&mut self, port: u16) -> Result<u32, BusFault> {
        self.read_any(port, AccessSize::Dword)
    }

    fn outb(&mut self, port: u16, value: u8) -> Result<(), BusFault> {
        self.write_any(port, AccessSize::Byte, value as u32)
    }

    fn outw(&mut self, port: u16, value: u16) -> Result<(), BusFault> {
        self.write_any(port, AccessSize::Word, value as u32)
    }

    fn outl(&mut self, port: u16, value: u32) -> Result<(), BusFault> {
        self.write_any(port, AccessSize::Dword, value)
    }
}

/// A trivial RAM-backed register file, handy for tests and as scaffolding.
///
/// Every byte in the window is readable and writable with no side effects.
#[derive(Debug, Clone)]
pub struct ScratchRegisters {
    bytes: Vec<u8>,
}

impl ScratchRegisters {
    /// Create a scratch window of `len` bytes, all zero.
    pub fn new(len: usize) -> Self {
        ScratchRegisters { bytes: vec![0; len] }
    }

    /// Current contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl IoDevice for ScratchRegisters {
    fn name(&self) -> &str {
        "scratch"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        let n = (size.bits() / 8) as usize;
        let start = offset as usize;
        if start >= self.bytes.len() {
            return Err(DeviceFault::OutOfWindow { offset });
        }
        if start + n > self.bytes.len() {
            // The offset decodes, but the access width spills past the end.
            return Err(DeviceFault::Width { offset, size });
        }
        let mut v = 0u32;
        for i in 0..n {
            v |= (self.bytes[start + i] as u32) << (8 * i);
        }
        Ok(v)
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        let n = (size.bits() / 8) as usize;
        let start = offset as usize;
        if start >= self.bytes.len() {
            return Err(DeviceFault::OutOfWindow { offset });
        }
        if start + n > self.bytes.len() {
            return Err(DeviceFault::Width { offset, size });
        }
        for i in 0..n {
            self.bytes[start + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        w.bytes(&self.bytes);
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        r.fill(&mut self.bytes);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rejects_overlap() {
        let mut io = IoSpace::new();
        io.map(0x100, 8, Box::new(ScratchRegisters::new(8))).unwrap();
        assert!(io.map(0x104, 8, Box::new(ScratchRegisters::new(8))).is_err());
        assert!(io.map(0x0fc, 8, Box::new(ScratchRegisters::new(8))).is_err());
        io.map(0x108, 8, Box::new(ScratchRegisters::new(8))).unwrap();
    }

    #[test]
    fn map_rejects_wrap_and_zero_len() {
        let mut io = IoSpace::new();
        assert!(io.map(0xFFFF, 2, Box::new(ScratchRegisters::new(2))).is_err());
        assert!(io.map(0x10, 0, Box::new(ScratchRegisters::new(1))).is_err());
        io.map(0xFFFF, 1, Box::new(ScratchRegisters::new(1))).unwrap();
    }

    #[test]
    fn map_fills_the_table_and_reports_exhaustion() {
        // 65 535 one-port devices fit (indices 0..=0xFFFE); the 65 536th
        // cannot be encoded and must fail cleanly, not panic.
        let mut io = IoSpace::new();
        for port in 0..0xFFFFu32 {
            io.map(port as u16, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        }
        assert_eq!(
            io.map(0xFFFF, 1, Box::new(ScratchRegisters::new(1))).unwrap_err(),
            MapError::TooManyDevices
        );
        // The full table still dispatches correctly at both ends.
        io.outb(0x0000, 0x11).unwrap();
        io.outb(0xFFFE, 0x22).unwrap();
        assert_eq!(io.inb(0x0000).unwrap(), 0x11);
        assert_eq!(io.inb(0xFFFE).unwrap(), 0x22);
    }

    #[test]
    fn unmapped_float_reads_all_ones() {
        let mut io = IoSpace::new();
        assert_eq!(io.inb(0x400).unwrap(), 0xFF);
        assert_eq!(io.inw(0x400).unwrap(), 0xFFFF);
        assert_eq!(io.inl(0x400).unwrap(), 0xFFFF_FFFF);
        io.outb(0x400, 0x12).unwrap();
    }

    #[test]
    fn unmapped_fault_policy_reports() {
        let mut io = IoSpace::new();
        io.set_unmapped_policy(UnmappedPolicy::Fault);
        let err = io.inb(0x400).unwrap_err();
        assert_eq!(err, BusFault::Unmapped { port: 0x400, size: AccessSize::Byte });
        let err = io.outw(0x400, 1).unwrap_err();
        assert_eq!(err, BusFault::Unmapped { port: 0x400, size: AccessSize::Word });
    }

    #[test]
    fn scratch_round_trips_all_widths() {
        let mut io = IoSpace::new();
        io.map(0x100, 8, Box::new(ScratchRegisters::new(8))).unwrap();
        io.outb(0x100, 0xAB).unwrap();
        assert_eq!(io.inb(0x100).unwrap(), 0xAB);
        io.outw(0x102, 0xBEEF).unwrap();
        assert_eq!(io.inw(0x102).unwrap(), 0xBEEF);
        assert_eq!(io.inb(0x102).unwrap(), 0xEF);
        assert_eq!(io.inb(0x103).unwrap(), 0xBE);
        io.outl(0x104, 0xDEAD_BEEF).unwrap();
        assert_eq!(io.inl(0x104).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn trace_records_access_stream() {
        let mut io = IoSpace::new();
        io.map(0x100, 4, Box::new(ScratchRegisters::new(4))).unwrap();
        io.enable_trace();
        io.outb(0x100, 7).unwrap();
        io.inb(0x100).unwrap();
        let t = io.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, AccessKind::Write);
        assert_eq!(t[0].value, 7);
        assert_eq!(t[1].kind, AccessKind::Read);
        assert_eq!(t[1].value, 7);
        assert!(t[0].time < t[1].time);
    }

    #[test]
    fn counters_and_clock_advance() {
        let mut io = IoSpace::new();
        assert_eq!(io.clock(), 0);
        io.inb(0x1).unwrap();
        io.outb(0x1, 0).unwrap();
        io.inw(0x1).unwrap();
        assert_eq!(io.read_count(), 2);
        assert_eq!(io.write_count(), 1);
        assert_eq!(io.clock(), 3);
    }

    #[test]
    fn device_downcast_works() {
        let mut io = IoSpace::new();
        let id = io.map(0x10, 2, Box::new(ScratchRegisters::new(2))).unwrap();
        io.outb(0x10, 0x55).unwrap();
        let dev: &ScratchRegisters = io.device(id).unwrap();
        assert_eq!(dev.bytes()[0], 0x55);
        assert!(io.device::<crate::devices::Busmouse>(id).is_none());
    }

    #[test]
    fn device_fault_surfaces_message() {
        let mut io = IoSpace::new();
        // Window of 2 bytes but mapped over 4 ports: offsets 2..4 fault.
        io.map(0x10, 4, Box::new(ScratchRegisters::new(2))).unwrap();
        let err = io.inb(0x13).unwrap_err();
        match err {
            BusFault::Device { port, .. } => assert_eq!(port, 0x13),
            other => panic!("expected device fault, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_restore_round_trips_counters_and_state() {
        let mut io = IoSpace::new();
        io.map(0x100, 4, Box::new(ScratchRegisters::new(4))).unwrap();
        io.enable_trace();
        io.outb(0x100, 0x11).unwrap();
        let snap = io.snapshot();
        assert_eq!(snap.device_count(), 1);
        assert_eq!(snap.clock(), 1);
        // Diverge: more writes, more trace, more clock.
        io.outb(0x101, 0x22).unwrap();
        io.inb(0x101).unwrap();
        io.restore(&snap).unwrap();
        assert_eq!(io.clock(), 1);
        assert_eq!(io.read_count(), 0);
        assert_eq!(io.write_count(), 1);
        assert_eq!(io.inb(0x101).unwrap(), 0, "scratch byte rewound");
        assert_eq!(io.inb(0x100).unwrap(), 0x11, "pre-snapshot byte kept");
        // The trace was rewound too: snapshot held 1 access, plus the two
        // probe reads above.
        assert_eq!(io.take_trace().len(), 3);
    }

    #[test]
    fn restore_is_repeatable() {
        let mut io = IoSpace::new();
        io.map(0x10, 2, Box::new(ScratchRegisters::new(2))).unwrap();
        let snap = io.snapshot();
        for round in 0..3u8 {
            io.outb(0x10, round.wrapping_add(7)).unwrap();
            io.restore(&snap).unwrap();
            assert_eq!(io.inb(0x10).unwrap(), 0);
            io.restore(&snap).unwrap();
        }
        assert_eq!(io.snapshot(), snap, "machine is bit-identical again");
    }

    #[test]
    fn restore_rejects_changed_device_set() {
        let mut io = IoSpace::new();
        io.map(0x10, 2, Box::new(ScratchRegisters::new(2))).unwrap();
        let snap = io.snapshot();
        io.map(0x20, 2, Box::new(ScratchRegisters::new(2))).unwrap();
        assert_eq!(
            io.restore(&snap).unwrap_err(),
            crate::snap::RestoreError::DeviceSetChanged { snapshot: 1, machine: 2 }
        );
    }

    /// A device whose `save`/`load` pair is deliberately inconsistent:
    /// `save` writes two bytes, `load` consumes one.
    struct BrokenCodec(u8);

    impl IoDevice for BrokenCodec {
        fn name(&self) -> &str {
            "broken"
        }
        fn read(&mut self, _offset: u16, _size: AccessSize) -> Result<u32, DeviceFault> {
            Ok(self.0 as u32)
        }
        fn write(&mut self, _offset: u16, _size: AccessSize, value: u32) -> Result<(), DeviceFault> {
            self.0 = value as u8;
            Ok(())
        }
        fn save(&self, w: &mut StateWriter<'_>) {
            w.u8(self.0);
            w.u8(0xEE);
        }
        fn load(&mut self, r: &mut StateReader<'_>) {
            self.0 = r.u8();
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn restore_completes_the_rewind_despite_a_codec_mismatch() {
        let mut io = IoSpace::new();
        io.map(0x10, 1, Box::new(BrokenCodec(0x41))).unwrap();
        io.map(0x20, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        io.outb(0x20, 0x11).unwrap();
        let snap = io.snapshot();
        io.outb(0x10, 0x42).unwrap();
        io.outb(0x20, 0x22).unwrap();
        assert_eq!(
            io.restore(&snap).unwrap_err(),
            crate::snap::RestoreError::StatePayloadMismatch { device: 0, unread: 1 }
        );
        // The error flags the broken pair, but the rewind still completed:
        // the healthy device and the counters match the snapshot.
        assert_eq!(io.clock(), snap.clock());
        assert_eq!(io.inb(0x20).unwrap(), 0x11, "healthy device rewound");
        assert_eq!(io.inb(0x10).unwrap(), 0x41, "broken device loaded what its codec read");
    }

    #[test]
    fn restore_turns_tracing_back_off() {
        let mut io = IoSpace::new();
        io.map(0x10, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        let snap = io.snapshot(); // tracing off at capture
        io.enable_trace();
        io.outb(0x10, 1).unwrap();
        io.restore(&snap).unwrap();
        io.outb(0x10, 2).unwrap();
        assert!(io.take_trace().is_empty(), "tracing state follows the snapshot");
    }

    #[test]
    fn bus_trait_object_and_mut_ref_usable() {
        fn poke<B: IoBus>(mut bus: B) -> u8 {
            bus.outb(0x10, 3).unwrap();
            bus.inb(0x10).unwrap()
        }
        let mut io = IoSpace::new();
        io.map(0x10, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        assert_eq!(poke(&mut io), 3);
    }
}
