//! 3Dlabs Permedia 2 graphics controller (simplified).
//!
//! The real Permedia 2 is programmed through a memory-mapped control
//! window; on our simulated machine the same registers appear as 13
//! dword-wide ports (`base + 0 ..= base + 12`), preserving the programming
//! model the paper's 128-line Devil specification covers: a command FIFO
//! with explicit space accounting, a sync/tag mechanism, and framebuffer
//! configuration registers.
//!
//! | offset | register |
//! |---|---|
//! | 0 | `ResetStatus` — read: 1 while resetting; write: start reset |
//! | 1 | `InFIFOSpace` — free input-FIFO entries (read-only) |
//! | 2 | `OutFIFOWords` — words waiting in the output FIFO (read-only) |
//! | 3 | `InFIFO` — command/data input port (write-only) |
//! | 4 | `OutFIFO` — output data port (read-only) |
//! | 5 | `Sync` — write a tag; it emerges from the output FIFO once all prior commands drained |
//! | 6 | `FBWindowBase` — framebuffer base offset |
//! | 7 | `FBWriteMode` — bit 0 enables writes |
//! | 8 | `FBPitch` — line pitch in pixels |
//! | 9 | `VideoControl` — bit 0 display enable, bit 1 blank |
//! | 10 | `FBReadMode` — read path configuration (scratch) |
//! | 11 | `ChipConfig` — read-only identification (always 2) |
//! | 12 | `FifoDiscon` — FIFO disconnect control (scratch) |
//!
//! Commands in the input FIFO: `0x01 x y color` plots a pixel, `0x02 addr`
//! reads a pixel back into the output FIFO. The FIFO drains one word every
//! [`DRAIN_PERIOD`] bus ticks, so a driver that ignores `InFIFOSpace`
//! overruns it — the overrun is latched and visible, mimicking the
//! lost-command lockups graphics drivers are notorious for.

use crate::bus::{AccessSize, DeviceFault, IoDevice};
use crate::snap::{StateReader, StateWriter};
use std::any::Any;
use std::collections::VecDeque;

const FIFO_CAPACITY: usize = 32;
const FB_WIDTH: u32 = 64;
const FB_HEIGHT: u32 = 64;
const RESET_TICKS: u64 = 8;
/// The engine consumes one FIFO word every this many bus ticks.
pub const DRAIN_PERIOD: u64 = 2;

/// Simplified Permedia 2 with a 64×64 framebuffer.
#[derive(Debug, Clone)]
pub struct Permedia2 {
    in_fifo: VecDeque<u32>,
    out_fifo: VecDeque<u32>,
    resetting: u64,
    overrun: bool,
    fb_window_base: u32,
    fb_write_mode: u32,
    fb_pitch: u32,
    fb_read_mode: u32,
    fifo_discon: u32,
    video_control: u32,
    framebuffer: Vec<u32>,
    pending: Vec<u32>,
    drain_phase: u64,
}

impl Default for Permedia2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Permedia2 {
    /// Create a powered-on, idle controller.
    pub fn new() -> Self {
        Permedia2 {
            in_fifo: VecDeque::new(),
            out_fifo: VecDeque::new(),
            resetting: 0,
            overrun: false,
            fb_window_base: 0,
            fb_write_mode: 0,
            fb_pitch: FB_WIDTH,
            fb_read_mode: 0,
            fifo_discon: 0,
            video_control: 0,
            framebuffer: vec![0; (FB_WIDTH * FB_HEIGHT) as usize],
            pending: Vec::new(),
            drain_phase: 0,
        }
    }

    /// Pixel at `(x, y)`, for assertions.
    pub fn pixel(&self, x: u32, y: u32) -> u32 {
        self.framebuffer[(y * FB_WIDTH + x) as usize]
    }

    /// Whether the input FIFO has ever overrun.
    pub fn overrun(&self) -> bool {
        self.overrun
    }

    /// Whether the display output is enabled.
    pub fn display_enabled(&self) -> bool {
        self.video_control & 1 != 0
    }

    fn execute(&mut self, word: u32) {
        self.pending.push(word);
        match self.pending[0] {
            0x01 if self.pending.len() == 4 => {
                let (x, y, color) = (self.pending[1], self.pending[2], self.pending[3]);
                if self.fb_write_mode & 1 != 0 && x < FB_WIDTH && y < FB_HEIGHT {
                    let idx = (self.fb_window_base + y * self.fb_pitch + x) as usize;
                    if idx < self.framebuffer.len() {
                        self.framebuffer[idx] = color;
                    }
                }
                self.pending.clear();
            }
            0x02 if self.pending.len() == 2 => {
                let addr = self.pending[1] as usize;
                let v = self.framebuffer.get(addr).copied().unwrap_or(0);
                self.out_fifo.push_back(v);
                self.pending.clear();
            }
            0x01 | 0x02 => {} // waiting for operands
            _ => self.pending.clear(), // unknown opcode: swallowed
        }
    }
}

impl IoDevice for Permedia2 {
    fn name(&self) -> &str {
        "permedia2"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        if size != AccessSize::Dword {
            return Err(DeviceFault::Width { offset, size });
        }
        match offset {
            0 => Ok(u32::from(self.resetting > 0)),
            1 => Ok((FIFO_CAPACITY - self.in_fifo.len()) as u32),
            2 => Ok(self.out_fifo.len() as u32),
            3 => Ok(0),
            4 => Ok(self.out_fifo.pop_front().unwrap_or(0)),
            5 => Ok(0),
            6 => Ok(self.fb_window_base),
            7 => Ok(self.fb_write_mode & 1),
            8 => Ok(self.fb_pitch),
            9 => Ok(self.video_control & 0x3),
            10 => Ok(self.fb_read_mode),
            11 => Ok(2), // chip identification
            12 => Ok(self.fifo_discon & 1),
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        if size != AccessSize::Dword {
            return Err(DeviceFault::Width { offset, size });
        }
        match offset {
            0 => {
                self.resetting = RESET_TICKS;
                self.in_fifo.clear();
                self.out_fifo.clear();
                self.pending.clear();
                self.overrun = false;
            }
            3 => {
                if self.in_fifo.len() >= FIFO_CAPACITY {
                    self.overrun = true; // command lost
                } else {
                    self.in_fifo.push_back(value);
                }
            }
            5 => {
                // Sync: tag emerges after the FIFO drains; model it as a
                // special command so ordering is preserved.
                if self.in_fifo.len() + 2 > FIFO_CAPACITY {
                    self.overrun = true;
                } else {
                    self.in_fifo.push_back(0x03);
                    self.in_fifo.push_back(value);
                }
            }
            6 => self.fb_window_base = value,
            7 => self.fb_write_mode = value & 1,
            8 => self.fb_pitch = value,
            9 => self.video_control = value & 0x3,
            10 => self.fb_read_mode = value,
            12 => self.fifo_discon = value & 1,
            1 | 2 | 4 | 11 => {} // read-only: writes vanish
            _ => {
                return Err(DeviceFault::OutOfWindow { offset });
            }
        }
        Ok(())
    }

    fn tick(&mut self, ticks: u64) {
        for _ in 0..ticks {
            if self.resetting > 0 {
                self.resetting -= 1;
                continue;
            }
            self.drain_phase += 1;
            if !self.drain_phase.is_multiple_of(DRAIN_PERIOD) {
                continue;
            }
            // Drain one input word per drain period.
            let Some(word) = self.in_fifo.pop_front() else { continue };
            if self.pending.first() == Some(&0x03) {
                // sync opcode: next word is the tag
                self.out_fifo.push_back(word);
                self.pending.clear();
            } else if word == 0x03 && self.pending.is_empty() {
                self.pending.push(word);
            } else {
                self.execute(word);
            }
        }
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        w.u64(self.in_fifo.len() as u64);
        for word in &self.in_fifo {
            w.u32(*word);
        }
        w.u64(self.out_fifo.len() as u64);
        for word in &self.out_fifo {
            w.u32(*word);
        }
        w.u64(self.resetting);
        w.bool(self.overrun);
        w.u32(self.fb_window_base);
        w.u32(self.fb_write_mode);
        w.u32(self.fb_pitch);
        w.u32(self.fb_read_mode);
        w.u32(self.fifo_discon);
        w.u32(self.video_control);
        w.u32s(&self.framebuffer);
        w.len_u32s(&self.pending);
        w.u64(self.drain_phase);
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        let n = r.u64() as usize;
        self.in_fifo.clear();
        for _ in 0..n {
            self.in_fifo.push_back(r.u32());
        }
        let n = r.u64() as usize;
        self.out_fifo.clear();
        for _ in 0..n {
            self.out_fifo.push_back(r.u32());
        }
        self.resetting = r.u64();
        self.overrun = r.bool();
        self.fb_window_base = r.u32();
        self.fb_write_mode = r.u32();
        self.fb_pitch = r.u32();
        self.fb_read_mode = r.u32();
        self.fifo_discon = r.u32();
        self.video_control = r.u32();
        r.fill_u32s(&mut self.framebuffer);
        r.fill_len_u32s(&mut self.pending);
        self.drain_phase = r.u64();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{IoBus, IoSpace};

    const BASE: u16 = 0xC000;

    fn machine() -> (IoSpace, crate::bus::DeviceId) {
        let mut io = IoSpace::new();
        let id = io.map(BASE, 13, Box::new(Permedia2::new())).unwrap();
        (io, id)
    }

    fn drain(io: &mut IoSpace, polls: usize) {
        for _ in 0..polls {
            io.inl(BASE + 1).unwrap();
        }
    }

    #[test]
    fn reset_completes_after_ticks() {
        let (mut io, _) = machine();
        io.outl(BASE, 1).unwrap();
        assert_eq!(io.inl(BASE).unwrap(), 1, "reset in progress");
        drain(&mut io, 16);
        assert_eq!(io.inl(BASE).unwrap(), 0, "reset complete");
    }

    #[test]
    fn plot_pixel_through_fifo() {
        let (mut io, id) = machine();
        io.outl(BASE + 7, 1).unwrap(); // enable FB writes
        for w in [0x01u32, 5, 7, 0x00FF_0000] {
            io.outl(BASE + 3, w).unwrap();
        }
        drain(&mut io, 16);
        assert_eq!(io.device::<Permedia2>(id).unwrap().pixel(5, 7), 0x00FF_0000);
    }

    #[test]
    fn write_mode_gates_plots() {
        let (mut io, id) = machine();
        for w in [0x01u32, 1, 1, 0xABCD] {
            io.outl(BASE + 3, w).unwrap();
        }
        drain(&mut io, 16);
        assert_eq!(io.device::<Permedia2>(id).unwrap().pixel(1, 1), 0);
    }

    #[test]
    fn readback_flows_to_out_fifo() {
        let (mut io, _) = machine();
        io.outl(BASE + 7, 1).unwrap();
        for w in [0x01u32, 2, 0, 0x42, 0x02, 2] {
            io.outl(BASE + 3, w).unwrap();
        }
        drain(&mut io, 24);
        assert_eq!(io.inl(BASE + 2).unwrap(), 1, "one word waiting");
        assert_eq!(io.inl(BASE + 4).unwrap(), 0x42);
        assert_eq!(io.inl(BASE + 2).unwrap(), 0);
    }

    #[test]
    fn fifo_overrun_latches() {
        let (mut io, id) = machine();
        for _ in 0..(FIFO_CAPACITY * 3) {
            io.outl(BASE + 3, 0x7F).unwrap();
        }
        assert!(io.device::<Permedia2>(id).unwrap().overrun());
    }

    #[test]
    fn in_fifo_space_reports_free_entries() {
        let (mut io, _) = machine();
        let free0 = io.inl(BASE + 1).unwrap();
        assert_eq!(free0, FIFO_CAPACITY as u32);
        io.outl(BASE + 3, 0x01).unwrap();
        io.outl(BASE + 3, 1).unwrap();
        let free1 = io.inl(BASE + 1).unwrap();
        assert!(free1 <= FIFO_CAPACITY as u32);
    }

    #[test]
    fn sync_tag_round_trips_in_order() {
        let (mut io, _) = machine();
        io.outl(BASE + 7, 1).unwrap();
        for w in [0x01u32, 0, 0, 9] {
            io.outl(BASE + 3, w).unwrap();
        }
        io.outl(BASE + 5, 0xDEAD).unwrap();
        drain(&mut io, 24);
        assert_eq!(io.inl(BASE + 4).unwrap(), 0xDEAD);
    }

    #[test]
    fn byte_access_refused() {
        let (mut io, _) = machine();
        assert!(io.inb(BASE).is_err());
    }

    #[test]
    fn video_control_toggles_display() {
        let (mut io, id) = machine();
        assert!(!io.device::<Permedia2>(id).unwrap().display_enabled());
        io.outl(BASE + 9, 1).unwrap();
        assert!(io.device::<Permedia2>(id).unwrap().display_enabled());
        assert_eq!(io.inl(BASE + 9).unwrap(), 1);
    }

    #[test]
    fn chip_config_identifies() {
        let (mut io, _) = machine();
        assert_eq!(io.inl(BASE + 11).unwrap(), 2);
        io.outl(BASE + 11, 99).unwrap(); // read-only: ignored
        assert_eq!(io.inl(BASE + 11).unwrap(), 2);
    }

    #[test]
    fn scratch_registers_hold_values() {
        let (mut io, _) = machine();
        io.outl(BASE + 10, 0x1234).unwrap();
        assert_eq!(io.inl(BASE + 10).unwrap(), 0x1234);
        io.outl(BASE + 12, 1).unwrap();
        assert_eq!(io.inl(BASE + 12).unwrap(), 1);
    }
}
