//! NE2000 (National Semiconductor DP8390) Ethernet controller model.
//!
//! Register map (16 consecutive ports at `base`, plus the data port at
//! `base + 0x10` and the reset port at `base + 0x1F`):
//!
//! * offset 0 — command register (CR): `STP STA TXP RD0..2 PS0 PS1`.
//! * offsets 1..=15 — paged register file; page selected by `CR.PS`.
//! * offset 0x10 — remote-DMA data window.
//! * offset 0x1F — reset on read.
//!
//! Page 0 holds the DMA engine (`RSAR`, `RBCR`), the interrupt status
//! register (`ISR`), and configuration (`RCR`, `TCR`, `DCR`, `IMR`); page 1
//! holds the station address (`PAR0..5`) and the receive ring's `CURR`
//! pointer. The model implements 16 KiB of on-board packet RAM at
//! `0x4000..0x8000` and the station-address PROM at remote addresses
//! `0x0000..0x0020`, which is what the Linux probe routine reads.

use crate::bus::{AccessSize, DeviceFault, IoDevice};
use crate::snap::{StateReader, StateWriter};
use std::any::Any;

const RAM_START: usize = 0x4000;
const RAM_SIZE: usize = 0x4000;

/// ISR bits.
const ISR_PRX: u8 = 0x01;
const ISR_PTX: u8 = 0x02;
const ISR_RDC: u8 = 0x40;
const ISR_RST: u8 = 0x80;

/// NE2000 Ethernet controller with 16 KiB of packet RAM.
#[derive(Debug, Clone)]
pub struct Ne2000 {
    mac: [u8; 6],
    cr: u8,
    isr: u8,
    imr: u8,
    dcr: u8,
    rcr: u8,
    tcr: u8,
    pstart: u8,
    pstop: u8,
    bnry: u8,
    curr: u8,
    tpsr: u8,
    tbcr: u16,
    rsar: u16,
    rbcr: u16,
    par: [u8; 6],
    ram: Vec<u8>,
    prom: [u8; 32],
    tx_log: Vec<Vec<u8>>,
    stopped: bool,
}

impl Ne2000 {
    /// Create a stopped controller with the given station (MAC) address.
    pub fn new(mac: [u8; 6]) -> Self {
        let mut prom = [0u8; 32];
        // The PROM stores each MAC byte doubled in word-wide cards; the
        // classic probe reads 32 bytes and takes the even ones.
        for (i, b) in mac.iter().enumerate() {
            prom[2 * i] = *b;
            prom[2 * i + 1] = *b;
        }
        prom[28] = 0x57; // 'W' signature bytes checked by some probes
        prom[29] = 0x57;
        prom[30] = 0x57;
        prom[31] = 0x57;
        Ne2000 {
            mac,
            cr: 0x21, // stopped, page 0
            isr: ISR_RST,
            imr: 0,
            dcr: 0,
            rcr: 0,
            tcr: 0,
            pstart: 0x46,
            pstop: 0x80,
            bnry: 0x46,
            curr: 0x47,
            tpsr: 0x40,
            tbcr: 0,
            rsar: 0,
            rbcr: 0,
            par: mac,
            ram: vec![0; RAM_SIZE],
            prom,
            tx_log: Vec::new(),
            stopped: true,
        }
    }

    /// Station address configured at construction.
    pub fn mac(&self) -> [u8; 6] {
        self.mac
    }

    /// Frames transmitted via `CR.TXP` so far.
    pub fn tx_log(&self) -> &[Vec<u8>] {
        &self.tx_log
    }

    /// Station address programmed into PAR0..5 by the driver.
    pub fn programmed_mac(&self) -> [u8; 6] {
        self.par
    }

    /// Whether the NIC has been started (`CR.STA` with `STP` clear).
    pub fn is_running(&self) -> bool {
        !self.stopped
    }

    /// Deliver a frame into the receive ring and raise `ISR.PRX`.
    ///
    /// Returns `false` (dropping the frame) when the NIC is stopped.
    pub fn inject_frame(&mut self, frame: &[u8]) -> bool {
        if self.stopped {
            return false;
        }
        // 4-byte ring header: status, next page, length lo, length hi.
        let total = frame.len() + 4;
        let pages = total.div_ceil(256).max(1) as u8;
        let mut next = self.curr + pages;
        if next >= self.pstop {
            next = self.pstart + (next - self.pstop);
        }
        let start = (self.curr as usize) * 256;
        let hdr = [0x01u8, next, (total & 0xFF) as u8, (total >> 8) as u8];
        for (i, b) in hdr.iter().chain(frame.iter()).enumerate() {
            let ring_span = (self.pstop as usize - self.pstart as usize) * 256;
            let mut addr = start + i;
            let ring_base = self.pstart as usize * 256;
            if addr >= ring_base + ring_span {
                addr -= ring_span;
            }
            if (RAM_START..RAM_START + RAM_SIZE).contains(&addr) {
                self.ram[addr - RAM_START] = *b;
            }
        }
        self.curr = next;
        self.isr |= ISR_PRX;
        true
    }

    fn page(&self) -> u8 {
        (self.cr >> 6) & 0x03
    }

    fn remote_read_byte(&mut self) -> u8 {
        let addr = self.rsar as usize;
        let v = if addr < 0x20 {
            self.prom[addr]
        } else if (RAM_START..RAM_START + RAM_SIZE).contains(&addr) {
            self.ram[addr - RAM_START]
        } else {
            0xFF
        };
        self.rsar = self.rsar.wrapping_add(1);
        if self.rbcr > 0 {
            self.rbcr -= 1;
            if self.rbcr == 0 {
                self.isr |= ISR_RDC;
            }
        }
        v
    }

    fn remote_write_byte(&mut self, v: u8) {
        let addr = self.rsar as usize;
        if (RAM_START..RAM_START + RAM_SIZE).contains(&addr) {
            self.ram[addr - RAM_START] = v;
        }
        self.rsar = self.rsar.wrapping_add(1);
        if self.rbcr > 0 {
            self.rbcr -= 1;
            if self.rbcr == 0 {
                self.isr |= ISR_RDC;
            }
        }
    }

    /// Advance the remote-DMA byte counter by a whole block's worth,
    /// raising `ISR.RDC` on completion — the batched equivalent of the
    /// per-byte bookkeeping in [`Ne2000::remote_read_byte`].
    fn advance_rbcr(&mut self, bytes: u16) {
        if self.rbcr > 0 {
            if bytes >= self.rbcr {
                self.rbcr = 0;
                self.isr |= ISR_RDC;
            } else {
                self.rbcr -= bytes;
            }
        }
    }

    /// Whether a `bytes`-long remote-DMA burst starting at `RSAR` lies
    /// wholly inside packet RAM (the chunk-copy fast-path precondition;
    /// PROM reads and out-of-RAM addresses take the per-byte loop).
    fn dma_span_in_ram(&self, bytes: usize) -> bool {
        let addr = self.rsar as usize;
        addr >= RAM_START && addr + bytes <= RAM_START + RAM_SIZE
    }

    fn transmit(&mut self) {
        let start = self.tpsr as usize * 256;
        let len = self.tbcr as usize;
        let mut frame = Vec::with_capacity(len);
        for i in 0..len {
            let addr = start + i;
            if (RAM_START..RAM_START + RAM_SIZE).contains(&addr) {
                frame.push(self.ram[addr - RAM_START]);
            } else {
                frame.push(0);
            }
        }
        self.tx_log.push(frame);
        self.isr |= ISR_PTX;
    }
}

impl IoDevice for Ne2000 {
    fn name(&self) -> &str {
        "ne2000"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        match offset {
            0x10 => {
                // Data port: byte or word per DCR word-transfer bit.
                let n = (size.bits() / 8) as usize;
                let mut v = 0u32;
                for i in 0..n {
                    v |= (self.remote_read_byte() as u32) << (8 * i);
                }
                return Ok(v);
            }
            0x1F => {
                self.isr |= ISR_RST;
                self.stopped = true;
                self.cr = 0x21;
                return Ok(0);
            }
            _ => {}
        }
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        let v = match (self.page(), offset) {
            (_, 0) => self.cr,
            (0, 3) => self.bnry,
            (0, 4) => 0x01, // TSR: transmitted OK
            (0, 7) => self.isr,
            (0, 0x0A) => 0, // reserved reads as 0
            (0, 0x0C) => self.rcr,
            (0, 0x0D) => self.tcr,
            (0, 0x0E) => self.dcr,
            (0, 0x0F) => self.imr,
            (1, 1..=6) => self.par[(offset - 1) as usize],
            (1, 7) => self.curr,
            _ => 0,
        };
        Ok(v as u32)
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        if offset == 0x10 {
            let n = (size.bits() / 8) as usize;
            for i in 0..n {
                self.remote_write_byte((value >> (8 * i)) as u8);
            }
            return Ok(());
        }
        if offset == 0x1F {
            return Ok(()); // reset port write: ignored
        }
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        let v = value as u8;
        match (self.page(), offset) {
            (_, 0) => {
                self.cr = v;
                if v & 0x01 != 0 {
                    self.stopped = true;
                } else if v & 0x02 != 0 {
                    self.stopped = false;
                    self.isr &= !ISR_RST;
                }
                if v & 0x04 != 0 && !self.stopped {
                    self.transmit();
                }
            }
            (0, 1) => self.pstart = v,
            (0, 2) => self.pstop = v,
            (0, 3) => self.bnry = v,
            (0, 4) => self.tpsr = v,
            (0, 5) => self.tbcr = (self.tbcr & 0xFF00) | v as u16,
            (0, 6) => self.tbcr = (self.tbcr & 0x00FF) | ((v as u16) << 8),
            (0, 7) => self.isr &= !v, // write-1-to-clear
            (0, 8) => self.rsar = (self.rsar & 0xFF00) | v as u16,
            (0, 9) => self.rsar = (self.rsar & 0x00FF) | ((v as u16) << 8),
            (0, 0x0A) => self.rbcr = (self.rbcr & 0xFF00) | v as u16,
            (0, 0x0B) => self.rbcr = (self.rbcr & 0x00FF) | ((v as u16) << 8),
            (0, 0x0C) => self.rcr = v,
            (0, 0x0D) => self.tcr = v,
            (0, 0x0E) => self.dcr = v,
            (0, 0x0F) => self.imr = v,
            (1, 1..=6) => self.par[(offset - 1) as usize] = v,
            (1, 7) => self.curr = v,
            _ => {}
        }
        Ok(())
    }

    /// Bulk data-port reads — the `insb`/`insw` fast path for remote-DMA
    /// streams (ring traffic, PROM dumps). The NE2000 has no timers, so
    /// every data-port block is accepted: word streams wholly inside
    /// packet RAM chunk-copy, everything else replays the per-byte
    /// engine, which is still one dispatch for the whole block.
    fn read_block(&mut self, offset: u16, size: AccessSize, out: &mut [u32]) -> bool {
        if offset != 0x10 {
            return false;
        }
        let n = (size.bits() / 8) as usize;
        let bytes = n * out.len();
        if n == 2 && self.dma_span_in_ram(bytes) {
            let base = self.rsar as usize - RAM_START;
            for (i, v) in out.iter_mut().enumerate() {
                *v = u16::from_le_bytes([self.ram[base + 2 * i], self.ram[base + 2 * i + 1]])
                    as u32;
            }
            self.rsar = self.rsar.wrapping_add(bytes as u16);
            self.advance_rbcr(bytes as u16);
        } else {
            for v in out.iter_mut() {
                let mut w = 0u32;
                for b in 0..n {
                    w |= (self.remote_read_byte() as u32) << (8 * b);
                }
                *v = w;
            }
        }
        true
    }

    /// Bulk data-port writes — the `outsb`/`outsw` fast path for
    /// remote-DMA uploads (TX frames).
    fn write_block(&mut self, offset: u16, size: AccessSize, values: &[u32]) -> bool {
        if offset != 0x10 {
            return false;
        }
        let n = (size.bits() / 8) as usize;
        let bytes = n * values.len();
        if n == 2 && self.dma_span_in_ram(bytes) {
            let base = self.rsar as usize - RAM_START;
            for (i, v) in values.iter().enumerate() {
                let [lo, hi] = (*v as u16).to_le_bytes();
                self.ram[base + 2 * i] = lo;
                self.ram[base + 2 * i + 1] = hi;
            }
            self.rsar = self.rsar.wrapping_add(bytes as u16);
            self.advance_rbcr(bytes as u16);
        } else {
            for v in values {
                for b in 0..n {
                    self.remote_write_byte((*v >> (8 * b)) as u8);
                }
            }
        }
        true
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        w.u8(self.cr);
        w.u8(self.isr);
        w.u8(self.imr);
        w.u8(self.dcr);
        w.u8(self.rcr);
        w.u8(self.tcr);
        w.u8(self.pstart);
        w.u8(self.pstop);
        w.u8(self.bnry);
        w.u8(self.curr);
        w.u8(self.tpsr);
        w.u16(self.tbcr);
        w.u16(self.rsar);
        w.u16(self.rbcr);
        w.bytes(&self.par);
        w.bytes(&self.ram);
        w.u64(self.tx_log.len() as u64);
        for frame in &self.tx_log {
            w.len_bytes(frame);
        }
        w.bool(self.stopped);
        // mac and prom are construction-time constants: not saved.
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        self.cr = r.u8();
        self.isr = r.u8();
        self.imr = r.u8();
        self.dcr = r.u8();
        self.rcr = r.u8();
        self.tcr = r.u8();
        self.pstart = r.u8();
        self.pstop = r.u8();
        self.bnry = r.u8();
        self.curr = r.u8();
        self.tpsr = r.u8();
        self.tbcr = r.u16();
        self.rsar = r.u16();
        self.rbcr = r.u16();
        r.fill(&mut self.par);
        r.fill(&mut self.ram);
        let frames = r.u64() as usize;
        self.tx_log.truncate(frames);
        for i in 0..frames {
            let len = r.u64() as usize;
            let bytes = r.bytes(len);
            match self.tx_log.get_mut(i) {
                Some(slot) => {
                    slot.clear();
                    slot.extend_from_slice(bytes);
                }
                None => self.tx_log.push(bytes.to_vec()),
            }
        }
        self.stopped = r.bool();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{IoBus, IoSpace};

    const BASE: u16 = 0x300;
    const MAC: [u8; 6] = [0x00, 0x0E, 0xA5, 0x01, 0x02, 0x03];

    fn machine() -> (IoSpace, crate::bus::DeviceId) {
        let mut io = IoSpace::new();
        let id = io.map(BASE, 0x20, Box::new(Ne2000::new(MAC))).unwrap();
        (io, id)
    }

    fn remote_read(io: &mut IoSpace, addr: u16, len: u16) -> Vec<u8> {
        io.outb(BASE + 0x0A, (len & 0xFF) as u8).unwrap();
        io.outb(BASE + 0x0B, (len >> 8) as u8).unwrap();
        io.outb(BASE + 0x08, (addr & 0xFF) as u8).unwrap();
        io.outb(BASE + 0x09, (addr >> 8) as u8).unwrap();
        io.outb(BASE, 0x0A).unwrap(); // remote read + start-ish
        (0..len).map(|_| io.inb(BASE + 0x10).unwrap()).collect()
    }

    #[test]
    fn prom_read_yields_mac() {
        let (mut io, _) = machine();
        let prom = remote_read(&mut io, 0, 12);
        for i in 0..6 {
            assert_eq!(prom[2 * i], MAC[i]);
            assert_eq!(prom[2 * i + 1], MAC[i]);
        }
    }

    #[test]
    fn rdc_interrupt_after_dma_completes() {
        let (mut io, _) = machine();
        let _ = remote_read(&mut io, 0, 4);
        assert_ne!(io.inb(BASE + 7).unwrap() & ISR_RDC, 0);
        // Acknowledge clears it.
        io.outb(BASE + 7, ISR_RDC).unwrap();
        assert_eq!(io.inb(BASE + 7).unwrap() & ISR_RDC, 0);
    }

    #[test]
    fn remote_write_then_read_round_trips() {
        let (mut io, _) = machine();
        io.outb(BASE + 0x0A, 4).unwrap();
        io.outb(BASE + 0x0B, 0).unwrap();
        io.outb(BASE + 0x08, 0x00).unwrap();
        io.outb(BASE + 0x09, 0x40).unwrap(); // RAM start
        io.outb(BASE, 0x12).unwrap(); // remote write
        for b in [1u8, 2, 3, 4] {
            io.outb(BASE + 0x10, b).unwrap();
        }
        assert_eq!(remote_read(&mut io, 0x4000, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn word_wide_data_port_moves_two_bytes() {
        let (mut io, _) = machine();
        io.outb(BASE + 0x0A, 4).unwrap();
        io.outb(BASE + 0x0B, 0).unwrap();
        io.outb(BASE + 0x08, 0x00).unwrap();
        io.outb(BASE + 0x09, 0x40).unwrap();
        io.outb(BASE, 0x12).unwrap();
        io.outw(BASE + 0x10, 0x2211).unwrap();
        io.outw(BASE + 0x10, 0x4433).unwrap();
        assert_eq!(remote_read(&mut io, 0x4000, 4), vec![0x11, 0x22, 0x33, 0x44]);
    }

    /// The bulk data-port hooks must be bit-equivalent to the equivalent
    /// single-access loops — values, counters, `RSAR`/`RBCR` bookkeeping,
    /// the `RDC` interrupt — on both the RAM chunk-copy path and the
    /// per-byte fallback (PROM reads).
    #[test]
    fn block_transfers_match_single_accesses() {
        let setup_dma = |io: &mut IoSpace, addr: u16, len: u16, cmd: u8| {
            io.outb(BASE + 0x0A, (len & 0xFF) as u8).unwrap();
            io.outb(BASE + 0x0B, (len >> 8) as u8).unwrap();
            io.outb(BASE + 0x08, (addr & 0xFF) as u8).unwrap();
            io.outb(BASE + 0x09, (addr >> 8) as u8).unwrap();
            io.outb(BASE, cmd).unwrap();
        };
        let (mut a, _) = machine();
        let (mut b, _) = machine();
        // Word-wide block write into RAM vs single outw loop.
        let pattern: Vec<u32> = (0..40u32).map(|i| (i * 257 + 3) & 0xFFFF).collect();
        setup_dma(&mut a, 0x4000, 80, 0x12);
        setup_dma(&mut b, 0x4000, 80, 0x12);
        a.write_block(BASE + 0x10, AccessSize::Word, &pattern);
        for w in &pattern {
            b.outw(BASE + 0x10, *w as u16).unwrap();
        }
        assert_eq!(a.snapshot(), b.snapshot(), "state diverged after RAM write");
        // Word-wide block read back (chunk-copy path) + RDC raised.
        setup_dma(&mut a, 0x4000, 80, 0x0A);
        setup_dma(&mut b, 0x4000, 80, 0x0A);
        let mut block = [0u32; 40];
        a.read_block(BASE + 0x10, AccessSize::Word, &mut block);
        let singles: Vec<u32> =
            (0..40).map(|_| u32::from(b.inw(BASE + 0x10).unwrap())).collect();
        assert_eq!(&block[..], &singles[..], "RAM read values diverged");
        assert_ne!(a.inb(BASE + 7).unwrap() & ISR_RDC, 0, "RDC after the block DMA");
        assert_ne!(b.inb(BASE + 7).unwrap() & ISR_RDC, 0, "RDC after the single DMA");
        assert_eq!(a.snapshot(), b.snapshot(), "state diverged after RAM read");
        // Byte-wide PROM read: exercises the per-byte fallback inside the
        // accepted block.
        setup_dma(&mut a, 0, 32, 0x0A);
        setup_dma(&mut b, 0, 32, 0x0A);
        let mut prom = [0u32; 32];
        a.read_block(BASE + 0x10, AccessSize::Byte, &mut prom);
        let singles: Vec<u32> =
            (0..32).map(|_| u32::from(b.inb(BASE + 0x10).unwrap())).collect();
        assert_eq!(&prom[..], &singles[..], "PROM read values diverged");
        assert_eq!(prom[0], MAC[0] as u32);
        assert_eq!(a.snapshot(), b.snapshot(), "state diverged after PROM read");
    }

    #[test]
    fn transmit_captures_frame() {
        let (mut io, id) = machine();
        // Write a frame into RAM at the TX page.
        io.outb(BASE + 0x0A, 3).unwrap();
        io.outb(BASE + 0x0B, 0).unwrap();
        io.outb(BASE + 0x08, 0x00).unwrap();
        io.outb(BASE + 0x09, 0x40).unwrap();
        io.outb(BASE, 0x12).unwrap();
        for b in [0xAA, 0xBB, 0xCC] {
            io.outb(BASE + 0x10, b).unwrap();
        }
        io.outb(BASE + 4, 0x40).unwrap(); // TPSR = page 0x40
        io.outb(BASE + 5, 3).unwrap(); // TBCR = 3
        io.outb(BASE + 6, 0).unwrap();
        io.outb(BASE, 0x06).unwrap(); // start + TXP
        let dev = io.device::<Ne2000>(id).unwrap();
        assert_eq!(dev.tx_log(), &[vec![0xAA, 0xBB, 0xCC]]);
        assert_ne!(io.inb(BASE + 7).unwrap() & ISR_PTX, 0);
    }

    #[test]
    fn paged_registers_select_by_cr() {
        let (mut io, _) = machine();
        // Page 1: program PAR.
        io.outb(BASE, 0x61).unwrap(); // page 1, stopped
        for i in 0..6u16 {
            io.outb(BASE + 1 + i, 0x10 + i as u8).unwrap();
        }
        io.outb(BASE, 0x21).unwrap(); // back to page 0
        // Page 0 offset 1 is PSTART, not PAR0.
        io.outb(BASE + 1, 0x46).unwrap();
        io.outb(BASE, 0x61).unwrap();
        assert_eq!(io.inb(BASE + 1).unwrap(), 0x10);
    }

    #[test]
    fn inject_frame_advances_curr_and_raises_prx() {
        let (mut io, id) = machine();
        io.outb(BASE, 0x22).unwrap(); // start
        let before = {
            let d = io.device::<Ne2000>(id).unwrap();
            assert!(d.is_running());
            d.curr
        };
        assert!(io.device_mut::<Ne2000>(id).unwrap().inject_frame(&[0u8; 60]));
        let d = io.device::<Ne2000>(id).unwrap();
        assert_ne!(d.curr, before);
        assert_ne!(io.inb(BASE + 7).unwrap() & ISR_PRX, 0);
    }

    #[test]
    fn stopped_nic_drops_frames() {
        let (_, id) = machine();
        let mut io = IoSpace::new();
        let id2 = io.map(BASE, 0x20, Box::new(Ne2000::new(MAC))).unwrap();
        assert!(!io.device_mut::<Ne2000>(id2).unwrap().inject_frame(&[0u8; 60]));
        let _ = id;
    }

    #[test]
    fn reset_port_sets_rst_and_stops() {
        let (mut io, id) = machine();
        io.outb(BASE, 0x22).unwrap();
        assert!(io.device::<Ne2000>(id).unwrap().is_running());
        io.inb(BASE + 0x1F).unwrap();
        assert!(!io.device::<Ne2000>(id).unwrap().is_running());
        assert_ne!(io.inb(BASE + 7).unwrap() & ISR_RST, 0);
    }
}
