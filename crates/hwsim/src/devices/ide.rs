//! Intel PIIX4-style IDE (ATA) channel with an attached disk.
//!
//! This is the device under test in the paper's Table 3/4 experiments: the
//! Linux IDE driver (original C and Devil re-engineered) is mutated and then
//! booted against this controller.
//!
//! The model implements the classic ATA command block (`base + 0..=7`,
//! conventionally `0x1F0..=0x1F7`) plus the control block register
//! (`ctrl`, conventionally `0x3F6`, mapped here at offset 8 of a 9-port
//! window for convenience):
//!
//! | offset | read | write |
//! |---|---|---|
//! | 0 | data (16-bit) | data (16-bit) |
//! | 1 | error | features |
//! | 2 | sector count | sector count |
//! | 3 | sector number / LBA 7:0 | idem |
//! | 4 | cylinder low / LBA 15:8 | idem |
//! | 5 | cylinder high / LBA 23:16 | idem |
//! | 6 | drive/head (`1.1.....` fixed bits) | idem |
//! | 7 | status | command |
//! | 8 | alternate status | device control (`SRST`, `nIEN`) |
//!
//! Supported commands: `IDENTIFY` (0xEC), `READ SECTORS` (0x20/0x21),
//! `WRITE SECTORS` (0x30/0x31), `RECALIBRATE` (0x1x),
//! `INITIALIZE DEVICE PARAMETERS` (0x91), `FLUSH CACHE` (0xE7),
//! `SET FEATURES` (0xEF). Anything else aborts with `ERR|ABRT`, as real
//! drives do — which is exactly how command-byte typos become visible to the
//! mutation experiments.
//!
//! Timing: the controller stays `BSY` for a fixed number of bus ticks after
//! each command, so polling loops in the drivers execute a realistic number
//! of iterations. A driver that polls for the wrong status bit will spin
//! forever — the "infinite loop" outcome class of the paper.

use crate::bus::{AccessSize, DeviceFault, IoDevice};
use crate::snap::{StateReader, StateWriter};
use std::any::Any;

/// Bytes per ATA sector.
pub const SECTOR_SIZE: usize = 512;

/// Status register bits.
const ST_ERR: u8 = 0x01;
const ST_DRQ: u8 = 0x08;
const ST_DSC: u8 = 0x10;
const ST_DRDY: u8 = 0x40;
const ST_BSY: u8 = 0x80;

/// Error register bits.
const ER_ABRT: u8 = 0x04;
const ER_IDNF: u8 = 0x10;

/// How many bus ticks a command keeps the drive busy.
const BUSY_TICKS: u64 = 24;

/// Disk geometry in classic cylinder/head/sector terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdeGeometry {
    /// Cylinder count.
    pub cylinders: u16,
    /// Heads per cylinder (1..=16).
    pub heads: u8,
    /// Sectors per track (1-based sector numbering on the wire).
    pub sectors: u8,
}

impl IdeGeometry {
    /// Total addressable sectors.
    pub fn capacity(&self) -> u32 {
        self.cylinders as u32 * self.heads as u32 * self.sectors as u32
    }
}

/// The disk platter: geometry plus byte content, with a write log for the
/// damage analysis done by the simulated fsck.
///
/// The platter also keeps a **dirty-sector journal** — one bit per sector
/// (a 2 MiB disk journals in 512 bytes), set on every sector write since
/// the platter last matched a snapshot — so restoring that same snapshot
/// again copies only the damaged sectors instead of the whole multi-MiB
/// platter. Membership is exact: any write pattern, however repetitive,
/// costs one bit per distinct sector. The journal is validated against
/// the snapshot identity ([`StateReader::snapshot_id`]) — restoring a
/// *different* snapshot, or one of unknown provenance, always falls back
/// to a full copy, so the fast path can never resurrect stale bytes.
#[derive(Debug, Clone)]
pub struct IdeDisk {
    geometry: IdeGeometry,
    data: Vec<u8>,
    writes: Vec<u32>,
    /// Bit per sector: written since the platter last matched
    /// `journal_base` (`dirty[lba / 64] & (1 << (lba % 64))`).
    dirty: Vec<u64>,
    /// Number of set bits in `dirty`.
    dirty_count: u32,
    /// Identity of the snapshot the platter last diverged from (`None`
    /// before any restore, or after restoring an id-less payload).
    journal_base: Option<u64>,
}

impl IdeDisk {
    /// Create a blank (zeroed) disk with the given geometry.
    pub fn new(geometry: IdeGeometry) -> Self {
        let bytes = geometry.capacity() as usize * SECTOR_SIZE;
        IdeDisk {
            geometry,
            data: vec![0; bytes],
            writes: Vec::new(),
            dirty: vec![0; geometry.capacity().div_ceil(64) as usize],
            dirty_count: 0,
            journal_base: None,
        }
    }

    /// A small default disk: 64 cylinders × 4 heads × 16 sectors = 2 MiB.
    pub fn small() -> Self {
        Self::new(IdeGeometry { cylinders: 64, heads: 4, sectors: 16 })
    }

    /// Disk geometry.
    pub fn geometry(&self) -> IdeGeometry {
        self.geometry
    }

    /// Borrow a sector's bytes.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is beyond the disk capacity.
    pub fn sector(&self, lba: u32) -> &[u8] {
        let start = lba as usize * SECTOR_SIZE;
        &self.data[start..start + SECTOR_SIZE]
    }

    /// Overwrite a sector's bytes (host-side, not via the wire).
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range or `bytes` is not one sector long.
    pub fn write_sector(&mut self, lba: u32, bytes: &[u8]) {
        assert_eq!(bytes.len(), SECTOR_SIZE, "sector payload must be {SECTOR_SIZE} bytes");
        let start = lba as usize * SECTOR_SIZE;
        self.data[start..start + SECTOR_SIZE].copy_from_slice(bytes);
        let mask = 1u64 << (lba % 64);
        let word = &mut self.dirty[lba as usize / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.dirty_count += 1;
        }
    }

    /// Distinct sectors recorded in the dirty journal — what the next
    /// restore of the journal's base snapshot will copy.
    pub fn dirty_sector_count(&self) -> usize {
        self.dirty_count as usize
    }

    /// LBAs written through the ATA wire since the last [`IdeDisk::clear_write_log`].
    pub fn write_log(&self) -> &[u32] {
        &self.writes
    }

    /// Forget recorded wire writes.
    pub fn clear_write_log(&mut self) {
        self.writes.clear();
    }

    fn wire_write(&mut self, lba: u32, buf: &[u8]) {
        self.writes.push(lba);
        self.write_sector(lba, buf);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Busy { then: PendingOp },
    DataIn,  // device -> host (read / identify)
    DataOut, // host -> device (write)
}

impl Phase {
    /// Three-byte wire encoding for snapshots: discriminant + pending-op
    /// code + pending-op payload (zero except `Busy { Fail(bits) }`).
    fn encode(self) -> [u8; 3] {
        match self {
            Phase::Idle => [0, 0, 0],
            Phase::Busy { then } => {
                let [code, payload] = then.encode();
                [1, code, payload]
            }
            Phase::DataIn => [2, 0, 0],
            Phase::DataOut => [3, 0, 0],
        }
    }

    fn decode(bytes: [u8; 3]) -> Self {
        match bytes[0] {
            0 => Phase::Idle,
            1 => Phase::Busy { then: PendingOp::decode([bytes[1], bytes[2]]) },
            2 => Phase::DataIn,
            _ => Phase::DataOut,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingOp {
    StartDataIn,
    StartDataOut,
    Complete,
    Fail(u8),
}

impl PendingOp {
    /// Two-byte wire encoding: code + payload (the `Fail` error bits).
    fn encode(self) -> [u8; 2] {
        match self {
            PendingOp::StartDataIn => [0, 0],
            PendingOp::StartDataOut => [1, 0],
            PendingOp::Complete => [2, 0],
            PendingOp::Fail(bits) => [3, bits],
        }
    }

    fn decode(bytes: [u8; 2]) -> Self {
        match bytes[0] {
            0 => PendingOp::StartDataIn,
            1 => PendingOp::StartDataOut,
            2 => PendingOp::Complete,
            _ => PendingOp::Fail(bytes[1]),
        }
    }
}

/// One IDE channel with a master drive (and, optionally, nothing on the
/// slave position — selecting the missing slave reads status `0x00`, the
/// classic "no drive" signature Linux probes for).
#[derive(Debug)]
pub struct IdeController {
    disk: IdeDisk,
    // Task-file registers.
    feature: u8,
    sector_count: u8,
    sector_number: u8,
    cyl_low: u8,
    cyl_high: u8,
    drive_head: u8,
    status: u8,
    error: u8,
    control: u8,
    phase: Phase,
    busy_left: u64,
    // Data transfer engine.
    buffer: [u8; SECTOR_SIZE],
    buf_pos: usize,
    sectors_left: u32,
    current_lba: u32,
    /// Commands received (for trace assertions in tests).
    commands: Vec<u8>,
}

impl IdeController {
    /// Create a controller over the given disk; the drive powers up ready.
    pub fn new(disk: IdeDisk) -> Self {
        IdeController {
            disk,
            feature: 0,
            sector_count: 1,
            sector_number: 1,
            cyl_low: 0,
            cyl_high: 0,
            drive_head: 0xA0,
            status: ST_DRDY | ST_DSC,
            error: 0,
            control: 0,
            phase: Phase::Idle,
            busy_left: 0,
            buffer: [0; SECTOR_SIZE],
            buf_pos: 0,
            sectors_left: 0,
            current_lba: 0,
            commands: Vec::new(),
        }
    }

    /// Borrow the attached disk.
    pub fn disk(&self) -> &IdeDisk {
        &self.disk
    }

    /// Mutably borrow the attached disk (host-side setup, e.g. mkfs).
    pub fn disk_mut(&mut self) -> &mut IdeDisk {
        &mut self.disk
    }

    /// Command bytes received so far, in order.
    pub fn command_log(&self) -> &[u8] {
        &self.commands
    }

    fn slave_selected(&self) -> bool {
        self.drive_head & 0x10 != 0
    }

    fn lba_mode(&self) -> bool {
        self.drive_head & 0x40 != 0
    }

    /// Resolve the task-file address to an absolute LBA.
    fn resolve_lba(&self) -> Option<u32> {
        let g = self.disk.geometry();
        let lba = if self.lba_mode() {
            ((self.drive_head as u32 & 0x0F) << 24)
                | ((self.cyl_high as u32) << 16)
                | ((self.cyl_low as u32) << 8)
                | self.sector_number as u32
        } else {
            let cyl = ((self.cyl_high as u32) << 8) | self.cyl_low as u32;
            let head = self.drive_head as u32 & 0x0F;
            let sect = self.sector_number as u32;
            if sect == 0 || sect > g.sectors as u32 || head >= g.heads as u32 {
                return None;
            }
            (cyl * g.heads as u32 + head) * g.sectors as u32 + (sect - 1)
        };
        if lba < g.capacity() {
            Some(lba)
        } else {
            None
        }
    }

    fn requested_count(&self) -> u32 {
        if self.sector_count == 0 {
            256
        } else {
            self.sector_count as u32
        }
    }

    fn begin_busy(&mut self, then: PendingOp) {
        self.status = ST_BSY;
        self.phase = Phase::Busy { then };
        self.busy_left = BUSY_TICKS;
    }

    fn fail(&mut self, error_bits: u8) {
        self.error = error_bits;
        self.status = ST_DRDY | ST_ERR;
        self.phase = Phase::Idle;
    }

    fn identify_payload(&self) -> [u8; SECTOR_SIZE] {
        let g = self.disk.geometry();
        let mut words = [0u16; 256];
        words[0] = 0x0040; // fixed drive
        words[1] = g.cylinders;
        words[3] = g.heads as u16;
        words[6] = g.sectors as u16;
        put_ata_string(&mut words[10..20], b"DVL-0001            "); // serial
        put_ata_string(&mut words[23..27], b"1.0     "); // firmware
        put_ata_string(&mut words[27..47], b"DEVIL SIMULATED DISK                    ");
        words[49] = 1 << 9; // LBA supported
        let cap = g.capacity();
        words[60] = (cap & 0xFFFF) as u16;
        words[61] = (cap >> 16) as u16;
        let mut bytes = [0u8; SECTOR_SIZE];
        for (i, w) in words.iter().enumerate() {
            bytes[2 * i] = (*w & 0xFF) as u8;
            bytes[2 * i + 1] = (*w >> 8) as u8;
        }
        bytes
    }

    fn start_command(&mut self, cmd: u8) {
        self.commands.push(cmd);
        if self.slave_selected() {
            // No slave drive: the command vanishes. The master's own state
            // is untouched; status reads float at 0 while the slave is
            // selected (see `read_status`).
            return;
        }
        self.error = 0;
        match cmd {
            0xEC => {
                // IDENTIFY DEVICE
                self.buffer = self.identify_payload();
                self.buf_pos = 0;
                self.sectors_left = 1;
                self.current_lba = u32::MAX; // not a media transfer
                self.begin_busy(PendingOp::StartDataIn);
            }
            0x20 | 0x21 => match self.resolve_lba() {
                Some(lba) => {
                    self.current_lba = lba;
                    self.sectors_left = self.requested_count();
                    if lba + self.sectors_left > self.disk.geometry().capacity() {
                        self.begin_busy(PendingOp::Fail(ER_IDNF));
                    } else {
                        self.buffer.copy_from_slice(self.disk.sector(lba));
                        self.buf_pos = 0;
                        self.begin_busy(PendingOp::StartDataIn);
                    }
                }
                None => self.begin_busy(PendingOp::Fail(ER_IDNF)),
            },
            0x30 | 0x31 => match self.resolve_lba() {
                Some(lba) => {
                    self.current_lba = lba;
                    self.sectors_left = self.requested_count();
                    if lba + self.sectors_left > self.disk.geometry().capacity() {
                        self.begin_busy(PendingOp::Fail(ER_IDNF));
                    } else {
                        self.buf_pos = 0;
                        self.begin_busy(PendingOp::StartDataOut);
                    }
                }
                None => self.begin_busy(PendingOp::Fail(ER_IDNF)),
            },
            0x10..=0x1F => self.begin_busy(PendingOp::Complete), // RECALIBRATE
            0x91 => self.begin_busy(PendingOp::Complete),        // INIT DEV PARAMS
            0xE7 => self.begin_busy(PendingOp::Complete),        // FLUSH CACHE
            0xEF => self.begin_busy(PendingOp::Complete),        // SET FEATURES
            _ => self.fail(ER_ABRT),
        }
    }

    fn finish_busy(&mut self) {
        if let Phase::Busy { then } = self.phase {
            match then {
                PendingOp::StartDataIn => {
                    self.status = ST_DRDY | ST_DSC | ST_DRQ;
                    self.phase = Phase::DataIn;
                }
                PendingOp::StartDataOut => {
                    self.status = ST_DRDY | ST_DSC | ST_DRQ;
                    self.phase = Phase::DataOut;
                }
                PendingOp::Complete => {
                    self.status = ST_DRDY | ST_DSC;
                    self.phase = Phase::Idle;
                }
                PendingOp::Fail(bits) => self.fail(bits),
            }
        }
    }

    fn read_status(&self) -> u8 {
        if self.slave_selected() {
            0
        } else {
            self.status
        }
    }

    fn data_read(&mut self, size: AccessSize) -> u32 {
        if self.phase != Phase::DataIn {
            return size.mask(); // reading with no DRQ floats
        }
        let n = (size.bits() / 8) as usize;
        let mut v = 0u32;
        for i in 0..n {
            v |= (self.buffer[self.buf_pos.min(SECTOR_SIZE - 1)] as u32) << (8 * i);
            self.buf_pos += 1;
            if self.buf_pos >= SECTOR_SIZE {
                self.sector_drained();
                if self.phase != Phase::DataIn {
                    break;
                }
            }
        }
        v
    }

    fn sector_drained(&mut self) {
        self.sectors_left = self.sectors_left.saturating_sub(1);
        self.buf_pos = 0;
        if self.sectors_left == 0 {
            self.status = ST_DRDY | ST_DSC;
            self.phase = Phase::Idle;
        } else {
            self.current_lba += 1;
            let lba = self.current_lba;
            self.buffer.copy_from_slice(self.disk.sector(lba));
        }
    }

    fn data_write(&mut self, size: AccessSize, value: u32) {
        if self.phase != Phase::DataOut {
            return; // writes with no DRQ vanish
        }
        let n = (size.bits() / 8) as usize;
        for i in 0..n {
            self.buffer[self.buf_pos.min(SECTOR_SIZE - 1)] = (value >> (8 * i)) as u8;
            self.buf_pos += 1;
            if self.buf_pos >= SECTOR_SIZE {
                self.sector_filled();
                if self.phase != Phase::DataOut {
                    break;
                }
            }
        }
    }

    /// Commit a completely staged sector to the platter and advance the
    /// transfer — the write-side twin of [`IdeController::sector_drained`].
    fn sector_filled(&mut self) {
        let lba = self.current_lba;
        let buf = self.buffer;
        self.disk.wire_write(lba, &buf);
        self.sectors_left = self.sectors_left.saturating_sub(1);
        self.buf_pos = 0;
        if self.sectors_left == 0 {
            self.status = ST_DRDY | ST_DSC;
            self.phase = Phase::Idle;
        } else {
            self.current_lba += 1;
        }
    }

    /// Restore the platter from a snapshot payload. When the payload
    /// belongs to the same snapshot the dirty journal is relative to, only
    /// the journalled sectors are copied back (restore cost proportional
    /// to the damage the mutant actually did); any identity mismatch or
    /// unknown provenance falls back to the full-platter copy.
    /// Allocation-free either way: the journal is a fixed bitmap.
    fn load_platter(&mut self, r: &mut StateReader<'_>) {
        let platter = r.bytes(self.disk.data.len());
        let id = r.snapshot_id();
        let sparse = id != 0 && self.disk.journal_base == Some(id);
        if sparse {
            if self.disk.dirty_count > 0 {
                for (w, bits) in self.disk.dirty.iter_mut().enumerate() {
                    let mut b = *bits;
                    while b != 0 {
                        let lba = w * 64 + b.trailing_zeros() as usize;
                        let a = lba * SECTOR_SIZE;
                        self.disk.data[a..a + SECTOR_SIZE]
                            .copy_from_slice(&platter[a..a + SECTOR_SIZE]);
                        b &= b - 1;
                    }
                    *bits = 0;
                }
            }
        } else {
            self.disk.data.copy_from_slice(platter);
            self.disk.dirty.fill(0);
        }
        self.disk.dirty_count = 0;
        self.disk.journal_base = (id != 0).then_some(id);
    }

    fn soft_reset(&mut self) {
        self.status = ST_DRDY | ST_DSC;
        self.error = 1; // diagnostic code: device 0 passed
        self.phase = Phase::Idle;
        self.sector_count = 1;
        self.sector_number = 1;
        self.cyl_low = 0;
        self.cyl_high = 0;
        self.drive_head = 0xA0;
    }
}

fn put_ata_string(words: &mut [u16], text: &[u8]) {
    for (i, w) in words.iter_mut().enumerate() {
        let hi = text.get(2 * i).copied().unwrap_or(b' ');
        let lo = text.get(2 * i + 1).copied().unwrap_or(b' ');
        *w = ((hi as u16) << 8) | lo as u16;
    }
}

impl IoDevice for IdeController {
    fn name(&self) -> &str {
        "ide-piix4"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        match offset {
            0 => Ok(self.data_read(size)),
            1..=8 if size != AccessSize::Byte => {
                Err(DeviceFault::Width { offset, size })
            }
            1 => Ok(self.error as u32),
            2 => Ok(self.sector_count as u32),
            3 => Ok(self.sector_number as u32),
            4 => Ok(self.cyl_low as u32),
            5 => Ok(self.cyl_high as u32),
            6 => Ok((self.drive_head | 0xA0) as u32),
            7 | 8 => Ok(self.read_status() as u32),
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        match offset {
            0 => {
                self.data_write(size, value);
                Ok(())
            }
            1..=8 if size != AccessSize::Byte => {
                Err(DeviceFault::Width { offset, size })
            }
            1 => {
                self.feature = value as u8;
                Ok(())
            }
            2 => {
                self.sector_count = value as u8;
                Ok(())
            }
            3 => {
                self.sector_number = value as u8;
                Ok(())
            }
            4 => {
                self.cyl_low = value as u8;
                Ok(())
            }
            5 => {
                self.cyl_high = value as u8;
                Ok(())
            }
            6 => {
                // Bits 7 and 5 are fixed to 1 on the wire (mask '1.1.....').
                self.drive_head = value as u8 | 0xA0;
                Ok(())
            }
            7 => {
                if self.status & ST_BSY == 0 || matches!(self.phase, Phase::Idle) {
                    self.start_command(value as u8);
                }
                Ok(())
            }
            8 => {
                let prev = self.control;
                self.control = value as u8;
                // SRST: falling edge completes the reset.
                if prev & 0x04 != 0 && value as u8 & 0x04 == 0 {
                    self.soft_reset();
                } else if value as u8 & 0x04 != 0 {
                    self.status = ST_BSY;
                }
                Ok(())
            }
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    /// Bulk word reads from the data register — the `insw` fast path for
    /// sector transfers. Accepts only the in-transfer, word-aligned case
    /// (`DataIn` implies no busy timer is pending, so tick batching is
    /// safe); everything else declines to the single-access loop.
    fn read_block(&mut self, offset: u16, size: AccessSize, out: &mut [u32]) -> bool {
        if offset != 0
            || size != AccessSize::Word
            || self.phase != Phase::DataIn
            || !self.buf_pos.is_multiple_of(2)
        {
            return false;
        }
        let mut i = 0;
        while i < out.len() {
            if self.phase != Phase::DataIn {
                // Transfer complete mid-block: the remaining reads float,
                // exactly as per-access `data_read` calls would.
                for v in &mut out[i..] {
                    *v = AccessSize::Word.mask();
                }
                break;
            }
            let take = ((SECTOR_SIZE - self.buf_pos) / 2).min(out.len() - i);
            for (k, v) in out[i..i + take].iter_mut().enumerate() {
                let p = self.buf_pos + 2 * k;
                *v = u16::from_le_bytes([self.buffer[p], self.buffer[p + 1]]) as u32;
            }
            self.buf_pos += 2 * take;
            i += take;
            if self.buf_pos >= SECTOR_SIZE {
                self.sector_drained();
            }
        }
        true
    }

    /// Bulk word writes to the data register — the `outsw` fast path.
    fn write_block(&mut self, offset: u16, size: AccessSize, values: &[u32]) -> bool {
        if offset != 0
            || size != AccessSize::Word
            || self.phase != Phase::DataOut
            || !self.buf_pos.is_multiple_of(2)
        {
            return false;
        }
        let mut i = 0;
        while i < values.len() {
            if self.phase != Phase::DataOut {
                break; // transfer complete: the remaining writes vanish
            }
            let take = ((SECTOR_SIZE - self.buf_pos) / 2).min(values.len() - i);
            for (k, v) in values[i..i + take].iter().enumerate() {
                let [lo, hi] = (*v as u16).to_le_bytes();
                self.buffer[self.buf_pos + 2 * k] = lo;
                self.buffer[self.buf_pos + 2 * k + 1] = hi;
            }
            self.buf_pos += 2 * take;
            i += take;
            if self.buf_pos >= SECTOR_SIZE {
                self.sector_filled();
            }
        }
        true
    }

    fn tick(&mut self, ticks: u64) {
        if let Phase::Busy { .. } = self.phase {
            if self.busy_left <= ticks {
                self.busy_left = 0;
                self.finish_busy();
            } else {
                self.busy_left -= ticks;
            }
        }
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        w.u8(self.feature);
        w.u8(self.sector_count);
        w.u8(self.sector_number);
        w.u8(self.cyl_low);
        w.u8(self.cyl_high);
        w.u8(self.drive_head);
        w.u8(self.status);
        w.u8(self.error);
        w.u8(self.control);
        w.bytes(&self.phase.encode());
        w.u64(self.busy_left);
        w.bytes(&self.buffer);
        w.u64(self.buf_pos as u64);
        w.u32(self.sectors_left);
        w.u32(self.current_lba);
        w.len_bytes(&self.commands);
        // The platter: geometry is construction-time, only the content and
        // the wire-write log are mutable.
        w.bytes(&self.disk.data);
        w.len_u32s(&self.disk.writes);
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        self.feature = r.u8();
        self.sector_count = r.u8();
        self.sector_number = r.u8();
        self.cyl_low = r.u8();
        self.cyl_high = r.u8();
        self.drive_head = r.u8();
        self.status = r.u8();
        self.error = r.u8();
        self.control = r.u8();
        self.phase = Phase::decode([r.u8(), r.u8(), r.u8()]);
        self.busy_left = r.u64();
        r.fill(&mut self.buffer);
        self.buf_pos = r.u64() as usize;
        self.sectors_left = r.u32();
        self.current_lba = r.u32();
        r.fill_len_bytes(&mut self.commands);
        self.load_platter(r);
        r.fill_len_u32s(&mut self.disk.writes);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{IoBus, IoSpace};

    const BASE: u16 = 0x1F0;
    const STATUS: u16 = BASE + 7;
    const CMD: u16 = BASE + 7;

    fn machine() -> (IoSpace, crate::bus::DeviceId) {
        let mut io = IoSpace::new();
        let id = io.map(BASE, 9, Box::new(IdeController::new(IdeDisk::small()))).unwrap();
        (io, id)
    }

    fn wait_ready(io: &mut IoSpace) -> u8 {
        for _ in 0..10_000 {
            let st = io.inb(STATUS).unwrap();
            if st & ST_BSY == 0 {
                return st;
            }
        }
        panic!("drive stayed busy");
    }

    fn select_lba(io: &mut IoSpace, lba: u32, count: u8) {
        io.outb(BASE + 2, count).unwrap();
        io.outb(BASE + 3, (lba & 0xFF) as u8).unwrap();
        io.outb(BASE + 4, ((lba >> 8) & 0xFF) as u8).unwrap();
        io.outb(BASE + 5, ((lba >> 16) & 0xFF) as u8).unwrap();
        io.outb(BASE + 6, 0xE0 | ((lba >> 24) & 0x0F) as u8).unwrap();
    }

    #[test]
    fn powers_up_ready() {
        let (mut io, _) = machine();
        let st = io.inb(STATUS).unwrap();
        assert_ne!(st & ST_DRDY, 0);
        assert_eq!(st & ST_BSY, 0);
    }

    #[test]
    fn identify_returns_geometry_and_model() {
        let (mut io, _) = machine();
        io.outb(BASE + 6, 0xA0).unwrap();
        io.outb(CMD, 0xEC).unwrap();
        let st = wait_ready(&mut io);
        assert_ne!(st & ST_DRQ, 0, "IDENTIFY must raise DRQ");
        let mut words = [0u16; 256];
        for w in words.iter_mut() {
            *w = io.inw(BASE).unwrap();
        }
        assert_eq!(words[1], 64); // cylinders
        assert_eq!(words[3], 4); // heads
        assert_eq!(words[6], 16); // sectors
        let cap = words[60] as u32 | ((words[61] as u32) << 16);
        assert_eq!(cap, 64 * 4 * 16);
        // Model string is space-padded big-endian-in-word ASCII.
        let hi = (words[27] >> 8) as u8;
        let lo = (words[27] & 0xFF) as u8;
        assert_eq!(&[hi, lo], b"DE");
        // DRQ cleared after the full sector was drained.
        assert_eq!(io.inb(STATUS).unwrap() & ST_DRQ, 0);
    }

    #[test]
    fn lba_read_returns_sector_content() {
        let (mut io, id) = machine();
        {
            let ide = io.device_mut::<IdeController>(id).unwrap();
            let mut sect = [0u8; SECTOR_SIZE];
            sect[0] = 0xCA;
            sect[1] = 0xFE;
            sect[511] = 0x77;
            ide.disk_mut().write_sector(5, &sect);
        }
        select_lba(&mut io, 5, 1);
        io.outb(CMD, 0x20).unwrap();
        let st = wait_ready(&mut io);
        assert_ne!(st & ST_DRQ, 0);
        let first = io.inw(BASE).unwrap();
        assert_eq!(first, 0xFECA); // little-endian word
        for _ in 1..255 {
            io.inw(BASE).unwrap();
        }
        let last = io.inw(BASE).unwrap();
        assert_eq!(last >> 8, 0x77);
        assert_eq!(io.inb(STATUS).unwrap() & ST_DRQ, 0);
    }

    #[test]
    fn multi_sector_read_crosses_boundaries() {
        let (mut io, id) = machine();
        {
            let ide = io.device_mut::<IdeController>(id).unwrap();
            let mut s = [1u8; SECTOR_SIZE];
            ide.disk_mut().write_sector(9, &s);
            s = [2u8; SECTOR_SIZE];
            ide.disk_mut().write_sector(10, &s);
        }
        select_lba(&mut io, 9, 2);
        io.outb(CMD, 0x20).unwrap();
        wait_ready(&mut io);
        for _ in 0..256 {
            assert_eq!(io.inw(BASE).unwrap(), 0x0101);
        }
        // Second sector streams without an intervening command.
        for _ in 0..256 {
            assert_eq!(io.inw(BASE).unwrap(), 0x0202);
        }
        assert_eq!(io.inb(STATUS).unwrap() & ST_DRQ, 0);
    }

    /// The bulk data-port hooks must be bit-equivalent to the equivalent
    /// single-access loops — values, machine counters and the complete
    /// device snapshot — including a transfer that completes mid-block.
    #[test]
    fn block_transfers_match_single_accesses() {
        let drive = |io: &mut IoSpace, lba: u32, cmd: u8| {
            select_lba(io, lba, 2);
            io.outb(CMD, cmd).unwrap();
            wait_ready(io);
        };
        // Read path: drain 2 sectors plus 8 overshoot words (floats).
        let (mut a, id_a) = machine();
        let (mut b, id_b) = machine();
        for (io, id) in [(&mut a, id_a), (&mut b, id_b)] {
            let ide = io.device_mut::<IdeController>(id).unwrap();
            let mut s = [3u8; SECTOR_SIZE];
            s[7] = 0x5A;
            ide.disk_mut().write_sector(4, &s);
            ide.disk_mut().write_sector(5, &[4u8; SECTOR_SIZE]);
        }
        drive(&mut a, 4, 0x20);
        drive(&mut b, 4, 0x20);
        let mut block = [0u32; 520];
        a.read_block(BASE, AccessSize::Word, &mut block);
        let singles: Vec<u32> = (0..block.len())
            .map(|_| u32::from(b.inw(BASE).unwrap()))
            .collect();
        assert_eq!(&block[..], &singles[..], "read values diverged");
        assert_eq!(a.clock(), b.clock());
        assert_eq!(a.read_count(), b.read_count());
        assert_eq!(a.snapshot(), b.snapshot(), "machine state diverged after reads");
        // Write path: 2 sectors plus overshoot words (vanish).
        drive(&mut a, 4, 0x30);
        drive(&mut b, 4, 0x30);
        let pattern: Vec<u32> = (0..520u32).map(|i| (i * 31 + 7) & 0xFFFF).collect();
        a.write_block(BASE, AccessSize::Word, &pattern);
        for w in &pattern {
            b.outw(BASE, *w as u16).unwrap();
        }
        assert_eq!(a.clock(), b.clock());
        assert_eq!(a.write_count(), b.write_count());
        assert_eq!(a.snapshot(), b.snapshot(), "machine state diverged after writes");
    }

    #[test]
    fn write_commits_to_disk_and_logs() {
        let (mut io, id) = machine();
        select_lba(&mut io, 3, 1);
        io.outb(CMD, 0x30).unwrap();
        let st = wait_ready(&mut io);
        assert_ne!(st & ST_DRQ, 0);
        for i in 0..256u32 {
            io.outw(BASE, (i & 0xFFFF) as u16).unwrap();
        }
        assert_eq!(io.inb(STATUS).unwrap() & ST_DRQ, 0);
        let ide = io.device::<IdeController>(id).unwrap();
        assert_eq!(ide.disk().write_log(), &[3]);
        assert_eq!(ide.disk().sector(3)[0], 0);
        assert_eq!(ide.disk().sector(3)[2], 1);
    }

    #[test]
    fn unknown_command_aborts() {
        let (mut io, _) = machine();
        io.outb(CMD, 0xFE).unwrap();
        let st = io.inb(STATUS).unwrap();
        assert_ne!(st & ST_ERR, 0);
        assert_ne!(io.inb(BASE + 1).unwrap() & ER_ABRT as u32 as u8, 0);
    }

    #[test]
    fn out_of_range_lba_fails_idnf() {
        let (mut io, _) = machine();
        select_lba(&mut io, 64 * 4 * 16, 1); // one past capacity
        io.outb(CMD, 0x20).unwrap();
        let st = wait_ready(&mut io);
        assert_ne!(st & ST_ERR, 0);
        assert_ne!(io.inb(BASE + 1).unwrap() & ER_IDNF, 0);
    }

    #[test]
    fn chs_addressing_resolves() {
        let (mut io, id) = machine();
        {
            let ide = io.device_mut::<IdeController>(id).unwrap();
            let s = [0xABu8; SECTOR_SIZE];
            // CHS (1, 2, 5) => ((1*4)+2)*16 + 4 = 100
            ide.disk_mut().write_sector(100, &s);
        }
        io.outb(BASE + 2, 1).unwrap();
        io.outb(BASE + 3, 5).unwrap(); // sector 5 (1-based)
        io.outb(BASE + 4, 1).unwrap(); // cyl low
        io.outb(BASE + 5, 0).unwrap();
        io.outb(BASE + 6, 0xA0 | 2).unwrap(); // head 2, CHS mode
        io.outb(CMD, 0x20).unwrap();
        wait_ready(&mut io);
        assert_eq!(io.inw(BASE).unwrap(), 0xABAB);
    }

    #[test]
    fn chs_sector_zero_is_invalid() {
        let (mut io, _) = machine();
        io.outb(BASE + 3, 0).unwrap();
        io.outb(BASE + 6, 0xA0).unwrap();
        io.outb(CMD, 0x20).unwrap();
        let st = wait_ready(&mut io);
        assert_ne!(st & ST_ERR, 0);
    }

    #[test]
    fn slave_select_reads_zero_status() {
        let (mut io, _) = machine();
        io.outb(BASE + 6, 0xB0).unwrap(); // slave
        assert_eq!(io.inb(STATUS).unwrap(), 0);
        io.outb(CMD, 0xEC).unwrap();
        assert_eq!(io.inb(STATUS).unwrap(), 0);
        io.outb(BASE + 6, 0xA0).unwrap(); // back to master
        assert_ne!(io.inb(STATUS).unwrap() & ST_DRDY, 0);
    }

    #[test]
    fn soft_reset_restores_ready() {
        let (mut io, _) = machine();
        io.outb(CMD, 0xFE).unwrap(); // leave drive in error state
        io.outb(BASE + 8, 0x04).unwrap(); // SRST on
        assert_ne!(io.inb(STATUS).unwrap() & ST_BSY, 0);
        io.outb(BASE + 8, 0x00).unwrap(); // SRST off
        let st = io.inb(STATUS).unwrap();
        assert_ne!(st & ST_DRDY, 0);
        assert_eq!(st & ST_ERR, 0);
        assert_eq!(io.inb(BASE + 1).unwrap(), 1); // diagnostic code
    }

    #[test]
    fn busy_window_is_observable() {
        let (mut io, _) = machine();
        io.outb(CMD, 0xEC).unwrap();
        // Immediately after the command the drive must be BSY at least once.
        let st = io.inb(STATUS).unwrap();
        assert_ne!(st & ST_BSY, 0, "expected a busy window after command issue");
        wait_ready(&mut io);
    }

    #[test]
    fn sector_count_zero_means_256() {
        let (mut io, _) = machine();
        select_lba(&mut io, 0, 0);
        io.outb(CMD, 0x20).unwrap();
        wait_ready(&mut io);
        // 256 sectors * 256 words each stream out.
        for _ in 0..(256 * 256) {
            io.inw(BASE).unwrap();
        }
        assert_eq!(io.inb(STATUS).unwrap() & ST_DRQ, 0);
    }

    #[test]
    fn drive_head_fixed_bits_read_back_set() {
        let (mut io, _) = machine();
        io.outb(BASE + 6, 0x00).unwrap();
        assert_eq!(io.inb(BASE + 6).unwrap() & 0xA0, 0xA0);
    }

    #[test]
    fn word_access_to_byte_register_faults() {
        let (mut io, _) = machine();
        assert!(io.inw(STATUS).is_err());
        assert!(io.outw(BASE + 6, 0xA0A0).is_err());
    }

    /// Write one sector through the wire (DRQ handshake included).
    fn wire_write_sector(io: &mut IoSpace, lba: u32, word: u16) {
        select_lba(io, lba, 1);
        io.outb(CMD, 0x30).unwrap();
        wait_ready(io);
        for _ in 0..256 {
            io.outw(BASE, word).unwrap();
        }
    }

    #[test]
    fn dirty_journal_sparse_restore_matches_snapshot() {
        let (mut io, id) = machine();
        {
            let ide = io.device_mut::<IdeController>(id).unwrap();
            ide.disk_mut().write_sector(7, &[0x11; SECTOR_SIZE]);
        }
        let snap = io.snapshot();
        // First restore is a full copy (journal base unknown) and arms
        // the journal; later restores of the same snapshot are sparse.
        io.restore(&snap).unwrap();
        for round in 0..3 {
            wire_write_sector(&mut io, 7, 0xBEEF);
            wire_write_sector(&mut io, 42, 0xBEEF);
            {
                let ide = io.device::<IdeController>(id).unwrap();
                assert_eq!(ide.disk().sector(42)[0], 0xEF);
                assert_eq!(ide.disk().dirty_sector_count(), 2);
            }
            io.restore(&snap).unwrap();
            let ide = io.device::<IdeController>(id).unwrap();
            assert_eq!(ide.disk().sector(7)[0], 0x11, "round {round}");
            assert_eq!(ide.disk().sector(42)[0], 0x00, "round {round}");
            assert_eq!(ide.disk().dirty_sector_count(), 0);
        }
        assert_eq!(io.snapshot(), snap, "sparse restores leave the machine snapshot-equal");
    }

    #[test]
    fn dirty_journal_rejects_a_different_snapshot() {
        let (mut io, id) = machine();
        let snap_a = io.snapshot();
        io.restore(&snap_a).unwrap(); // arm the journal on A
        wire_write_sector(&mut io, 5, 0x5555);
        let snap_b = io.snapshot(); // captures the dirtied sector 5
        // Restoring A must not trust B's journal state and vice versa:
        // alternate restores and verify full content each time.
        io.restore(&snap_a).unwrap();
        assert_eq!(io.device::<IdeController>(id).unwrap().disk().sector(5)[0], 0);
        io.restore(&snap_b).unwrap();
        assert_eq!(io.device::<IdeController>(id).unwrap().disk().sector(5)[0], 0x55);
        io.restore(&snap_a).unwrap();
        assert_eq!(io.snapshot(), snap_a);
    }

    #[test]
    fn dirty_journal_membership_is_exact_under_repeated_writes() {
        // A runaway loop alternating between two sectors must cost two
        // journal bits, not a slot per write — the bitmap keeps the sparse
        // restore path even for pathological mutants.
        let (mut io, id) = machine();
        let snap = io.snapshot();
        io.restore(&snap).unwrap(); // arm the journal
        for round in 0..2000u32 {
            let ide = io.device_mut::<IdeController>(id).unwrap();
            let fill = [(round & 0xFF) as u8; SECTOR_SIZE];
            ide.disk_mut().write_sector(9, &fill);
            ide.disk_mut().write_sector(40, &fill);
        }
        assert_eq!(
            io.device::<IdeController>(id).unwrap().disk().dirty_sector_count(),
            2,
            "distinct sectors, not writes"
        );
        io.restore(&snap).unwrap();
        assert_eq!(io.snapshot(), snap);
        let ide = io.device::<IdeController>(id).unwrap();
        assert_eq!(ide.disk().sector(9)[0], 0);
        assert_eq!(ide.disk().sector(40)[0], 0);
    }
}
