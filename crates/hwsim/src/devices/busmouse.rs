//! Logitech busmouse model.
//!
//! The register layout follows the Devil specification reproduced in
//! Figure 3 of the paper (ports `base + 0..3`):
//!
//! * `base + 0` — read-only data port; returns one nibble of the motion
//!   counters, selected by the index latch (`0` = x low, `1` = x high,
//!   `2` = y low, `3` = y high). In the y-high frame, bits `7..5` carry the
//!   (active-low on real hardware, direct here) button state.
//! * `base + 1` — signature register, a plain read/write latch used by the
//!   probe routine to detect the card.
//! * `base + 2` — write-only control port. With bit 7 set the write selects
//!   the nibble index (bits `6..5`) and leaves the interrupt gate alone;
//!   with bit 7 clear, bit 4 gates interrupts (`0` = enable, `1` = disable).
//! * `base + 3` — write-only configuration register (bit 0 selects
//!   configuration vs. default mode).
//!
//! Motion is injected by the test/boot harness through
//! [`Busmouse::inject_motion`]. Disabling interrupts *holds* the quadrature
//! counters: the current deltas are latched for reading and the live
//! counters restart at zero, exactly the freeze-read-release cycle the
//! Linux `busmouse.c` interrupt handler relies on. Re-enabling interrupts
//! discards the latch.

use crate::bus::{AccessSize, DeviceFault, IoDevice};
use crate::snap::{StateReader, StateWriter};
use std::any::Any;

/// Behavioural Logitech busmouse (see module docs for the register map).
#[derive(Debug, Clone)]
pub struct Busmouse {
    signature: u8,
    index: u8,
    interrupts_disabled: bool,
    config: u8,
    dx: i8,
    dy: i8,
    buttons: u8,
    /// Snapshot latched when the interrupt gate closes (hold mode).
    held: Option<(i8, i8, u8)>,
    reads: u64,
}

impl Default for Busmouse {
    fn default() -> Self {
        Self::new()
    }
}

impl Busmouse {
    /// Create a quiescent mouse: no motion pending, interrupts disabled.
    pub fn new() -> Self {
        Busmouse {
            signature: 0,
            index: 0,
            interrupts_disabled: true,
            config: 0,
            dx: 0,
            dy: 0,
            buttons: 0,
            held: None,
            reads: 0,
        }
    }

    /// Accumulate a motion event. `buttons` uses the low three bits.
    ///
    /// Deltas saturate at the i8 range, as the hardware counters did.
    pub fn inject_motion(&mut self, dx: i8, dy: i8, buttons: u8) {
        self.dx = self.dx.saturating_add(dx);
        self.dy = self.dy.saturating_add(dy);
        self.buttons = buttons & 0x07;
    }

    /// Currently latched x delta (for assertions in tests).
    pub fn pending_dx(&self) -> i8 {
        self.dx
    }

    /// Currently latched y delta.
    pub fn pending_dy(&self) -> i8 {
        self.dy
    }

    /// Current button state (low three bits).
    pub fn buttons(&self) -> u8 {
        self.buttons
    }

    /// Whether the interrupt gate is open.
    pub fn interrupts_enabled(&self) -> bool {
        !self.interrupts_disabled
    }

    /// Value of the configuration register.
    pub fn config(&self) -> u8 {
        self.config
    }

    /// Currently selected nibble index (0..=3).
    pub fn index(&self) -> u8 {
        self.index
    }

    fn data_nibbles(&self) -> u8 {
        let (dx, dy, buttons) = self.held.unwrap_or((self.dx, self.dy, self.buttons));
        match self.index {
            0 => (dx as u8) & 0x0F,
            1 => ((dx as u8) >> 4) & 0x0F,
            2 => (dy as u8) & 0x0F,
            3 => (buttons << 5) | (((dy as u8) >> 4) & 0x0F),
            _ => unreachable!("index latch is two bits"),
        }
    }
}

impl IoDevice for Busmouse {
    fn name(&self) -> &str {
        "logitech-busmouse"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        self.reads += 1;
        match offset {
            0 => Ok(self.data_nibbles() as u32),
            1 => Ok(self.signature as u32),
            // Control and config are write-only; reads float.
            2 | 3 => Ok(0xFF),
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        let v = value as u8;
        match offset {
            0 => Ok(()), // data port writes are ignored
            1 => {
                self.signature = v;
                Ok(())
            }
            2 => {
                if v & 0x80 != 0 {
                    // Index select: the gate is untouched.
                    self.index = (v >> 5) & 0x03;
                } else {
                    let disable = v & 0x10 != 0;
                    if disable && !self.interrupts_disabled {
                        // Gate closes: hold the counters, restart the live ones.
                        self.held = Some((self.dx, self.dy, self.buttons));
                        self.dx = 0;
                        self.dy = 0;
                    } else if !disable && self.interrupts_disabled {
                        self.held = None;
                    }
                    self.interrupts_disabled = disable;
                }
                Ok(())
            }
            3 => {
                self.config = v & 0x91;
                Ok(())
            }
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        w.u8(self.signature);
        w.u8(self.index);
        w.bool(self.interrupts_disabled);
        w.u8(self.config);
        w.u8(self.dx as u8);
        w.u8(self.dy as u8);
        w.u8(self.buttons);
        match self.held {
            Some((dx, dy, buttons)) => {
                w.bool(true);
                w.u8(dx as u8);
                w.u8(dy as u8);
                w.u8(buttons);
            }
            None => w.bool(false),
        }
        w.u64(self.reads);
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        self.signature = r.u8();
        self.index = r.u8();
        self.interrupts_disabled = r.bool();
        self.config = r.u8();
        self.dx = r.u8() as i8;
        self.dy = r.u8() as i8;
        self.buttons = r.u8();
        self.held = if r.bool() {
            Some((r.u8() as i8, r.u8() as i8, r.u8()))
        } else {
            None
        };
        self.reads = r.u64();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{IoBus, IoSpace};

    const BASE: u16 = 0x23C;

    fn machine() -> (IoSpace, crate::bus::DeviceId) {
        let mut io = IoSpace::new();
        let id = io.map(BASE, 4, Box::new(Busmouse::new())).unwrap();
        (io, id)
    }

    fn read_nibble(io: &mut IoSpace, index: u8) -> u8 {
        io.outb(BASE + 2, 0x80 | (index << 5)).unwrap();
        io.inb(BASE).unwrap()
    }

    #[test]
    fn signature_register_round_trips() {
        let (mut io, _) = machine();
        io.outb(BASE + 1, 0xA5).unwrap();
        assert_eq!(io.inb(BASE + 1).unwrap(), 0xA5);
        io.outb(BASE + 1, 0x5A).unwrap();
        assert_eq!(io.inb(BASE + 1).unwrap(), 0x5A);
    }

    #[test]
    fn motion_read_back_via_nibbles() {
        let (mut io, id) = machine();
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(0x35u8 as i8, -3, 0b101);
        assert_eq!(read_nibble(&mut io, 0), 0x5); // x low
        assert_eq!(read_nibble(&mut io, 1), 0x3); // x high
        let dy = -3i8 as u8; // 0xFD
        assert_eq!(read_nibble(&mut io, 2), dy & 0xF);
        let yh = read_nibble(&mut io, 3);
        assert_eq!(yh & 0x0F, (dy >> 4) & 0xF);
        assert_eq!(yh >> 5, 0b101);
    }

    #[test]
    fn hold_latches_counters_and_release_discards() {
        let (mut io, id) = machine();
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(10, 20, 0);
        io.outb(BASE + 2, 0x00).unwrap(); // enable (gate open)
        io.outb(BASE + 2, 0x10).unwrap(); // disable: hold
        // Motion arriving during the hold is not visible in the latch.
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(3, 0, 0);
        assert_eq!(read_nibble(&mut io, 0), 10);
        assert_eq!(read_nibble(&mut io, 2), 20 & 0xF);
        // Release: latch discarded, live counters (the 3) take over.
        io.outb(BASE + 2, 0x00).unwrap();
        assert_eq!(read_nibble(&mut io, 0), 3);
    }

    #[test]
    fn reads_without_hold_do_not_clear() {
        let (mut io, id) = machine();
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(5, 6, 0);
        assert_eq!(read_nibble(&mut io, 0), 5);
        assert_eq!(read_nibble(&mut io, 0), 5, "live counters persist");
        assert_eq!(read_nibble(&mut io, 2), 6);
    }

    #[test]
    fn motion_accumulates_and_saturates() {
        let mut m = Busmouse::new();
        m.inject_motion(100, 0, 0);
        m.inject_motion(100, 0, 0);
        assert_eq!(m.pending_dx(), 127);
        m.inject_motion(-128, -128, 0);
        m.inject_motion(-128, -128, 0);
        assert_eq!(m.pending_dy(), -128);
    }

    #[test]
    fn interrupt_gate_follows_bit4() {
        let (mut io, id) = machine();
        io.outb(BASE + 2, 0x00).unwrap();
        assert!(io.device::<Busmouse>(id).unwrap().interrupts_enabled());
        io.outb(BASE + 2, 0x10).unwrap();
        assert!(!io.device::<Busmouse>(id).unwrap().interrupts_enabled());
    }

    #[test]
    fn index_latch_only_updates_with_bit7() {
        let (mut io, id) = machine();
        io.outb(BASE + 2, 0x80 | (2 << 5)).unwrap();
        assert_eq!(io.device::<Busmouse>(id).unwrap().index(), 2);
        // Bit 7 clear: interrupt gate write, index untouched.
        io.outb(BASE + 2, 0x10).unwrap();
        assert_eq!(io.device::<Busmouse>(id).unwrap().index(), 2);
    }

    #[test]
    fn config_register_masks_fixed_bits() {
        let (mut io, id) = machine();
        io.outb(BASE + 3, 0xFF).unwrap();
        // Mask '1001000.' keeps bits 7, 4 and 0 (the writable pattern).
        assert_eq!(io.device::<Busmouse>(id).unwrap().config(), 0x91);
    }

    #[test]
    fn word_access_is_refused() {
        let (mut io, _) = machine();
        assert!(io.inw(BASE).is_err());
        assert!(io.outw(BASE + 2, 0x8080).is_err());
    }

    #[test]
    fn control_port_reads_float() {
        let (mut io, _) = machine();
        assert_eq!(io.inb(BASE + 2).unwrap(), 0xFF);
        assert_eq!(io.inb(BASE + 3).unwrap(), 0xFF);
    }
}
