//! Intel 8259A programmable interrupt controller (single chip).
//!
//! Two ports: `base + 0` (ICW1 / OCW2 / OCW3) and `base + 1`
//! (ICW2..4 / OCW1 mask). The model implements the standard initialisation
//! handshake (ICW1 with bit 4 set starts a sequence expecting ICW2 and, when
//! requested, ICW4), the interrupt mask, request/in-service registers
//! readable through OCW3, and specific/non-specific EOI through OCW2.
//!
//! Interrupts are raised by the harness with [`Pic8259::raise_irq`] and
//! fetched with [`Pic8259::ack`] (the INTA cycle).

use crate::bus::{AccessSize, DeviceFault, IoDevice};
use crate::snap::{StateReader, StateWriter};
use std::any::Any;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InitState {
    Ready,
    ExpectIcw2,
    ExpectIcw3,
    ExpectIcw4,
}

/// Single 8259A interrupt controller.
#[derive(Debug, Clone)]
pub struct Pic8259 {
    imr: u8,
    irr: u8,
    isr: u8,
    vector_base: u8,
    init: InitState,
    cascade_expected: bool,
    icw4_expected: bool,
    read_isr: bool,
}

impl Default for Pic8259 {
    fn default() -> Self {
        Self::new()
    }
}

impl Pic8259 {
    /// Power-on state: everything masked, vector base 8 (the PC default).
    pub fn new() -> Self {
        Pic8259 {
            imr: 0xFF,
            irr: 0,
            isr: 0,
            vector_base: 8,
            init: InitState::Ready,
            cascade_expected: false,
            icw4_expected: false,
            read_isr: false,
        }
    }

    /// Latch an interrupt request on `line` (0..8).
    pub fn raise_irq(&mut self, line: u8) {
        self.irr |= 1 << (line & 7);
    }

    /// Highest-priority pending unmasked interrupt, if any.
    pub fn pending(&self) -> Option<u8> {
        let active = self.irr & !self.imr;
        (0..8).find(|&l| active & (1 << l) != 0)
    }

    /// Acknowledge (INTA): moves the highest-priority request to in-service
    /// and returns its vector.
    pub fn ack(&mut self) -> Option<u8> {
        let line = self.pending()?;
        self.irr &= !(1 << line);
        self.isr |= 1 << line;
        Some(self.vector_base + line)
    }

    /// Current interrupt mask register.
    pub fn mask(&self) -> u8 {
        self.imr
    }

    /// Vector base programmed by ICW2.
    pub fn vector_base(&self) -> u8 {
        self.vector_base
    }

    /// Whether initialisation has completed.
    pub fn is_initialized(&self) -> bool {
        self.init == InitState::Ready
    }
}

impl IoDevice for Pic8259 {
    fn name(&self) -> &str {
        "pic-8259"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        match offset {
            0 => Ok(if self.read_isr { self.isr } else { self.irr } as u32),
            1 => Ok(self.imr as u32),
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        let v = value as u8;
        match offset {
            0 => {
                if v & 0x10 != 0 {
                    // ICW1
                    self.init = InitState::ExpectIcw2;
                    self.cascade_expected = v & 0x02 == 0;
                    self.icw4_expected = v & 0x01 != 0;
                    self.imr = 0;
                    self.isr = 0;
                    self.irr = 0;
                } else if v & 0x08 != 0 {
                    // OCW3
                    match v & 0x03 {
                        0x02 => self.read_isr = false,
                        0x03 => self.read_isr = true,
                        _ => {}
                    }
                } else {
                    // OCW2
                    let cmd = (v >> 5) & 0x07;
                    match cmd {
                        0x01 => {
                            // non-specific EOI: clear highest in-service
                            for l in 0..8 {
                                if self.isr & (1 << l) != 0 {
                                    self.isr &= !(1 << l);
                                    break;
                                }
                            }
                        }
                        0x03 => {
                            // specific EOI
                            self.isr &= !(1 << (v & 0x07));
                        }
                        _ => {}
                    }
                }
                Ok(())
            }
            1 => {
                match self.init {
                    InitState::ExpectIcw2 => {
                        self.vector_base = v & 0xF8;
                        self.init = if self.cascade_expected {
                            InitState::ExpectIcw3
                        } else if self.icw4_expected {
                            InitState::ExpectIcw4
                        } else {
                            InitState::Ready
                        };
                    }
                    InitState::ExpectIcw3 => {
                        self.init = if self.icw4_expected {
                            InitState::ExpectIcw4
                        } else {
                            InitState::Ready
                        };
                    }
                    InitState::ExpectIcw4 => {
                        self.init = InitState::Ready;
                    }
                    InitState::Ready => self.imr = v,
                }
                Ok(())
            }
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        w.u8(self.imr);
        w.u8(self.irr);
        w.u8(self.isr);
        w.u8(self.vector_base);
        w.u8(match self.init {
            InitState::Ready => 0,
            InitState::ExpectIcw2 => 1,
            InitState::ExpectIcw3 => 2,
            InitState::ExpectIcw4 => 3,
        });
        w.bool(self.cascade_expected);
        w.bool(self.icw4_expected);
        w.bool(self.read_isr);
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        self.imr = r.u8();
        self.irr = r.u8();
        self.isr = r.u8();
        self.vector_base = r.u8();
        self.init = match r.u8() {
            0 => InitState::Ready,
            1 => InitState::ExpectIcw2,
            2 => InitState::ExpectIcw3,
            _ => InitState::ExpectIcw4,
        };
        self.cascade_expected = r.bool();
        self.icw4_expected = r.bool();
        self.read_isr = r.bool();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{IoBus, IoSpace};

    const BASE: u16 = 0x20;

    fn init_pic(io: &mut IoSpace) {
        io.outb(BASE, 0x11).unwrap(); // ICW1: cascade, ICW4 needed
        io.outb(BASE + 1, 0x20).unwrap(); // ICW2: vector base 0x20
        io.outb(BASE + 1, 0x04).unwrap(); // ICW3
        io.outb(BASE + 1, 0x01).unwrap(); // ICW4: 8086 mode
    }

    fn machine() -> (IoSpace, crate::bus::DeviceId) {
        let mut io = IoSpace::new();
        let id = io.map(BASE, 2, Box::new(Pic8259::new())).unwrap();
        (io, id)
    }

    #[test]
    fn init_sequence_programs_vector_base() {
        let (mut io, id) = machine();
        init_pic(&mut io);
        let pic = io.device::<Pic8259>(id).unwrap();
        assert!(pic.is_initialized());
        assert_eq!(pic.vector_base(), 0x20);
    }

    #[test]
    fn mask_writes_after_init_are_ocw1() {
        let (mut io, id) = machine();
        init_pic(&mut io);
        io.outb(BASE + 1, 0xFB).unwrap(); // unmask IRQ2 only
        assert_eq!(io.device::<Pic8259>(id).unwrap().mask(), 0xFB);
        assert_eq!(io.inb(BASE + 1).unwrap(), 0xFB);
    }

    #[test]
    fn irq_flow_raise_ack_eoi() {
        let (mut io, id) = machine();
        init_pic(&mut io);
        io.outb(BASE + 1, 0x00).unwrap(); // unmask all
        io.device_mut::<Pic8259>(id).unwrap().raise_irq(3);
        assert_eq!(io.device::<Pic8259>(id).unwrap().pending(), Some(3));
        let vector = io.device_mut::<Pic8259>(id).unwrap().ack().unwrap();
        assert_eq!(vector, 0x23);
        // In-service readable through OCW3.
        io.outb(BASE, 0x0B).unwrap();
        assert_eq!(io.inb(BASE).unwrap(), 1 << 3);
        // Non-specific EOI clears it.
        io.outb(BASE, 0x20).unwrap();
        io.outb(BASE, 0x0B).unwrap();
        assert_eq!(io.inb(BASE).unwrap(), 0);
    }

    #[test]
    fn masked_irq_not_pending() {
        let (mut io, id) = machine();
        init_pic(&mut io);
        io.outb(BASE + 1, 0xFF).unwrap();
        io.device_mut::<Pic8259>(id).unwrap().raise_irq(5);
        assert_eq!(io.device::<Pic8259>(id).unwrap().pending(), None);
        io.outb(BASE + 1, !(1 << 5)).unwrap();
        assert_eq!(io.device::<Pic8259>(id).unwrap().pending(), Some(5));
    }

    #[test]
    fn priority_order_lowest_line_first() {
        let (mut io, id) = machine();
        init_pic(&mut io);
        io.outb(BASE + 1, 0x00).unwrap();
        let pic = io.device_mut::<Pic8259>(id).unwrap();
        pic.raise_irq(6);
        pic.raise_irq(1);
        assert_eq!(pic.ack().unwrap(), 0x21);
        assert_eq!(pic.ack().unwrap(), 0x26);
    }

    #[test]
    fn specific_eoi_clears_named_level() {
        let (mut io, id) = machine();
        init_pic(&mut io);
        io.outb(BASE + 1, 0x00).unwrap();
        {
            let pic = io.device_mut::<Pic8259>(id).unwrap();
            pic.raise_irq(2);
            pic.raise_irq(4);
            pic.ack();
            pic.ack();
        }
        io.outb(BASE, 0x60 | 4).unwrap(); // specific EOI for 4
        io.outb(BASE, 0x0B).unwrap();
        assert_eq!(io.inb(BASE).unwrap(), 1 << 2);
    }

    #[test]
    fn irr_readable_via_ocw3() {
        let (mut io, id) = machine();
        init_pic(&mut io);
        io.device_mut::<Pic8259>(id).unwrap().raise_irq(7);
        io.outb(BASE, 0x0A).unwrap(); // read IRR
        assert_eq!(io.inb(BASE).unwrap(), 1 << 7);
    }
}
