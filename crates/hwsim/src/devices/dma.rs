//! Intel 8237 ISA DMA controller (channels 0–3).
//!
//! Register block (16 ports at `base`, classically `0x00`):
//!
//! * even offsets 0,2,4,6 — channel base/current address (16-bit via the
//!   byte flip-flop);
//! * odd offsets 1,3,5,7 — channel base/current word count;
//! * 8 — status (read) / command (write);
//! * 9 — request register;
//! * 10 — single-channel mask;
//! * 11 — mode register;
//! * 12 — clear byte flip-flop;
//! * 13 — master clear (read: temporary register);
//! * 14 — clear mask register;
//! * 15 — write-all-mask.
//!
//! The model tracks programming state; "transfers" complete instantly when a
//! channel is unmasked with a valid mode, setting the terminal-count bit in
//! the status register — enough for the DMA setup sequences drivers perform.

use crate::bus::{AccessSize, DeviceFault, IoDevice};
use crate::snap::{StateReader, StateWriter};
use std::any::Any;

/// 8237 DMA controller model.
#[derive(Debug, Clone)]
pub struct Dma8237 {
    address: [u16; 4],
    count: [u16; 4],
    mode: [u8; 4],
    mask: u8,
    status: u8,
    command: u8,
    request: u8,
    flipflop: bool,
    temp: u8,
}

impl Default for Dma8237 {
    fn default() -> Self {
        Self::new()
    }
}

impl Dma8237 {
    /// Power-on state: all channels masked, flip-flop cleared.
    pub fn new() -> Self {
        Dma8237 {
            address: [0; 4],
            count: [0; 4],
            mode: [0; 4],
            mask: 0x0F,
            status: 0,
            command: 0,
            request: 0,
            flipflop: false,
            temp: 0,
        }
    }

    /// Programmed start address for `channel`.
    pub fn channel_address(&self, channel: usize) -> u16 {
        self.address[channel]
    }

    /// Programmed transfer count for `channel`.
    pub fn channel_count(&self, channel: usize) -> u16 {
        self.count[channel]
    }

    /// Programmed mode byte for `channel`.
    pub fn channel_mode(&self, channel: usize) -> u8 {
        self.mode[channel]
    }

    /// Whether `channel` is masked off.
    pub fn is_masked(&self, channel: usize) -> bool {
        self.mask & (1 << channel) != 0
    }

    fn write_16(&mut self, slot: &mut u16, value: u8) {
        if self.flipflop {
            *slot = (*slot & 0x00FF) | ((value as u16) << 8);
        } else {
            *slot = (*slot & 0xFF00) | value as u16;
        }
        self.flipflop = !self.flipflop;
    }

    fn read_16(&mut self, slot: u16) -> u8 {
        let v = if self.flipflop { (slot >> 8) as u8 } else { (slot & 0xFF) as u8 };
        self.flipflop = !self.flipflop;
        v
    }

    fn maybe_complete(&mut self, channel: usize) {
        // Unmasked channel with a programmed mode "transfers" and reaches
        // terminal count immediately in this model.
        if self.mask & (1 << channel) == 0 && self.mode[channel] & 0xC0 != 0xC0 {
            self.status |= 1 << channel;
        }
    }
}

impl IoDevice for Dma8237 {
    fn name(&self) -> &str {
        "dma-8237"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        let v = match offset {
            0 | 2 | 4 | 6 => {
                let ch = (offset / 2) as usize;
                let slot = self.address[ch];
                self.read_16(slot)
            }
            1 | 3 | 5 | 7 => {
                let ch = (offset / 2) as usize;
                let slot = self.count[ch];
                self.read_16(slot)
            }
            8 => {
                let st = self.status;
                self.status &= 0xF0; // reading clears TC bits
                st
            }
            13 => self.temp,
            _ => 0,
        };
        Ok(v as u32)
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        if size != AccessSize::Byte {
            return Err(DeviceFault::Width { offset, size });
        }
        let v = value as u8;
        match offset {
            0 | 2 | 4 | 6 => {
                let ch = (offset / 2) as usize;
                let mut slot = self.address[ch];
                self.write_16(&mut slot, v);
                self.address[ch] = slot;
            }
            1 | 3 | 5 | 7 => {
                let ch = (offset / 2) as usize;
                let mut slot = self.count[ch];
                self.write_16(&mut slot, v);
                self.count[ch] = slot;
            }
            8 => self.command = v,
            9 => self.request = v & 0x07,
            10 => {
                let ch = (v & 0x03) as usize;
                if v & 0x04 != 0 {
                    self.mask |= 1 << ch;
                } else {
                    self.mask &= !(1 << ch);
                    self.maybe_complete(ch);
                }
            }
            11 => {
                let ch = (v & 0x03) as usize;
                self.mode[ch] = v;
            }
            12 => self.flipflop = false,
            13 => *self = Dma8237::new(), // master clear
            14 => self.mask = 0,
            15 => self.mask = v & 0x0F,
            _ => {}
        }
        Ok(())
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        for ch in 0..4 {
            w.u16(self.address[ch]);
            w.u16(self.count[ch]);
            w.u8(self.mode[ch]);
        }
        w.u8(self.mask);
        w.u8(self.status);
        w.u8(self.command);
        w.u8(self.request);
        w.bool(self.flipflop);
        w.u8(self.temp);
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        for ch in 0..4 {
            self.address[ch] = r.u16();
            self.count[ch] = r.u16();
            self.mode[ch] = r.u8();
        }
        self.mask = r.u8();
        self.status = r.u8();
        self.command = r.u8();
        self.request = r.u8();
        self.flipflop = r.bool();
        self.temp = r.u8();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{IoBus, IoSpace};

    const BASE: u16 = 0x00;

    fn machine() -> (IoSpace, crate::bus::DeviceId) {
        let mut io = IoSpace::new();
        let id = io.map(BASE, 16, Box::new(Dma8237::new())).unwrap();
        (io, id)
    }

    #[test]
    fn address_programs_via_flipflop() {
        let (mut io, id) = machine();
        io.outb(BASE + 12, 0).unwrap(); // clear flip-flop
        io.outb(BASE + 4, 0x34).unwrap(); // channel 2 addr low
        io.outb(BASE + 4, 0x12).unwrap(); // channel 2 addr high
        assert_eq!(io.device::<Dma8237>(id).unwrap().channel_address(2), 0x1234);
    }

    #[test]
    fn count_programs_via_flipflop() {
        let (mut io, id) = machine();
        io.outb(BASE + 12, 0).unwrap();
        io.outb(BASE + 5, 0xFF).unwrap();
        io.outb(BASE + 5, 0x01).unwrap();
        assert_eq!(io.device::<Dma8237>(id).unwrap().channel_count(2), 0x01FF);
    }

    #[test]
    fn flipflop_desync_scrambles_value() {
        let (mut io, id) = machine();
        io.outb(BASE + 12, 0).unwrap();
        io.outb(BASE, 0xAA).unwrap(); // low byte of ch 0 — flip-flop now high
        // Driver "forgets" to write the high byte, then programs ch 1:
        io.outb(BASE + 2, 0x55).unwrap(); // lands in ch1 HIGH byte!
        assert_eq!(io.device::<Dma8237>(id).unwrap().channel_address(1), 0x5500);
    }

    #[test]
    fn mask_and_unmask_single_channel() {
        let (mut io, id) = machine();
        assert!(io.device::<Dma8237>(id).unwrap().is_masked(1));
        io.outb(BASE + 11, 0x45).unwrap(); // mode: single, write, ch 1
        io.outb(BASE + 10, 0x01).unwrap(); // unmask ch 1
        assert!(!io.device::<Dma8237>(id).unwrap().is_masked(1));
        // Terminal count shows in status.
        assert_ne!(io.inb(BASE + 8).unwrap() & 0x02, 0);
        // And reading cleared it.
        assert_eq!(io.inb(BASE + 8).unwrap() & 0x02, 0);
    }

    #[test]
    fn master_clear_resets_everything() {
        let (mut io, id) = machine();
        io.outb(BASE + 11, 0x44).unwrap();
        io.outb(BASE + 10, 0x00).unwrap();
        io.outb(BASE + 13, 0).unwrap(); // master clear
        let d = io.device::<Dma8237>(id).unwrap();
        assert!(d.is_masked(0));
        assert_eq!(d.channel_mode(0), 0);
    }

    #[test]
    fn clear_flipflop_resynchronizes() {
        let (mut io, id) = machine();
        io.outb(BASE, 0x11).unwrap(); // ff -> high
        io.outb(BASE + 12, 0).unwrap(); // resync
        io.outb(BASE, 0x22).unwrap(); // low byte again
        io.outb(BASE, 0x33).unwrap();
        assert_eq!(io.device::<Dma8237>(id).unwrap().channel_address(0), 0x3322);
    }

    #[test]
    fn write_all_mask_register() {
        let (mut io, id) = machine();
        io.outb(BASE + 15, 0x05).unwrap();
        let d = io.device::<Dma8237>(id).unwrap();
        assert!(d.is_masked(0));
        assert!(!d.is_masked(1));
        assert!(d.is_masked(2));
        assert!(!d.is_masked(3));
    }
}
