//! Behavioural models of the peripherals used in the paper's evaluation.
//!
//! | Model | Paper role |
//! |---|---|
//! | [`Busmouse`] | Logitech busmouse — the running example (Figure 3) |
//! | [`IdeController`] / [`IdeDisk`] | Intel PIIX4-style IDE channel — the Table 3/4 experiments |
//! | [`Ne2000`] | NE2000 (ns8390) Ethernet controller — Table 2 spec |
//! | [`PciConfigSpace`] / [`BusMasterIde`] | Intel 82371FB PCI bus-master IDE function — Table 2 spec |
//! | [`Permedia2`] | Permedia 2 graphics FIFO — Table 2 spec |
//! | [`Dma8237`] | ISA DMA controller substrate |
//! | [`Pic8259`] | ISA interrupt controller substrate |

mod busmouse;
mod dma;
mod ide;
mod ne2000;
mod pci;
mod permedia2;
mod pic;

pub use busmouse::Busmouse;
pub use dma::Dma8237;
pub use ide::{IdeController, IdeDisk, IdeGeometry, SECTOR_SIZE};
pub use ne2000::Ne2000;
pub use pci::{BusMasterIde, PciConfigSpace, PciFunction};
pub use permedia2::Permedia2;
pub use pic::Pic8259;
