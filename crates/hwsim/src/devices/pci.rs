//! PCI configuration mechanism #1 and the Intel 82371FB (PIIX) bus-master
//! IDE function.
//!
//! Two models live here:
//!
//! * [`PciConfigSpace`] — the `0xCF8`/`0xCFC` configuration address/data
//!   pair, routing dword accesses into per-function 256-byte configuration
//!   headers ([`PciFunction`]).
//! * [`BusMasterIde`] — the I/O block the 82371FB exposes through BAR4: the
//!   primary/secondary bus-master command, status and descriptor-pointer
//!   registers that the paper's 27-line PCI Devil specification describes.

use crate::bus::{AccessSize, DeviceFault, IoDevice};
use crate::snap::{StateReader, StateWriter};
use std::any::Any;

/// A single PCI function's 256-byte configuration header.
#[derive(Debug, Clone)]
pub struct PciFunction {
    /// Bus number this function answers on.
    pub bus: u8,
    /// Device number (0..32).
    pub device: u8,
    /// Function number (0..8).
    pub function: u8,
    config: [u8; 256],
}

impl PciFunction {
    /// Create a function with vendor/device ids and class code filled in.
    pub fn new(bus: u8, device: u8, function: u8, vendor: u16, dev_id: u16, class: u32) -> Self {
        let mut config = [0u8; 256];
        config[0] = (vendor & 0xFF) as u8;
        config[1] = (vendor >> 8) as u8;
        config[2] = (dev_id & 0xFF) as u8;
        config[3] = (dev_id >> 8) as u8;
        // class code occupies bytes 9..12 (prog-if, subclass, base class).
        config[9] = (class & 0xFF) as u8;
        config[10] = ((class >> 8) & 0xFF) as u8;
        config[11] = ((class >> 16) & 0xFF) as u8;
        PciFunction { bus, device, function, config }
    }

    /// The standard 82371FB IDE function (vendor 8086, device 7010,
    /// class 0101 prog-if 80) at bus 0, device 7, function 1, with BAR4
    /// pointing at `bmiba`.
    pub fn piix_ide(bmiba: u16) -> Self {
        let mut f = PciFunction::new(0, 7, 1, 0x8086, 0x7010, 0x01_01_80);
        f.write_u32(0x20, (bmiba as u32) | 1); // BAR4, I/O space flag
        f.write_u16(0x04, 0x0005); // command: I/O space + bus master
        f
    }

    /// Read a little-endian u32 at `offset`.
    pub fn read_u32(&self, offset: u8) -> u32 {
        let o = offset as usize & 0xFC;
        u32::from_le_bytes([self.config[o], self.config[o + 1], self.config[o + 2], self.config[o + 3]])
    }

    /// Write a little-endian u32 at `offset`.
    pub fn write_u32(&mut self, offset: u8, value: u32) {
        let o = offset as usize & 0xFC;
        self.config[o..o + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Write a little-endian u16 at `offset`.
    pub fn write_u16(&mut self, offset: u8, value: u16) {
        let o = offset as usize & 0xFE;
        self.config[o..o + 2].copy_from_slice(&value.to_le_bytes());
    }
}

/// The configuration-mechanism-#1 port pair (`0xCF8` address, `0xCFC` data).
///
/// Map this at base `0xCF8` with length 8.
#[derive(Debug, Clone, Default)]
pub struct PciConfigSpace {
    address: u32,
    functions: Vec<PciFunction>,
}

impl PciConfigSpace {
    /// Empty configuration space (all reads float to `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a function.
    pub fn add_function(&mut self, f: PciFunction) {
        self.functions.push(f);
    }

    fn decode(&self) -> Option<(usize, u8)> {
        if self.address & 0x8000_0000 == 0 {
            return None;
        }
        let bus = ((self.address >> 16) & 0xFF) as u8;
        let dev = ((self.address >> 11) & 0x1F) as u8;
        let func = ((self.address >> 8) & 0x07) as u8;
        let reg = (self.address & 0xFC) as u8;
        self.functions
            .iter()
            .position(|f| f.bus == bus && f.device == dev && f.function == func)
            .map(|i| (i, reg))
    }
}

impl IoDevice for PciConfigSpace {
    fn name(&self) -> &str {
        "pci-config"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        match offset {
            0..=3 => {
                if size != AccessSize::Dword || offset != 0 {
                    return Err(DeviceFault::Protocol("CONFIG_ADDRESS requires aligned dword access"));
                }
                Ok(self.address)
            }
            4..=7 => {
                let dword = match self.decode() {
                    Some((i, reg)) => self.functions[i].read_u32(reg),
                    None => 0xFFFF_FFFF,
                };
                let shift = 8 * (offset - 4) as u32;
                Ok((dword >> shift) & size.mask())
            }
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        match offset {
            0..=3 => {
                if size != AccessSize::Dword || offset != 0 {
                    return Err(DeviceFault::Protocol("CONFIG_ADDRESS requires aligned dword access"));
                }
                self.address = value;
                Ok(())
            }
            4..=7 => {
                if let Some((i, reg)) = self.decode() {
                    let old = self.functions[i].read_u32(reg);
                    let shift = 8 * (offset - 4) as u32;
                    let mask = size.mask() << shift;
                    let merged = (old & !mask) | ((value << shift) & mask);
                    self.functions[i].write_u32(reg, merged);
                }
                Ok(())
            }
            _ => Err(DeviceFault::OutOfWindow { offset }),
        }
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        w.u32(self.address);
        // The function set is construction-time topology; only each
        // function's configuration header is mutable.
        for f in &self.functions {
            w.bytes(&f.config);
        }
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        self.address = r.u32();
        for f in &mut self.functions {
            r.fill(&mut f.config);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// How many ticks a started bus-master transfer stays active.
const TRANSFER_TICKS: u64 = 16;

/// The 82371FB bus-master IDE I/O block (16 ports at BAR4).
///
/// | offset | register |
/// |---|---|
/// | 0 | primary command (`bit0` start/stop, `bit3` direction) |
/// | 2 | primary status (`bit0` active, `bit1` DMA error, `bit2` interrupt; bits 5,6 drive-capable latches) |
/// | 4..=7 | primary descriptor table pointer (dword, bits 1:0 fixed 0) |
/// | 8, 10, 12..=15 | same for the secondary channel |
#[derive(Debug, Clone, Default)]
pub struct BusMasterIde {
    channels: [BmChannel; 2],
}

#[derive(Debug, Clone, Copy, Default)]
struct BmChannel {
    command: u8,
    status: u8,
    dtp: u32,
    active_left: u64,
}

impl BusMasterIde {
    /// Create an idle bus-master block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Primary-channel descriptor table pointer, as last programmed.
    pub fn descriptor_pointer(&self, channel: usize) -> u32 {
        self.channels[channel].dtp
    }

    /// Whether a transfer is currently active on `channel`.
    pub fn is_active(&self, channel: usize) -> bool {
        self.channels[channel].status & 0x01 != 0
    }
}

impl IoDevice for BusMasterIde {
    fn name(&self) -> &str {
        "piix-busmaster"
    }

    fn read(&mut self, offset: u16, size: AccessSize) -> Result<u32, DeviceFault> {
        let (ch, reg) = (usize::from(offset >= 8), offset % 8);
        let c = &self.channels[ch];
        match reg {
            0 => Ok(c.command as u32 & 0x09),
            2 => Ok(c.status as u32),
            4..=7 => {
                if size == AccessSize::Dword && reg == 4 {
                    Ok(c.dtp)
                } else {
                    let shift = 8 * (reg - 4) as u32;
                    Ok((c.dtp >> shift) & size.mask())
                }
            }
            _ => Ok(0),
        }
    }

    fn write(&mut self, offset: u16, size: AccessSize, value: u32) -> Result<(), DeviceFault> {
        let (ch, reg) = (usize::from(offset >= 8), offset % 8);
        let c = &mut self.channels[ch];
        match reg {
            0 => {
                let v = value as u8;
                let starting = v & 0x01 != 0 && c.command & 0x01 == 0;
                let stopping = v & 0x01 == 0 && c.command & 0x01 != 0;
                c.command = v & 0x09;
                if starting {
                    if c.dtp == 0 {
                        // Starting with a null descriptor table: DMA error.
                        c.status |= 0x02;
                    } else {
                        c.status |= 0x01; // active
                        c.active_left = TRANSFER_TICKS;
                    }
                } else if stopping {
                    c.status &= !0x01;
                    c.active_left = 0;
                }
                Ok(())
            }
            2 => {
                let v = value as u8;
                // bits 1 and 2 are write-one-to-clear; 5,6 plain latches.
                c.status &= !(v & 0x06);
                c.status = (c.status & !0x60) | (v & 0x60);
                Ok(())
            }
            4..=7 => {
                if size == AccessSize::Dword && reg == 4 {
                    c.dtp = value & !0x3;
                } else {
                    let shift = 8 * (reg - 4) as u32;
                    let mask = size.mask() << shift;
                    c.dtp = ((c.dtp & !mask) | ((value << shift) & mask)) & !0x3;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn tick(&mut self, ticks: u64) {
        for c in &mut self.channels {
            if c.status & 0x01 != 0 && c.active_left > 0 {
                if c.active_left <= ticks {
                    c.active_left = 0;
                    c.status &= !0x01; // transfer done
                    c.status |= 0x04; // interrupt
                } else {
                    c.active_left -= ticks;
                }
            }
        }
    }

    fn save(&self, w: &mut StateWriter<'_>) {
        for c in &self.channels {
            w.u8(c.command);
            w.u8(c.status);
            w.u32(c.dtp);
            w.u64(c.active_left);
        }
    }

    fn load(&mut self, r: &mut StateReader<'_>) {
        for c in &mut self.channels {
            c.command = r.u8();
            c.status = r.u8();
            c.dtp = r.u32();
            c.active_left = r.u64();
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{IoBus, IoSpace};

    fn pci_machine() -> IoSpace {
        let mut io = IoSpace::new();
        let mut cfg = PciConfigSpace::new();
        cfg.add_function(PciFunction::piix_ide(0xF000));
        io.map(0xCF8, 8, Box::new(cfg)).unwrap();
        io.map(0xF000, 16, Box::new(BusMasterIde::new())).unwrap();
        io
    }

    fn cfg_read(io: &mut IoSpace, dev: u8, func: u8, reg: u8) -> u32 {
        let addr = 0x8000_0000 | ((dev as u32) << 11) | ((func as u32) << 8) | reg as u32;
        io.outl(0xCF8, addr).unwrap();
        io.inl(0xCFC).unwrap()
    }

    #[test]
    fn vendor_device_id_readable() {
        let mut io = pci_machine();
        assert_eq!(cfg_read(&mut io, 7, 1, 0), 0x7010_8086);
    }

    #[test]
    fn missing_function_floats() {
        let mut io = pci_machine();
        assert_eq!(cfg_read(&mut io, 3, 0, 0), 0xFFFF_FFFF);
    }

    #[test]
    fn bar4_holds_bmiba() {
        let mut io = pci_machine();
        assert_eq!(cfg_read(&mut io, 7, 1, 0x20), 0xF001);
    }

    #[test]
    fn disabled_enable_bit_floats() {
        let mut io = pci_machine();
        io.outl(0xCF8, (7 << 11) | (1 << 8)).unwrap(); // bit31 clear
        assert_eq!(io.inl(0xCFC).unwrap(), 0xFFFF_FFFF);
    }

    #[test]
    fn config_write_byte_lane_merges() {
        let mut io = pci_machine();
        let addr = 0x8000_0000 | (7 << 11) | (1 << 8) | 0x40;
        io.outl(0xCF8, addr).unwrap();
        io.outl(0xCFC, 0xAABB_CCDD).unwrap();
        io.outl(0xCF8, addr).unwrap();
        io.outb(0xCFC + 1, 0x11).unwrap();
        io.outl(0xCF8, addr).unwrap();
        assert_eq!(io.inl(0xCFC).unwrap(), 0xAABB_11DD);
    }

    #[test]
    fn busmaster_start_completes_after_ticks() {
        let mut io = pci_machine();
        io.outl(0xF004, 0x0010_0000).unwrap(); // descriptor pointer
        io.outb(0xF000, 0x09).unwrap(); // start, read direction
        assert_eq!(io.inb(0xF002).unwrap() & 0x01, 1, "active right after start");
        // Poll until done; each poll ticks the bus.
        let mut st = 0;
        for _ in 0..64 {
            st = io.inb(0xF002).unwrap();
            if st & 0x01 == 0 {
                break;
            }
        }
        assert_eq!(st & 0x01, 0, "transfer should complete");
        assert_ne!(st & 0x04, 0, "interrupt bit raised");
        // Write-one-to-clear the interrupt.
        io.outb(0xF002, 0x04).unwrap();
        assert_eq!(io.inb(0xF002).unwrap() & 0x04, 0);
    }

    #[test]
    fn busmaster_null_descriptor_errors() {
        let mut io = pci_machine();
        io.outb(0xF000, 0x01).unwrap();
        assert_ne!(io.inb(0xF002).unwrap() & 0x02, 0, "DMA error latched");
    }

    #[test]
    fn descriptor_pointer_low_bits_forced_zero() {
        let mut io = pci_machine();
        io.outl(0xF004, 0x1234_5677).unwrap();
        assert_eq!(io.inl(0xF004).unwrap(), 0x1234_5674);
    }

    #[test]
    fn secondary_channel_is_independent() {
        let mut io = pci_machine();
        io.outl(0xF00C, 0x8000).unwrap();
        io.outb(0xF008, 0x01).unwrap();
        assert_eq!(io.inb(0xF002).unwrap() & 0x01, 0, "primary untouched");
        assert_eq!(io.inb(0xF00A).unwrap() & 0x01, 1);
    }
}
