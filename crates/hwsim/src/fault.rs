//! Deterministic hardware fault injection: flaky status bits, dropped
//! interrupt edges, bus noise and device-absent windows — replayable to
//! the bit.
//!
//! # Why
//!
//! The paper's claim is that Devil-generated checks catch *driver*
//! errors. A robust harness must also show the outcome taxonomy does not
//! misattribute *hardware* misbehaviour as driver bugs: a status bit that
//! reads back stuck, an interrupt edge that never arrives, a data line
//! glitching under bus noise, a card that briefly drops off the bus. This
//! module injects exactly those faults into an
//! [`IoSpace`](crate::IoSpace) — between the device models and the driver
//! — so the *clean* drivers can be run on *flaky* hardware and the
//! resulting outcome distribution inspected: a hardware-only fault must
//! never classify as a compile- or run-time *check* (those are the
//! driver-bug detections), only as the machine-level outcomes a real
//! flaky PC would show (halted probe, hung poll loop, damaged data, or a
//! clean run when the fault fell somewhere harmless).
//!
//! # Determinism
//!
//! A [`FaultPlan`] is a pure value: a seed plus a list of [`FaultRule`]s.
//! Fault decisions are drawn from one [`XorShift64`] stream seeded from
//! the plan, advanced only at port accesses that a rule covers — so the
//! fault sequence is a deterministic function of `(plan, access
//! sequence)` and a campaign run replays bit-identically across rebuilds,
//! snapshot restores and both execution engines. The interposer's entire
//! mutable state (the PRNG word and the injection counter) is captured by
//! [`IoSpace::snapshot`](crate::IoSpace::snapshot) and rewound by
//! [`IoSpace::restore`](crate::IoSpace::restore), so the per-mutant reset
//! lifecycle replays the same faults at the same access positions for
//! every mutant.
//!
//! # Composition with the bus
//!
//! The interposer sits at dispatch time, *after* routing and *before*
//! the CPU sees a value:
//!
//! * read values are filtered on the way back (stuck/flipped bits), and
//!   the wire trace records the value the CPU actually saw;
//! * writes are recorded in the trace as issued (the CPU did issue them)
//!   and then possibly dropped or bit-flipped before reaching the model;
//! * during an [`FaultKind::Absent`] clock window a covered port behaves
//!   exactly like unmapped ISA space — reads float to all-ones, writes
//!   vanish, the device model is neither called nor ticked;
//! * device *models* are never mutated by a fault: ground-truth
//!   inspection (`Scenario::inspect`) still sees what the hardware truly
//!   holds, which is what lets a harness distinguish "driver decoded it
//!   wrong" from "the wire lied".
//!
//! While an interposer is installed, the `read_block`/`write_block` bulk
//! fast path is declined and every element takes the single-access path,
//! so faults are sampled per access identically on both engines (the
//! bulk contract already guarantees observational equivalence).
//!
//! # Example
//!
//! ```
//! use devil_hwsim::fault::FaultPlan;
//! use devil_hwsim::bus::ScratchRegisters;
//! use devil_hwsim::{IoBus, IoSpace};
//!
//! let mut io = IoSpace::new();
//! io.map(0x100, 4, Box::new(ScratchRegisters::new(4))).unwrap();
//! io.install_faults(FaultPlan::named("bus-noise", 0xD11A).unwrap());
//! let snap = io.snapshot(); // captures the fault cursor too
//! let a: Vec<u8> = (0..32).map(|_| io.inb(0x100).unwrap()).collect();
//! io.restore(&snap).unwrap();
//! let b: Vec<u8> = (0..32).map(|_| io.inb(0x100).unwrap()).collect();
//! assert_eq!(a, b, "restored fault stream replays bit-identically");
//! ```

use devil_rng::XorShift64;

/// Seed used by the harness-wide *default* fault plans (golden files, the
/// `+faults` scenario variants, the CLI defaults).
pub const DEFAULT_FAULT_SEED: u64 = 0xD11A;

/// What one [`FaultRule`] does to a covered access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// OR the mask into read values: status bits that occasionally read
    /// back stuck high (a busy flag that never clears, a spurious
    /// interrupt-pending edge).
    StuckHigh(u32),
    /// Clear the mask bits in read values: status bits stuck low (a
    /// ready flag the driver never sees, a dropped interrupt edge).
    StuckLow(u32),
    /// XOR one randomly chosen set bit of the mask into a read value:
    /// transient bus noise on the data lines.
    FlipRead(u32),
    /// XOR one randomly chosen set bit of the mask into a written value
    /// before it reaches the device model.
    FlipWrite(u32),
    /// The write never reaches the device — a lost command or
    /// acknowledge edge. The wire trace still records it (the CPU did
    /// issue it).
    DropWrite,
    /// The device is absent from the bus for the clock window
    /// `from..until`: covered reads float to all-ones, covered writes
    /// vanish, the model is neither called nor ticked. `rate` is ignored
    /// (the window alone decides).
    Absent {
        /// First bus clock of the window.
        from: u64,
        /// First bus clock past the window.
        until: u64,
    },
}

impl FaultKind {
    /// Whether this kind perturbs port reads.
    fn affects_reads(self) -> bool {
        matches!(
            self,
            FaultKind::StuckHigh(_) | FaultKind::StuckLow(_) | FaultKind::FlipRead(_)
        )
    }

    /// Whether this kind perturbs port writes.
    fn affects_writes(self) -> bool {
        matches!(self, FaultKind::FlipWrite(_) | FaultKind::DropWrite)
    }
}

/// One fault source: a port window, a [`FaultKind`] and a firing rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// First covered port.
    pub base: u16,
    /// Window length in ports (`0x1_0000` covers the whole space).
    pub len: u32,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// The rule fires on `1 in rate` covered accesses (0 = never,
    /// 1 = every access). Ignored by [`FaultKind::Absent`].
    pub rate: u32,
}

impl FaultRule {
    /// A rule covering the entire 64 K port space.
    pub fn everywhere(kind: FaultKind, rate: u32) -> Self {
        FaultRule { base: 0, len: 0x1_0000, kind, rate }
    }

    /// Whether `port` falls inside this rule's window.
    #[inline]
    fn covers(&self, port: u16) -> bool {
        (port as u32).wrapping_sub(self.base as u32) < self.len
    }
}

/// A complete, replayable fault schedule: a name, a seed and the rules.
///
/// Plans are pure values — two machines given equal plans inject
/// identical fault sequences for identical access sequences. The bundled
/// named plans ([`FaultPlan::named`], [`FaultPlan::plan_names`]) are what
/// the `+faults` scenario variants, the campaign CLI and the golden
/// attribution files use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    name: String,
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan from explicit rules.
    pub fn new(name: impl Into<String>, seed: u64, rules: Vec<FaultRule>) -> Self {
        FaultPlan { name: name.into(), seed, rules }
    }

    /// A plan with no rules: installs an interposer that perturbs
    /// nothing. Useful for pinning that the interposer machinery itself
    /// is observationally free.
    pub fn none(seed: u64) -> Self {
        FaultPlan::new("none", seed, Vec::new())
    }

    /// Construct one of the bundled named plans (see
    /// [`FaultPlan::plan_names`]), or `None` for an unknown name.
    ///
    /// The bundled plans cover the whole port space with low per-access
    /// rates — "the machine is flaky", not "this register is broken" —
    /// which is exactly the generic-hardware-misbehaviour question the
    /// attribution experiment asks.
    pub fn named(name: &str, seed: u64) -> Option<FaultPlan> {
        let rules = match name {
            "none" => Vec::new(),
            // Status bits that occasionally read back wrong: the top bit
            // (BSY-style) stuck high, a ready/IRQ-style bit stuck low.
            "flaky-status" => vec![
                FaultRule::everywhere(FaultKind::StuckHigh(0x80), 48),
                FaultRule::everywhere(FaultKind::StuckLow(0x40), 48),
            ],
            // Interrupt edges that never arrive: pending/ready bits read
            // back clear, and an occasional command/ack write is lost.
            "dropped-irq" => vec![
                FaultRule::everywhere(FaultKind::StuckLow(0x88), 40),
                FaultRule::everywhere(FaultKind::DropWrite, 96),
            ],
            // Transient single-bit noise on the data lines, both ways.
            "bus-noise" => vec![
                FaultRule::everywhere(FaultKind::FlipRead(0xFF), 56),
                FaultRule::everywhere(FaultKind::FlipWrite(0xFF), 56),
            ],
            // The card drops off the bus for a while mid-workload.
            "absent-window" => vec![FaultRule::everywhere(
                FaultKind::Absent { from: 1500, until: 2100 },
                0,
            )],
            // The realistic flaky machine: everything above at gentler
            // rates. This is the default plan of the `+faults` scenario
            // variants.
            "mixed" => vec![
                FaultRule::everywhere(FaultKind::StuckHigh(0x80), 160),
                FaultRule::everywhere(FaultKind::StuckLow(0x40), 160),
                FaultRule::everywhere(FaultKind::FlipRead(0xFF), 224),
                FaultRule::everywhere(FaultKind::FlipWrite(0xFF), 224),
                FaultRule::everywhere(FaultKind::DropWrite, 256),
            ],
            _ => return None,
        };
        Some(FaultPlan::new(name, seed, rules))
    }

    /// The bundled plan names accepted by [`FaultPlan::named`], in
    /// display order.
    pub fn plan_names() -> &'static [&'static str] {
        &["none", "flaky-status", "dropped-irq", "bus-noise", "absent-window", "mixed"]
    }

    /// The plan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The PRNG seed fault decisions are drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Same schedule, different seed — the per-seed axis of an
    /// attribution campaign.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The interposer an [`IoSpace`](crate::IoSpace) installs between its
/// routing table and the CPU-visible values (see the [module docs](self)
/// for the exact composition). Mutable state is two words — the PRNG
/// cursor and the injection counter — both snapshot/restored by the
/// machine.
#[derive(Debug, Clone)]
pub struct FaultInterposer {
    plan: FaultPlan,
    rng: XorShift64,
    injected: u64,
}

/// The interposer's mutable state at a point in time, as captured inside
/// a [`Snapshot`](crate::Snapshot). Restoring it rewinds the fault
/// stream to that point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCursor {
    pub(crate) rng: u64,
    pub(crate) injected: u64,
}

impl FaultInterposer {
    /// Install-time construction: the PRNG starts at the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = XorShift64::new(plan.seed());
        FaultInterposer { plan, rng, injected: 0 }
    }

    /// The plan this interposer executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of fault events injected so far (stuck/flipped reads,
    /// dropped or flipped writes, absent-window accesses).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Capture the mutable state for a machine snapshot.
    pub(crate) fn cursor(&self) -> FaultCursor {
        FaultCursor { rng: self.rng.state(), injected: self.injected }
    }

    /// Rewind the mutable state from a machine snapshot.
    pub(crate) fn restore_cursor(&mut self, cursor: &FaultCursor) {
        self.rng = XorShift64::from_state(cursor.rng);
        self.injected = cursor.injected;
    }

    /// Whether a covered device is absent from the bus at `clock`.
    /// Draws nothing from the PRNG — the window alone decides, so the
    /// check is free and order-independent.
    #[inline]
    pub(crate) fn absent(&mut self, port: u16, clock: u64) -> bool {
        for rule in &self.plan.rules {
            if let FaultKind::Absent { from, until } = rule.kind {
                if rule.covers(port) && (from..until).contains(&clock) {
                    self.injected += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Filter a read value on its way back to the CPU. Exactly one PRNG
    /// step per read-affecting rule covering `port` (plus one per flip
    /// that fires, to choose the bit), so the stream position is a pure
    /// function of the access sequence.
    #[inline]
    pub(crate) fn filter_read(&mut self, port: u16, mut value: u32) -> u32 {
        for rule in &self.plan.rules {
            if !rule.kind.affects_reads() || !rule.covers(port) {
                continue;
            }
            if !self.rng.one_in(rule.rate) {
                continue;
            }
            self.injected += 1;
            value = match rule.kind {
                FaultKind::StuckHigh(mask) => value | mask,
                FaultKind::StuckLow(mask) => value & !mask,
                FaultKind::FlipRead(mask) => value ^ pick_bit(&mut self.rng, mask),
                _ => unreachable!("read filter sees only read kinds"),
            };
        }
        value
    }

    /// Filter a written value on its way to the device; `None` means the
    /// write was dropped. Same PRNG discipline as
    /// [`FaultInterposer::filter_read`].
    #[inline]
    pub(crate) fn filter_write(&mut self, port: u16, mut value: u32) -> Option<u32> {
        for rule in &self.plan.rules {
            if !rule.kind.affects_writes() || !rule.covers(port) {
                continue;
            }
            if !self.rng.one_in(rule.rate) {
                continue;
            }
            self.injected += 1;
            match rule.kind {
                FaultKind::DropWrite => return None,
                FaultKind::FlipWrite(mask) => value ^= pick_bit(&mut self.rng, mask),
                _ => unreachable!("write filter sees only write kinds"),
            }
        }
        Some(value)
    }
}

/// One randomly chosen set bit of `mask` (0 when the mask is empty).
#[inline]
fn pick_bit(rng: &mut XorShift64, mask: u32) -> u32 {
    let n = mask.count_ones();
    if n == 0 {
        return 0;
    }
    let mut pick = rng.below(n as u64) as u32;
    let mut m = mask;
    loop {
        let bit = m & m.wrapping_neg();
        if pick == 0 {
            return bit;
        }
        m &= !bit;
        pick -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::ScratchRegisters;
    use crate::{IoBus, IoSpace};

    fn noisy_machine(plan: &str) -> IoSpace {
        let mut io = IoSpace::new();
        io.map(0x100, 8, Box::new(ScratchRegisters::new(8))).unwrap();
        io.install_faults(FaultPlan::named(plan, 7).unwrap());
        io
    }

    #[test]
    fn every_named_plan_builds_and_none_is_empty() {
        for name in FaultPlan::plan_names() {
            let plan = FaultPlan::named(name, 1).unwrap();
            assert_eq!(plan.name(), *name);
        }
        assert!(FaultPlan::named("none", 1).unwrap().rules().is_empty());
        assert!(FaultPlan::named("no-such-plan", 1).is_none());
    }

    #[test]
    fn rule_window_coverage() {
        let r = FaultRule { base: 0x1F0, len: 8, kind: FaultKind::DropWrite, rate: 1 };
        assert!(r.covers(0x1F0));
        assert!(r.covers(0x1F7));
        assert!(!r.covers(0x1F8));
        assert!(!r.covers(0x1EF));
        assert!(FaultRule::everywhere(FaultKind::DropWrite, 1).covers(0xFFFF));
    }

    #[test]
    fn pick_bit_returns_a_set_bit() {
        let mut rng = XorShift64::new(3);
        for _ in 0..200 {
            let bit = pick_bit(&mut rng, 0b1010_0110);
            assert_eq!(bit.count_ones(), 1);
            assert_ne!(bit & 0b1010_0110, 0);
        }
        assert_eq!(pick_bit(&mut rng, 0), 0);
    }

    #[test]
    fn same_plan_same_fault_stream() {
        let run = || {
            let mut io = noisy_machine("mixed");
            let mut seen = Vec::new();
            for i in 0..2000u32 {
                io.outb(0x100 + (i % 8) as u16, i as u8).unwrap();
                seen.push(io.inb(0x100 + (i % 8) as u16).unwrap());
            }
            (seen, io.fault_injected().unwrap())
        };
        let (a, ia) = run();
        let (b, ib) = run();
        assert_eq!(a, b);
        assert_eq!(ia, ib);
        assert!(ia > 0, "the mixed plan injects something over 4000 accesses");
    }

    #[test]
    fn different_seeds_inject_differently() {
        let run = |seed| {
            let mut io = IoSpace::new();
            io.map(0x100, 8, Box::new(ScratchRegisters::new(8))).unwrap();
            io.install_faults(FaultPlan::named("bus-noise", seed).unwrap());
            (0..512u32).map(|_| io.inb(0x100).unwrap()).collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn mid_plan_snapshot_restore_replays_the_tail_exactly() {
        let mut io = noisy_machine("mixed");
        // Burn into the plan: 40 mixed accesses.
        for i in 0..40u32 {
            io.outb(0x100 + (i % 8) as u16, i as u8).unwrap();
        }
        let snap = io.snapshot();
        let tail = |io: &mut IoSpace| -> Vec<u8> {
            (0..200u32)
                .map(|i| {
                    io.outb(0x104, i as u8).unwrap();
                    io.inb(0x100 + (i % 8) as u16).unwrap()
                })
                .collect()
        };
        let first = tail(&mut io);
        let end = io.snapshot();
        io.restore(&snap).unwrap();
        let second = tail(&mut io);
        assert_eq!(first, second, "restored mid-plan cursor replays the same faults");
        assert_eq!(io.snapshot(), end, "machine ends bit-identical to the first pass");
    }

    #[test]
    fn absent_window_floats_and_recovers() {
        let mut io = IoSpace::new();
        io.map(0x100, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        io.outb(0x100, 0x5A).unwrap();
        io.install_faults(FaultPlan::new(
            "gap",
            1,
            vec![FaultRule::everywhere(FaultKind::Absent { from: 3, until: 6 }, 0)],
        ));
        // clock is 1 after the write above; reads at clocks 2..=8.
        let seen: Vec<u8> = (0..7).map(|_| io.inb(0x100).unwrap()).collect();
        assert_eq!(seen, [0x5A, 0xFF, 0xFF, 0xFF, 0x5A, 0x5A, 0x5A]);
        // Writes inside the window vanish; the device keeps its value.
        let mut io = IoSpace::new();
        io.map(0x100, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        io.install_faults(FaultPlan::new(
            "gap",
            1,
            vec![FaultRule::everywhere(FaultKind::Absent { from: 0, until: 2 }, 0)],
        ));
        io.outb(0x100, 0x77).unwrap(); // clock 1: absent, dropped
        io.outb(0x100, 0x33).unwrap(); // clock 2: present again
        assert_eq!(io.inb(0x100).unwrap(), 0x33);
    }

    #[test]
    fn stuck_and_flip_kinds_shape_reads() {
        let mut io = IoSpace::new();
        io.map(0x100, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        io.outb(0x100, 0x0F).unwrap();
        io.install_faults(FaultPlan::new(
            "stuck",
            1,
            vec![
                FaultRule::everywhere(FaultKind::StuckHigh(0x80), 1),
                FaultRule::everywhere(FaultKind::StuckLow(0x01), 1),
            ],
        ));
        assert_eq!(io.inb(0x100).unwrap(), 0x8E, "OR 0x80 then clear 0x01");
        // Device state itself is untouched by read faults.
        io.clear_faults();
        assert_eq!(io.inb(0x100).unwrap(), 0x0F);
    }

    #[test]
    fn dropped_writes_never_reach_the_device_but_hit_the_trace() {
        let mut io = IoSpace::new();
        io.map(0x100, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        io.install_faults(FaultPlan::new(
            "drop",
            1,
            vec![FaultRule::everywhere(FaultKind::DropWrite, 1)],
        ));
        io.enable_trace();
        io.outb(0x100, 0xAA).unwrap();
        assert_eq!(io.inb(0x100).unwrap(), 0, "write was dropped");
        let trace = io.take_trace();
        assert_eq!(trace.len(), 2, "the CPU still issued the write");
        assert_eq!(trace[0].value, 0xAA, "wire log records what was issued");
    }

    #[test]
    fn interposer_presence_mismatch_is_a_restore_error() {
        let mut io = IoSpace::new();
        io.map(0x100, 1, Box::new(ScratchRegisters::new(1))).unwrap();
        let bare = io.snapshot();
        io.install_faults(FaultPlan::none(1));
        assert_eq!(
            io.restore(&bare).unwrap_err(),
            crate::snap::RestoreError::FaultSetChanged { snapshot: false, machine: true }
        );
        let faulted = io.snapshot();
        io.clear_faults();
        assert_eq!(
            io.restore(&faulted).unwrap_err(),
            crate::snap::RestoreError::FaultSetChanged { snapshot: true, machine: false }
        );
    }
}
