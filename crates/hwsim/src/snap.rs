//! Machine snapshots: capture an [`IoSpace`](crate::IoSpace) once, restore
//! it thousands of times.
//!
//! # Why
//!
//! The paper's mutation campaigns evaluate thousands of driver variants
//! against the *same* simulated machine. Rebuilding the machine per mutant
//! pays the 64 K routing-table construction, every device allocation and
//! the filesystem `mkfs` again and again; a [`Snapshot`] amortises all of
//! that to one memcpy-sized `restore` per mutant.
//!
//! # Lifecycle — the contract every scenario must uphold
//!
//! The kernel crate's scenario engine (`devil_kernel::scenario`) runs any
//! workload — IDE boot, mouse event streams, NE2000 packet stress —
//! through this exact sequence, and a `Scenario` implementation must keep
//! to it:
//!
//! 1. **Build once** (`Scenario::build`): map every device, run *all*
//!    host-side setup (`mkfs`, pre-loaded device state, ...). Everything
//!    the workload expects to find on the machine must exist **before**
//!    the snapshot; anything done later is erased by the next restore.
//! 2. Capture the pristine state once with
//!    [`IoSpace::snapshot`](crate::IoSpace::snapshot).
//! 3. Per mutant: [`IoSpace::restore`](crate::IoSpace::restore), drive
//!    the workload (`Scenario::drive`), inspect the quiesced machine
//!    (`Scenario::inspect`), classify. Restore rewinds the clock, the
//!    access counters, the trace, the pending lazy-tick bookkeeping and
//!    every device's internal state; the routing table is *reused*, never
//!    rebuilt — the device set must therefore be unchanged, which
//!    [`RestoreError::DeviceSetChanged`] enforces. A scenario must never
//!    map or unmap devices after `build`, and must not keep host-side
//!    state of its own that a restore cannot rewind (derive everything
//!    observable from the machine or from per-run locals).
//! 4. Mid-drive event injection (mouse motion, injected frames) is fine —
//!    it mutates device state, which the next restore rewinds like any
//!    other traffic. Injections are per-run workload, not setup: they must
//!    be replayed by `drive` on every run, not done once in `build`.
//!
//! Restoring is allocation-free on the success path as long as every
//! dynamic log captured by the snapshot (trace, IDE write log, NE2000
//! transmit log, ...) fits the capacity the live machine already has —
//! trivially true for the campaign pattern above, where the snapshot is
//! taken on a freshly built machine with empty logs.
//!
//! # Bulk transfers between restores
//!
//! Since the block-transfer fast path landed
//! ([`IoSpace::read_block`](crate::IoSpace::read_block) /
//! [`write_block`](crate::IoSpace::write_block)), a device may serve a
//! whole `insw`-style repetition count as **one** call between restores.
//! This is invisible to the snapshot machinery by construction: the
//! bulk-access contract (documented on
//! [`IoDevice::read_block`](crate::bus::IoDevice::read_block)) requires
//! the device to end in exactly the state the equivalent single-access
//! loop would have produced, so `save`/`load` codecs never see a
//! difference and restore equality stays byte-exact whichever path the
//! driver took.
//!
//! # Fault-injection state
//!
//! When a deterministic fault interposer is installed
//! ([`IoSpace::install_faults`](crate::IoSpace::install_faults), see
//! [`crate::fault`]), its mutable state — the PRNG cursor and the
//! injection counter — is part of the machine state this module manages:
//!
//! * [`IoSpace::snapshot`](crate::IoSpace::snapshot) captures the cursor,
//!   and restore rewinds it, so each per-mutant run replays the *same*
//!   fault sequence at the same access positions as a freshly built
//!   machine would. Fault injection therefore composes with the
//!   build-once/restore-per-mutant lifecycle above with no scenario
//!   changes.
//! * The *plan* itself is machine configuration, like the device set: it
//!   is installed before the snapshot and never recorded in it. Restoring
//!   across an install/clear boundary is refused with
//!   [`RestoreError::FaultSetChanged`], mirroring
//!   [`RestoreError::DeviceSetChanged`].
//! * Two snapshots of fault-injected machines compare equal exactly when
//!   the underlying machines (devices, counters, trace **and** fault
//!   cursor) are bit-identical — the cursor participates in snapshot
//!   equality.
//!
//! # Incremental restore (dirty journals)
//!
//! A device whose payload is dominated by one large buffer may keep a
//! *dirty journal* — a record of the regions written since its state last
//! matched a snapshot — and restore only those regions when rewinding to
//! the **same** snapshot again. Every [`StateReader`] carries the identity
//! of the snapshot its payload came from ([`StateReader::snapshot_id`];
//! 0 when unknown): the fast path is only legal when that identity equals
//! the one the journal is relative to, and anything else must fall back to
//! a full reload. The IDE disk's dirty-sector journal is the canonical
//! implementation — it cut the 2 MiB per-mutant platter copy to the few
//! sectors a boot actually writes.
//!
//! # Failure ownership under supervision
//!
//! The campaign layer (`devil_mutagen::Campaign::supervised`) catches
//! panics raised while classifying a single mutant. A panic may leave
//! the live machine mid-drive — a restore would only be legal if every
//! device were still internally consistent, which a panicking engine
//! cannot promise — so supervision never attempts one: the worker's
//! whole workspace (machines, snapshots, caches) is dropped and rebuilt
//! from scratch, and the mutant reports as `EngineError`. Wall-clock
//! overruns are gentler: the cooperative deadline token stops the run at
//! a fuel-burn or dispatch boundary, the machine is consistent (just
//! unfinished), and the ordinary restore-per-mutant cycle continues —
//! the mutant classifies as `Deadline`. Only failures *outside* a
//! classify still abort the campaign, deliberately: a snapshot codec
//! that cannot round-trip, a `save`/`load` pair that diverges, a
//! [`RestoreError`] from a scenario breaking the lifecycle above are
//! harness defects, not mutant behaviours, and reporting them as
//! outcomes would corrupt the taxonomy.
//!
//! # What a device must implement
//!
//! Every [`IoDevice`](crate::IoDevice) with *mutable* state must override
//! [`save`](crate::IoDevice::save) and [`load`](crate::IoDevice::load) as
//! an exact pair: `load` must consume precisely the bytes `save` wrote and
//! leave the device bit-identical to the saved one. Construction-time
//! configuration (geometry, MAC address, port wiring) need not be saved —
//! restore always targets the machine the snapshot came from. The default
//! implementations save and load nothing, which is only correct for a
//! completely stateless device; forgetting the override makes restores
//! silently keep stale state, and the snapshot equivalence property test
//! exists to catch exactly that.

use crate::bus::UnmappedPolicy;
use crate::fault::FaultCursor;

/// Append-only encoder handed to [`IoDevice::save`](crate::IoDevice::save).
///
/// All integers are encoded little-endian. The writer may grow its buffer
/// (snapshots are taken once); the matching [`StateReader`] never
/// allocates.
#[derive(Debug)]
pub struct StateWriter<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> StateWriter<'a> {
    /// Wrap a byte buffer.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        StateWriter { buf }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes (no length prefix — the reader must know the size).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a `u64` length prefix followed by the bytes.
    pub fn len_bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.bytes(v);
    }

    /// Append a slice of u32s (no length prefix).
    pub fn u32s(&mut self, v: &[u32]) {
        for w in v {
            self.u32(*w);
        }
    }

    /// Append a `u64` length prefix followed by the u32s.
    pub fn len_u32s(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        self.u32s(v);
    }
}

/// Cursor over a device's saved payload, handed to
/// [`IoDevice::load`](crate::IoDevice::load).
///
/// Every accessor is allocation-free; reading past the end of the payload
/// panics, because it means `save` and `load` disagree — a device bug, not
/// a runtime condition.
#[derive(Debug)]
pub struct StateReader<'a> {
    rest: &'a [u8],
    snapshot_id: u64,
}

impl<'a> StateReader<'a> {
    /// Wrap a saved payload of unknown provenance (no snapshot identity).
    pub fn new(rest: &'a [u8]) -> Self {
        StateReader { rest, snapshot_id: 0 }
    }

    /// Wrap a payload that belongs to the [`Snapshot`] with identity `id`
    /// (as [`IoSpace::restore`](crate::IoSpace::restore) does).
    pub fn with_id(rest: &'a [u8], snapshot_id: u64) -> Self {
        StateReader { rest, snapshot_id }
    }

    /// Identity of the snapshot this payload came from, or 0 when unknown.
    ///
    /// Devices with an incremental restore fast path (the IDE disk's
    /// dirty-sector journal) compare this against the identity of the
    /// snapshot they last diverged from: a match means only the recorded
    /// divergence needs undoing; any other value forces a full reload.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        head
    }

    /// Read one byte.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a bool.
    pub fn bool(&mut self) -> bool {
        self.u8() != 0
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("two bytes"))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("four bytes"))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("eight bytes"))
    }

    /// Borrow `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        self.take(n)
    }

    /// Copy exactly `out.len()` bytes into `out`.
    pub fn fill(&mut self, out: &mut [u8]) {
        let n = out.len();
        out.copy_from_slice(self.take(n));
    }

    /// Copy exactly `out.len()` u32s into `out`.
    pub fn fill_u32s(&mut self, out: &mut [u32]) {
        for w in out {
            *w = self.u32();
        }
    }

    /// Replace `out`'s contents with a `u64`-length-prefixed byte run.
    /// Allocates only when `out`'s capacity is insufficient.
    pub fn fill_len_bytes(&mut self, out: &mut Vec<u8>) {
        let n = self.u64() as usize;
        out.clear();
        out.extend_from_slice(self.take(n));
    }

    /// Replace `out`'s contents with a `u64`-length-prefixed u32 run.
    /// Allocates only when `out`'s capacity is insufficient.
    pub fn fill_len_u32s(&mut self, out: &mut Vec<u32>) {
        let n = self.u64() as usize;
        out.clear();
        for _ in 0..n {
            out.push(self.u32());
        }
    }
}

/// Saved state of one [`IoSpace`](crate::IoSpace): bus counters, clock,
/// lazy-tick bookkeeping, trace, and every device's serialized state.
///
/// Produced by [`IoSpace::snapshot`](crate::IoSpace::snapshot), consumed
/// (any number of times) by [`IoSpace::restore`](crate::IoSpace::restore).
/// See the [module docs](self) for the campaign lifecycle. Two snapshots
/// compare equal exactly when they capture bit-identical machines, which
/// is what the equivalence property tests assert — the [`Snapshot::id`]
/// is an identity, not content, and is excluded from the comparison.
#[derive(Debug, Clone, Eq)]
pub struct Snapshot {
    /// Process-unique identity assigned at capture time (clones share it).
    /// Passed to every device `load` via [`StateReader::snapshot_id`] so
    /// incremental restore paths can tell "rewinding to the same snapshot
    /// again" apart from "rewinding to a different one".
    pub(crate) id: u64,
    pub(crate) policy: UnmappedPolicy,
    pub(crate) clock: u64,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) last_sync: Vec<u64>,
    /// Concatenated per-device `save` payloads.
    pub(crate) state: Vec<u8>,
    /// `state[spans[i] .. spans[i + 1]]` is device `i`'s payload.
    pub(crate) spans: Vec<usize>,
    /// Recorded accesses at snapshot time; `None` when tracing was off.
    pub(crate) trace: Option<Vec<crate::bus::Access>>,
    /// Fault-interposer cursor at snapshot time; `None` when no
    /// interposer was installed (see [`crate::fault`]).
    pub(crate) fault: Option<FaultCursor>,
}

impl Snapshot {
    /// Number of devices captured.
    pub fn device_count(&self) -> usize {
        self.last_sync.len()
    }

    /// Bus clock at capture time.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Total serialized device-state size in bytes.
    pub fn state_bytes(&self) -> usize {
        self.state.len()
    }

    /// Process-unique identity of this capture (clones share it).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Content equality: everything except the capture identity, so a machine
/// restored from a snapshot still snapshots equal to it.
impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.clock == other.clock
            && self.reads == other.reads
            && self.writes == other.writes
            && self.last_sync == other.last_sync
            && self.state == other.state
            && self.spans == other.spans
            && self.trace == other.trace
            && self.fault == other.fault
    }
}

/// Error restoring a [`Snapshot`] into an [`IoSpace`](crate::IoSpace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreError {
    /// The machine's device set differs from the snapshot's — devices were
    /// mapped after the snapshot was taken, or the snapshot belongs to a
    /// different machine. The routing table is reused by `restore`, so the
    /// device set must be identical.
    DeviceSetChanged {
        /// Devices captured in the snapshot.
        snapshot: usize,
        /// Devices mapped in the machine being restored.
        machine: usize,
    },
    /// Device `device` did not consume its payload exactly: its
    /// `save`/`load` pair is inconsistent, or the snapshot came from a
    /// machine with a different device at this slot.
    StatePayloadMismatch {
        /// Index of the offending device (mapping order).
        device: usize,
        /// Bytes left unread after `load` returned.
        unread: usize,
    },
    /// A fault interposer was installed (or removed) after the snapshot
    /// was taken. Like the device set, the interposer is machine
    /// configuration — a snapshot only records its *cursor*, so restore
    /// cannot cross an install/clear boundary. The machine is left
    /// untouched.
    FaultSetChanged {
        /// Whether the snapshot recorded a fault cursor.
        snapshot: bool,
        /// Whether the machine has an interposer installed.
        machine: bool,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::DeviceSetChanged { snapshot, machine } => write!(
                f,
                "snapshot captured {snapshot} devices but the machine has {machine}"
            ),
            RestoreError::StatePayloadMismatch { device, unread } => write!(
                f,
                "device #{device} left {unread} bytes of its snapshot payload unread"
            ),
            RestoreError::FaultSetChanged { snapshot, machine } => {
                let state = |present| if present { "with" } else { "without" };
                write!(
                    f,
                    "snapshot taken {} a fault interposer but the machine is {} one",
                    state(*snapshot),
                    state(*machine)
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}
