//! Proof that the bus hot path is allocation-free on success.
//!
//! A counting global allocator wraps the system allocator; the test maps
//! representative devices, warms the paths up, and then asserts that a
//! long burst of mapped, unmapped-floating and device-timer accesses
//! performs exactly zero heap allocations. This is the acceptance gate
//! for the O(1) dispatch refactor: `read_any`/`write_any` must never
//! allocate when nothing fails.
//!
//! Kept to a single `#[test]` so no concurrent test thread can disturb
//! the global counter.

use devil_hwsim::bus::ScratchRegisters;
use devil_hwsim::devices::{Busmouse, IdeController, IdeDisk};
use devil_hwsim::{FaultPlan, IoBus, IoSpace, DEFAULT_FAULT_SEED};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Only allocations made by the thread inside `allocations_during`
    /// are counted — libtest's harness threads allocate at their own
    /// pace and must not flake the assertion.
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(|c| c.get()).unwrap_or(false)
}

struct CountingAllocator;

// SAFETY: delegates directly to `System`, only incrementing a counter for
// allocations made by a thread that opted in.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    let result = f();
    COUNTING.with(|c| c.set(false));
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn hot_path_is_allocation_free() {
    let mut io = IoSpace::new();
    io.map(0x100, 16, Box::new(ScratchRegisters::new(16))).unwrap();
    let mouse = io.map(0x23C, 4, Box::new(Busmouse::new())).unwrap();
    io.map(0x1F0, 9, Box::new(IdeController::new(IdeDisk::small()))).unwrap();
    io.device_mut::<Busmouse>(mouse).unwrap().inject_motion(3, -4, 0b101);

    // Warm up every path once (first touches may lazily initialise).
    io.outb(0x105, 0xAA).unwrap();
    io.inb(0x105).unwrap();
    io.inb(0x1F7).unwrap();
    io.inb(0x8000).unwrap();

    let (allocs, checksum) = allocations_during(|| {
        let mut acc = 0u32;
        for round in 0..10_000u32 {
            // Mapped scratch window, all widths.
            io.outb(0x100 + (round % 14) as u16, round as u8).unwrap();
            acc ^= io.inb(0x100 + (round % 14) as u16).unwrap() as u32;
            io.outw(0x100, round as u16).unwrap();
            acc ^= io.inw(0x100).unwrap() as u32;
            // Device with a busy timer: IDE status poll.
            acc ^= io.inb(0x1F7).unwrap() as u32;
            // Mouse index-multiplexed data reads.
            io.outb(0x23E, 0x80).unwrap();
            acc ^= io.inb(0x23C).unwrap() as u32;
            // Unmapped float.
            acc ^= io.inb(0x9000).unwrap() as u32;
        }
        acc
    });
    assert_eq!(
        allocs, 0,
        "bus hot path allocated {allocs} times over 70k accesses (checksum {checksum:#x})"
    );

    // Device faults are also allocation-free end to end now that
    // DeviceFault is Copy: a refused width on the IDE task file.
    let (allocs, _) = allocations_during(|| {
        for _ in 0..100 {
            let err = io.inl(0x1F2).unwrap_err();
            std::hint::black_box(&err);
        }
    });
    assert_eq!(allocs, 0, "device fault path allocated {allocs} times");

    // The campaign reset loop: snapshot once, then every
    // burst-of-accesses → restore round must be allocation-free — this is
    // what makes per-mutant machine reset cheaper than reconstruction.
    let snap = io.snapshot();
    // Warm one round up: the first burst may grow dynamic logs (the IDE
    // command log) to their steady-state capacity.
    io.outb(0x1F7, 0xEC).unwrap();
    io.inb(0x1F7).unwrap();
    io.restore(&snap).unwrap();
    let (allocs, checksum) = allocations_during(|| {
        let mut acc = 0u32;
        for round in 0..1_000u32 {
            // Dirty the machine: scratch bytes, an IDE command (pushes
            // onto the command log), a mouse latch, an unmapped float.
            io.outb(0x100 + (round % 14) as u16, round as u8).unwrap();
            io.outb(0x1F7, 0xEC).unwrap();
            acc ^= io.inb(0x1F7).unwrap() as u32;
            io.outb(0x23E, 0x80).unwrap();
            acc ^= io.inb(0x23C).unwrap() as u32;
            acc ^= io.inb(0x9000).unwrap() as u32;
            // Rewind to pristine.
            io.restore(&snap).unwrap();
        }
        acc
    });
    assert_eq!(
        allocs, 0,
        "snapshot restore allocated {allocs} times over 1000 reset rounds (checksum {checksum:#x})"
    );
    assert_eq!(io.snapshot(), snap, "machine ends bit-identical to the snapshot");

    // The fault interposer keeps both guarantees. With a plan installed
    // every access takes the interposer seam (the block fast paths
    // decline), each matching rule draws from the inline PRNG, and the
    // restore path rewinds the fault cursor — all of it without touching
    // the heap. Plan construction allocates; it happens outside the
    // counted region, like `map()`.
    io.install_faults(FaultPlan::named("mixed", DEFAULT_FAULT_SEED).expect("bundled plan"));
    // Warm up and capture a mid-plan snapshot (non-zero cursor).
    io.outb(0x1F7, 0xEC).unwrap();
    io.inb(0x1F7).unwrap();
    let snap = io.snapshot();
    let (allocs, checksum) = allocations_during(|| {
        let mut acc = 0u32;
        for round in 0..1_000u32 {
            io.outb(0x100 + (round % 14) as u16, round as u8).unwrap();
            io.outb(0x1F7, 0xEC).unwrap();
            acc ^= io.inb(0x1F7).unwrap() as u32;
            io.outb(0x23E, 0x80).unwrap();
            acc ^= io.inb(0x23C).unwrap() as u32;
            acc ^= io.inb(0x9000).unwrap() as u32;
            io.restore(&snap).unwrap();
        }
        acc
    });
    assert_eq!(
        allocs, 0,
        "faulted access + restore allocated {allocs} times over 1000 rounds (checksum {checksum:#x})"
    );
    assert_eq!(io.snapshot(), snap, "faulted machine ends bit-identical to the snapshot");
}
