//! Property tests for the bus fabric and the IDE model.

use devil_hwsim::bus::ScratchRegisters;
use devil_hwsim::devices::{IdeController, IdeDisk, SECTOR_SIZE};
use devil_hwsim::reference::{LinearIoSpace, NullDevice};
use devil_hwsim::{FaultPlan, IoBus, IoSpace, UnmappedPolicy};
use proptest::prelude::*;

const IDE: u16 = 0x1F0;

fn ide_machine() -> IoSpace {
    let mut io = IoSpace::new();
    io.map(IDE, 9, Box::new(IdeController::new(IdeDisk::small()))).unwrap();
    io
}

fn wait_ready(io: &mut IoSpace) -> u8 {
    for _ in 0..100_000 {
        let st = io.inb(IDE + 7).unwrap();
        if st & 0x80 == 0 {
            return st;
        }
    }
    panic!("drive stayed busy");
}

fn select(io: &mut IoSpace, lba: u32, count: u8) {
    io.outb(IDE + 2, count).unwrap();
    io.outb(IDE + 3, lba as u8).unwrap();
    io.outb(IDE + 4, (lba >> 8) as u8).unwrap();
    io.outb(IDE + 5, (lba >> 16) as u8).unwrap();
    io.outb(IDE + 6, 0xE0 | ((lba >> 24) & 0xF) as u8).unwrap();
}

proptest! {
    /// Scratch windows behave like memory under arbitrary byte programs.
    #[test]
    fn scratch_is_last_writer_wins(ops in prop::collection::vec((0u16..16, any::<u8>()), 1..64)) {
        let mut io = IoSpace::new();
        io.map(0x100, 16, Box::new(ScratchRegisters::new(16))).unwrap();
        let mut model = [0u8; 16];
        for (off, val) in ops {
            io.outb(0x100 + off, val).unwrap();
            model[off as usize] = val;
        }
        for off in 0..16u16 {
            prop_assert_eq!(io.inb(0x100 + off).unwrap(), model[off as usize]);
        }
    }

    /// Whatever sector content is written over the ATA wire reads back
    /// identically (write/read round trip through the full protocol).
    #[test]
    fn ide_wire_round_trip(lba in 0u32..4096, seed in any::<u64>()) {
        let mut io = ide_machine();
        let words: Vec<u16> = (0..256u64)
            .map(|i| (seed.wrapping_mul(i + 1).wrapping_add(i) & 0xFFFF) as u16)
            .collect();
        select(&mut io, lba, 1);
        io.outb(IDE + 7, 0x30).unwrap(); // WRITE SECTORS
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x08, 0, "DRQ after write command");
        for w in &words {
            io.outw(IDE, *w).unwrap();
        }
        select(&mut io, lba, 1);
        io.outb(IDE + 7, 0x20).unwrap(); // READ SECTORS
        wait_ready(&mut io);
        for w in &words {
            prop_assert_eq!(io.inw(IDE).unwrap(), *w);
        }
        prop_assert_eq!(io.inb(IDE + 7).unwrap() & 0x08, 0, "DRQ clears");
    }

    /// Unknown commands always abort and never wedge the drive.
    #[test]
    fn ide_unknown_commands_abort(cmd in any::<u8>()) {
        prop_assume!(!matches!(cmd, 0x20 | 0x21 | 0x30 | 0x31 | 0x10..=0x1F | 0x91 | 0xE7 | 0xEC | 0xEF));
        let mut io = ide_machine();
        io.outb(IDE + 7, cmd).unwrap();
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x01, 0, "ERR for command {:#x}", cmd);
        // The drive recovers: a valid command still works.
        select(&mut io, 3, 1);
        io.outb(IDE + 7, 0x20).unwrap();
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x08, 0, "drive still serves reads");
    }

    /// Host-side sector writes round trip through `sector()`.
    #[test]
    fn disk_host_round_trip(lba in 0u32..4096, byte in any::<u8>()) {
        let mut disk = IdeDisk::small();
        let sect = [byte; SECTOR_SIZE];
        disk.write_sector(lba, &sect);
        prop_assert_eq!(disk.sector(lba), &sect[..]);
    }

    /// The O(1) routing table agrees with a reference linear-scan lookup
    /// for arbitrary `map()` sequences: identical accept/reject decisions
    /// (overlaps, empty windows, end-of-space wrap) and identical dispatch
    /// for every probed port, under both unmapped policies.
    #[test]
    fn routing_table_matches_linear_reference(
        windows in prop::collection::vec(
            (
                prop_oneof![0u16..96, 0xFFD0u16..0xFFFF, any::<u16>()],
                0u16..48,
            ),
            0..24,
        ),
        probes in prop::collection::vec(any::<u16>(), 1..64),
        strict in any::<bool>(),
    ) {
        let mut fast = IoSpace::new();
        let mut slow = LinearIoSpace::new();
        if strict {
            fast.set_unmapped_policy(UnmappedPolicy::Fault);
            slow.set_unmapped_policy(UnmappedPolicy::Fault);
        }
        for (base, len) in &windows {
            let a = fast.map(*base, *len, Box::new(NullDevice::new()));
            let b = slow.map(*base, *len, Box::new(NullDevice::new()));
            prop_assert_eq!(a.is_ok(), b.is_ok(), "map({:#x}, {}) decisions differ", base, len);
            if let (Err(ea), Err(eb)) = (a, b) {
                prop_assert_eq!(ea, eb, "map({:#x}, {}) error kinds differ", base, len);
            }
        }
        for &port in &probes {
            // NullDevice echoes the window-relative offset, so agreement
            // here proves both the routing decision and the base/offset
            // arithmetic match.
            prop_assert_eq!(fast.outb(port, port as u8), slow.outb(port, port as u8));
            prop_assert_eq!(fast.inb(port), slow.inb(port), "port {:#x}", port);
            prop_assert_eq!(fast.inw(port), slow.inw(port), "port {:#x}", port);
        }
    }

    /// Probing windows right at the end of the port space: the table must
    /// accept `[0xFFFF, 1]`, reject any wrap, and route the last port.
    #[test]
    fn routing_table_end_of_space(len in 1u16..4) {
        let mut fast = IoSpace::new();
        let mut slow = LinearIoSpace::new();
        let base = 0xFFFFu16.saturating_sub(len - 1);
        fast.map(base, len, Box::new(NullDevice::new())).unwrap();
        slow.map(base, len, Box::new(NullDevice::new())).unwrap();
        prop_assert!(fast.map(0xFFFF, 2, Box::new(NullDevice::new())).is_err());
        prop_assert_eq!(fast.inb(0xFFFF).unwrap(), slow.inb(0xFFFF).unwrap());
        prop_assert_eq!(fast.inb(0xFFFF).unwrap(), (len - 1) as u8);
    }

    /// The bus clock advances exactly once per access, for any access mix.
    #[test]
    fn clock_counts_accesses(reads in 0u64..50, writes in 0u64..50) {
        let mut io = IoSpace::new();
        for _ in 0..reads {
            io.inb(0x500).unwrap();
        }
        for _ in 0..writes {
            io.outb(0x500, 1).unwrap();
        }
        prop_assert_eq!(io.clock(), reads + writes);
        prop_assert_eq!(io.read_count(), reads);
        prop_assert_eq!(io.write_count(), writes);
    }

    /// Snapshot/restore equivalence: for an arbitrary access prefix,
    /// `snapshot()` → more arbitrary accesses → `restore()` leaves every
    /// device, counter and register bit-identical to a freshly built
    /// machine that only replayed the prefix — and observably identical
    /// to the eager-ticking [`LinearIoSpace`] reference after the same
    /// prefix.
    #[test]
    fn snapshot_restore_equals_fresh_replay(
        prefix in prop::collection::vec((any::<u16>(), any::<u8>(), any::<u8>(), any::<bool>()), 0..120),
        suffix in prop::collection::vec((any::<u16>(), any::<u8>(), any::<u8>(), any::<bool>()), 1..120),
    ) {
        let mut restored = snapshot_machine();
        let mut fresh = snapshot_machine();
        let mut reference = snapshot_linear_machine();
        for op in &prefix {
            let a = apply(&mut restored, op);
            let b = apply(&mut fresh, op);
            let l = apply(&mut reference, op);
            prop_assert_eq!(a, b);
            prop_assert_eq!(a, l, "table and linear fabrics disagree on {:?}", op);
        }
        let snap = restored.snapshot();
        // Diverge: the restored machine runs arbitrary extra traffic.
        for op in &suffix {
            let _ = apply(&mut restored, op);
        }
        restored.restore(&snap).unwrap();
        // Bit-identical to both the captured state and a fresh replay.
        prop_assert_eq!(restored.snapshot(), snap.clone());
        prop_assert_eq!(fresh.snapshot(), snap);
        prop_assert_eq!(restored.clock(), fresh.clock());
        prop_assert_eq!(restored.read_count(), fresh.read_count());
        prop_assert_eq!(restored.write_count(), fresh.write_count());
        // Observably identical from here on, with the linear reference as
        // the oracle: replay a deterministic probe over every window.
        for op in probe_ops() {
            let a = apply(&mut restored, &op);
            let b = apply(&mut fresh, &op);
            let l = apply(&mut reference, &op);
            prop_assert_eq!(a, b, "restored and fresh diverge on {:?}", op);
            prop_assert_eq!(a, l, "restored and linear diverge on {:?}", op);
        }
    }

    /// An installed fault interposer with an *empty* plan is
    /// observationally the identity, for arbitrary access programs over
    /// the full device zoo: every result, counter and wire-log entry
    /// matches the same machine with no interposer at all. Only the
    /// introspection hook differs (`fault_injected()` reports `Some(0)`
    /// instead of `None`). This pins that the interposer seam itself —
    /// which also forces the block fast paths onto the per-access loop —
    /// cannot perturb behaviour; only fault rules can.
    #[test]
    fn noop_fault_plan_is_identity(
        ops in prop::collection::vec((any::<u16>(), any::<u8>(), any::<u8>(), any::<bool>()), 1..120),
        seed in any::<u64>(),
    ) {
        let mut faulted = snapshot_machine();
        faulted.install_faults(FaultPlan::none(seed));
        let mut plain = snapshot_machine();
        faulted.enable_trace();
        plain.enable_trace();
        for op in &ops {
            let a = apply(&mut faulted, op);
            let b = apply(&mut plain, op);
            prop_assert_eq!(a, b, "{:?} diverged under the empty fault plan", op);
        }
        prop_assert_eq!(faulted.clock(), plain.clock());
        prop_assert_eq!(faulted.read_count(), plain.read_count());
        prop_assert_eq!(faulted.write_count(), plain.write_count());
        prop_assert_eq!(faulted.take_trace(), plain.take_trace());
        prop_assert_eq!(faulted.fault_injected(), Some(0));
        prop_assert_eq!(plain.fault_injected(), None);
    }

    /// Restoring the same snapshot twice in a row is idempotent, whatever
    /// happened in between.
    #[test]
    fn restore_is_idempotent(
        ops in prop::collection::vec((any::<u16>(), any::<u8>(), any::<u8>(), any::<bool>()), 1..60),
    ) {
        let mut io = snapshot_machine();
        let snap = io.snapshot();
        for op in &ops {
            let _ = apply(&mut io, op);
        }
        io.restore(&snap).unwrap();
        let first = io.snapshot();
        io.restore(&snap).unwrap();
        prop_assert_eq!(io.snapshot(), first);
    }
}

// ------------------------------------------------- snapshot test harness

/// Ports covered by the snapshot equivalence workload: every window of
/// [`snapshot_machine`] plus an unmapped float.
const SNAPSHOT_PORTS: [u16; 39] = [
    0x000, 0x003, 0x008, 0x00B, 0x00D, // dma 8237
    0x020, 0x021, // pic 8259
    0x100, 0x101, 0x105, 0x10F, // scratch
    0x23C, 0x23D, 0x23E, 0x23F, // busmouse
    0x1F0, 0x1F1, 0x1F2, 0x1F3, 0x1F4, 0x1F5, 0x1F6, 0x1F7, 0x1F8, // ide
    0x300, 0x301, 0x307, 0x30A, 0x310, // ne2000
    0x31F, // ne2000 reset port
    0xC000, 0xC003, 0xC004, 0xC006, // permedia2
    0xCF8, 0xCFC, // pci config mechanism #1
    0xF000, 0xF002, // piix bus-master ide
    0x8000, // unmapped
];

const SNAPSHOT_MAC: [u8; 6] = [0x00, 0x0E, 0xA5, 0x01, 0x02, 0x03];

/// A machine with one device of every model the crate ships, so every
/// `save`/`load` codec is exercised: plain memory (scratch),
/// index-multiplexed latches (busmouse), busy-timer protocol engines with
/// backing storage (IDE, Permedia2), paged registers with remote DMA
/// (NE2000), init-sequence state machines (PIC, 8237 DMA), and the PCI
/// config/bus-master pair.
fn map_snapshot_devices(mut map: impl FnMut(u16, u16, Box<dyn devil_hwsim::IoDevice>)) {
    use devil_hwsim::devices::{
        BusMasterIde, Busmouse, Dma8237, Ne2000, PciConfigSpace, PciFunction, Permedia2, Pic8259,
    };
    map(0x000, 16, Box::new(Dma8237::new()));
    map(0x020, 2, Box::new(Pic8259::new()));
    map(0x100, 16, Box::new(ScratchRegisters::new(16)));
    map(0x23C, 4, Box::new(Busmouse::new()));
    map(IDE, 9, Box::new(IdeController::new(IdeDisk::small())));
    map(0x300, 0x20, Box::new(Ne2000::new(SNAPSHOT_MAC)));
    map(0xC000, 13, Box::new(Permedia2::new()));
    let mut cfg = PciConfigSpace::new();
    cfg.add_function(PciFunction::piix_ide(0xF000));
    map(0xCF8, 8, Box::new(cfg));
    map(0xF000, 16, Box::new(BusMasterIde::new()));
}

fn snapshot_machine() -> IoSpace {
    let mut io = IoSpace::new();
    map_snapshot_devices(|base, len, dev| {
        io.map(base, len, dev).unwrap();
    });
    io
}

/// The same device set in the eager-ticking linear reference fabric.
fn snapshot_linear_machine() -> LinearIoSpace {
    let mut io = LinearIoSpace::new();
    map_snapshot_devices(|base, len, dev| {
        io.map(base, len, dev).unwrap();
    });
    io
}

/// Decode one generated op onto a bus and return its observable result
/// (including faults), widened to a comparable shape.
fn apply<B: IoBus>(bus: &mut B, op: &(u16, u8, u8, bool)) -> Result<u32, devil_hwsim::BusFault> {
    let (port_sel, value, size_sel, is_read) = *op;
    let port = SNAPSHOT_PORTS[port_sel as usize % SNAPSHOT_PORTS.len()];
    let value = u32::from(value).wrapping_mul(0x0101_0101);
    match (size_sel % 3, is_read) {
        (0, true) => bus.inb(port).map(u32::from),
        (1, true) => bus.inw(port).map(u32::from),
        (_, true) => bus.inl(port),
        (0, false) => bus.outb(port, value as u8).map(|()| 0),
        (1, false) => bus.outw(port, value as u16).map(|()| 0),
        (_, false) => bus.outl(port, value).map(|()| 0),
    }
}

/// A deterministic post-restore probe: one byte read of every workload
/// port (floating, faulting or data-moving — all compared).
fn probe_ops() -> Vec<(u16, u8, u8, bool)> {
    (0..SNAPSHOT_PORTS.len() as u16).map(|i| (i, 0, 0, true)).collect()
}
