//! Property tests for the bus fabric and the IDE model.

use devil_hwsim::bus::ScratchRegisters;
use devil_hwsim::devices::{IdeController, IdeDisk, SECTOR_SIZE};
use devil_hwsim::{IoBus, IoSpace};
use proptest::prelude::*;

const IDE: u16 = 0x1F0;

fn ide_machine() -> IoSpace {
    let mut io = IoSpace::new();
    io.map(IDE, 9, Box::new(IdeController::new(IdeDisk::small()))).unwrap();
    io
}

fn wait_ready(io: &mut IoSpace) -> u8 {
    for _ in 0..100_000 {
        let st = io.inb(IDE + 7).unwrap();
        if st & 0x80 == 0 {
            return st;
        }
    }
    panic!("drive stayed busy");
}

fn select(io: &mut IoSpace, lba: u32, count: u8) {
    io.outb(IDE + 2, count).unwrap();
    io.outb(IDE + 3, lba as u8).unwrap();
    io.outb(IDE + 4, (lba >> 8) as u8).unwrap();
    io.outb(IDE + 5, (lba >> 16) as u8).unwrap();
    io.outb(IDE + 6, 0xE0 | ((lba >> 24) & 0xF) as u8).unwrap();
}

proptest! {
    /// Scratch windows behave like memory under arbitrary byte programs.
    #[test]
    fn scratch_is_last_writer_wins(ops in prop::collection::vec((0u16..16, any::<u8>()), 1..64)) {
        let mut io = IoSpace::new();
        io.map(0x100, 16, Box::new(ScratchRegisters::new(16))).unwrap();
        let mut model = [0u8; 16];
        for (off, val) in ops {
            io.outb(0x100 + off, val).unwrap();
            model[off as usize] = val;
        }
        for off in 0..16u16 {
            prop_assert_eq!(io.inb(0x100 + off).unwrap(), model[off as usize]);
        }
    }

    /// Whatever sector content is written over the ATA wire reads back
    /// identically (write/read round trip through the full protocol).
    #[test]
    fn ide_wire_round_trip(lba in 0u32..4096, seed in any::<u64>()) {
        let mut io = ide_machine();
        let words: Vec<u16> = (0..256u64)
            .map(|i| (seed.wrapping_mul(i + 1).wrapping_add(i) & 0xFFFF) as u16)
            .collect();
        select(&mut io, lba, 1);
        io.outb(IDE + 7, 0x30).unwrap(); // WRITE SECTORS
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x08, 0, "DRQ after write command");
        for w in &words {
            io.outw(IDE, *w).unwrap();
        }
        select(&mut io, lba, 1);
        io.outb(IDE + 7, 0x20).unwrap(); // READ SECTORS
        wait_ready(&mut io);
        for w in &words {
            prop_assert_eq!(io.inw(IDE).unwrap(), *w);
        }
        prop_assert_eq!(io.inb(IDE + 7).unwrap() & 0x08, 0, "DRQ clears");
    }

    /// Unknown commands always abort and never wedge the drive.
    #[test]
    fn ide_unknown_commands_abort(cmd in any::<u8>()) {
        prop_assume!(!matches!(cmd, 0x20 | 0x21 | 0x30 | 0x31 | 0x10..=0x1F | 0x91 | 0xE7 | 0xEC | 0xEF));
        let mut io = ide_machine();
        io.outb(IDE + 7, cmd).unwrap();
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x01, 0, "ERR for command {:#x}", cmd);
        // The drive recovers: a valid command still works.
        select(&mut io, 3, 1);
        io.outb(IDE + 7, 0x20).unwrap();
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x08, 0, "drive still serves reads");
    }

    /// Host-side sector writes round trip through `sector()`.
    #[test]
    fn disk_host_round_trip(lba in 0u32..4096, byte in any::<u8>()) {
        let mut disk = IdeDisk::small();
        let sect = [byte; SECTOR_SIZE];
        disk.write_sector(lba, &sect);
        prop_assert_eq!(disk.sector(lba), &sect[..]);
    }

    /// The bus clock advances exactly once per access, for any access mix.
    #[test]
    fn clock_counts_accesses(reads in 0u64..50, writes in 0u64..50) {
        let mut io = IoSpace::new();
        for _ in 0..reads {
            io.inb(0x500).unwrap();
        }
        for _ in 0..writes {
            io.outb(0x500, 1).unwrap();
        }
        prop_assert_eq!(io.clock(), reads + writes);
        prop_assert_eq!(io.read_count(), reads);
        prop_assert_eq!(io.write_count(), writes);
    }
}
