//! Property tests for the bus fabric and the IDE model.

use devil_hwsim::bus::ScratchRegisters;
use devil_hwsim::devices::{IdeController, IdeDisk, SECTOR_SIZE};
use devil_hwsim::reference::{LinearIoSpace, NullDevice};
use devil_hwsim::{IoBus, IoSpace, UnmappedPolicy};
use proptest::prelude::*;

const IDE: u16 = 0x1F0;

fn ide_machine() -> IoSpace {
    let mut io = IoSpace::new();
    io.map(IDE, 9, Box::new(IdeController::new(IdeDisk::small()))).unwrap();
    io
}

fn wait_ready(io: &mut IoSpace) -> u8 {
    for _ in 0..100_000 {
        let st = io.inb(IDE + 7).unwrap();
        if st & 0x80 == 0 {
            return st;
        }
    }
    panic!("drive stayed busy");
}

fn select(io: &mut IoSpace, lba: u32, count: u8) {
    io.outb(IDE + 2, count).unwrap();
    io.outb(IDE + 3, lba as u8).unwrap();
    io.outb(IDE + 4, (lba >> 8) as u8).unwrap();
    io.outb(IDE + 5, (lba >> 16) as u8).unwrap();
    io.outb(IDE + 6, 0xE0 | ((lba >> 24) & 0xF) as u8).unwrap();
}

proptest! {
    /// Scratch windows behave like memory under arbitrary byte programs.
    #[test]
    fn scratch_is_last_writer_wins(ops in prop::collection::vec((0u16..16, any::<u8>()), 1..64)) {
        let mut io = IoSpace::new();
        io.map(0x100, 16, Box::new(ScratchRegisters::new(16))).unwrap();
        let mut model = [0u8; 16];
        for (off, val) in ops {
            io.outb(0x100 + off, val).unwrap();
            model[off as usize] = val;
        }
        for off in 0..16u16 {
            prop_assert_eq!(io.inb(0x100 + off).unwrap(), model[off as usize]);
        }
    }

    /// Whatever sector content is written over the ATA wire reads back
    /// identically (write/read round trip through the full protocol).
    #[test]
    fn ide_wire_round_trip(lba in 0u32..4096, seed in any::<u64>()) {
        let mut io = ide_machine();
        let words: Vec<u16> = (0..256u64)
            .map(|i| (seed.wrapping_mul(i + 1).wrapping_add(i) & 0xFFFF) as u16)
            .collect();
        select(&mut io, lba, 1);
        io.outb(IDE + 7, 0x30).unwrap(); // WRITE SECTORS
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x08, 0, "DRQ after write command");
        for w in &words {
            io.outw(IDE, *w).unwrap();
        }
        select(&mut io, lba, 1);
        io.outb(IDE + 7, 0x20).unwrap(); // READ SECTORS
        wait_ready(&mut io);
        for w in &words {
            prop_assert_eq!(io.inw(IDE).unwrap(), *w);
        }
        prop_assert_eq!(io.inb(IDE + 7).unwrap() & 0x08, 0, "DRQ clears");
    }

    /// Unknown commands always abort and never wedge the drive.
    #[test]
    fn ide_unknown_commands_abort(cmd in any::<u8>()) {
        prop_assume!(!matches!(cmd, 0x20 | 0x21 | 0x30 | 0x31 | 0x10..=0x1F | 0x91 | 0xE7 | 0xEC | 0xEF));
        let mut io = ide_machine();
        io.outb(IDE + 7, cmd).unwrap();
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x01, 0, "ERR for command {:#x}", cmd);
        // The drive recovers: a valid command still works.
        select(&mut io, 3, 1);
        io.outb(IDE + 7, 0x20).unwrap();
        let st = wait_ready(&mut io);
        prop_assert_ne!(st & 0x08, 0, "drive still serves reads");
    }

    /// Host-side sector writes round trip through `sector()`.
    #[test]
    fn disk_host_round_trip(lba in 0u32..4096, byte in any::<u8>()) {
        let mut disk = IdeDisk::small();
        let sect = [byte; SECTOR_SIZE];
        disk.write_sector(lba, &sect);
        prop_assert_eq!(disk.sector(lba), &sect[..]);
    }

    /// The O(1) routing table agrees with a reference linear-scan lookup
    /// for arbitrary `map()` sequences: identical accept/reject decisions
    /// (overlaps, empty windows, end-of-space wrap) and identical dispatch
    /// for every probed port, under both unmapped policies.
    #[test]
    fn routing_table_matches_linear_reference(
        windows in prop::collection::vec(
            (
                prop_oneof![0u16..96, 0xFFD0u16..0xFFFF, any::<u16>()],
                0u16..48,
            ),
            0..24,
        ),
        probes in prop::collection::vec(any::<u16>(), 1..64),
        strict in any::<bool>(),
    ) {
        let mut fast = IoSpace::new();
        let mut slow = LinearIoSpace::new();
        if strict {
            fast.set_unmapped_policy(UnmappedPolicy::Fault);
            slow.set_unmapped_policy(UnmappedPolicy::Fault);
        }
        for (base, len) in &windows {
            let a = fast.map(*base, *len, Box::new(NullDevice::new()));
            let b = slow.map(*base, *len, Box::new(NullDevice::new()));
            prop_assert_eq!(a.is_ok(), b.is_ok(), "map({:#x}, {}) decisions differ", base, len);
            if let (Err(ea), Err(eb)) = (a, b) {
                prop_assert_eq!(ea, eb, "map({:#x}, {}) error kinds differ", base, len);
            }
        }
        for &port in &probes {
            // NullDevice echoes the window-relative offset, so agreement
            // here proves both the routing decision and the base/offset
            // arithmetic match.
            prop_assert_eq!(fast.outb(port, port as u8), slow.outb(port, port as u8));
            prop_assert_eq!(fast.inb(port), slow.inb(port), "port {:#x}", port);
            prop_assert_eq!(fast.inw(port), slow.inw(port), "port {:#x}", port);
        }
    }

    /// Probing windows right at the end of the port space: the table must
    /// accept `[0xFFFF, 1]`, reject any wrap, and route the last port.
    #[test]
    fn routing_table_end_of_space(len in 1u16..4) {
        let mut fast = IoSpace::new();
        let mut slow = LinearIoSpace::new();
        let base = 0xFFFFu16.saturating_sub(len - 1);
        fast.map(base, len, Box::new(NullDevice::new())).unwrap();
        slow.map(base, len, Box::new(NullDevice::new())).unwrap();
        prop_assert!(fast.map(0xFFFF, 2, Box::new(NullDevice::new())).is_err());
        prop_assert_eq!(fast.inb(0xFFFF).unwrap(), slow.inb(0xFFFF).unwrap());
        prop_assert_eq!(fast.inb(0xFFFF).unwrap(), (len - 1) as u8);
    }

    /// The bus clock advances exactly once per access, for any access mix.
    #[test]
    fn clock_counts_accesses(reads in 0u64..50, writes in 0u64..50) {
        let mut io = IoSpace::new();
        for _ in 0..reads {
            io.inb(0x500).unwrap();
        }
        for _ in 0..writes {
            io.outb(0x500, 1).unwrap();
        }
        prop_assert_eq!(io.clock(), reads + writes);
        prop_assert_eq!(io.read_count(), reads);
        prop_assert_eq!(io.write_count(), writes);
    }
}
