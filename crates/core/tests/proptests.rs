//! Property tests for the Devil front end and mask algebra.

use devil_core::ir::{Mask, MaskBit};
use devil_core::lexer::lex;
use devil_core::token::TokenKind;
use proptest::prelude::*;

proptest! {
    /// Lexing is total (no panics) and produced spans are sorted,
    /// non-overlapping and in-bounds.
    #[test]
    fn lexer_spans_are_well_formed(src in "[a-z0-9 @{}()\\[\\]:;,=#<>.']{0,120}") {
        if let Ok(tokens) = lex(&src) {
            let mut prev_end = 0usize;
            for t in &tokens {
                if t.kind == TokenKind::Eof {
                    continue;
                }
                prop_assert!(t.span.start >= prev_end, "overlap at {:?}", t.span);
                prop_assert!(t.span.end <= src.len());
                prop_assert!(t.span.start < t.span.end);
                prev_end = t.span.end;
            }
        }
    }

    /// Lexing the slice of any token re-produces that token's kind
    /// (token-level round-trip).
    #[test]
    fn token_slices_relex(src in "[a-z0-9 @{}()\\[\\]:;,=#<>.']{0,120}") {
        if let Ok(tokens) = lex(&src) {
            for t in tokens {
                if t.kind == TokenKind::Eof {
                    continue;
                }
                let slice = &src[t.span.start..t.span.end];
                let again = lex(slice);
                prop_assert!(again.is_ok(), "token slice {slice:?} must lex");
                let again = again.unwrap();
                prop_assert_eq!(&again[0].kind, &t.kind, "slice {:?}", slice);
            }
        }
    }

    /// Mask round trip: Display then re-parse is the identity.
    #[test]
    fn mask_display_round_trips(pattern in "[01*.]{1,32}") {
        let m = Mask::from_pattern(&pattern).unwrap();
        prop_assert_eq!(m.to_string(), pattern.clone());
        let again = Mask::from_pattern(&m.to_string()).unwrap();
        prop_assert_eq!(again, m);
    }

    /// `apply_write` is idempotent: a wire value re-applied is unchanged.
    #[test]
    fn apply_write_idempotent(pattern in "[01*.]{1,24}", v in any::<u64>()) {
        let m = Mask::from_pattern(&pattern).unwrap();
        let once = m.apply_write(v);
        prop_assert_eq!(m.apply_write(once), once);
    }

    /// Bit classification agrees with the u64 views.
    #[test]
    fn bit_views_agree(pattern in "[01*.]{1,24}") {
        let m = Mask::from_pattern(&pattern).unwrap();
        for i in 0..m.len() {
            let bit = 1u64 << i;
            match m.bit(i) {
                MaskBit::Relevant => prop_assert_ne!(m.relevant() & bit, 0),
                MaskBit::Fixed1 => prop_assert_ne!(m.fixed_ones() & bit, 0),
                MaskBit::Fixed0 => prop_assert_ne!(m.fixed_zeros() & bit, 0),
                MaskBit::Irrelevant => {
                    prop_assert_eq!((m.relevant() | m.fixed()) & bit, 0);
                }
            }
        }
    }

    /// The checker is total over single-token substitutions of a valid
    /// spec (the exact workload Table 2 runs at scale).
    #[test]
    fn checker_total_over_word_swaps(idx in 0usize..60, word in "[a-z]{1,8}") {
        let base = "device d (b : bit[8] port @ {0..1}) {\n\
                    register r = b @ 0 : bit[8];\n\
                    register s = write b @ 1, mask '1.......' : bit[8];\n\
                    variable v = r : int(8);\n\
                    variable w = s[6..0] : int(7);\n}";
        let words: Vec<&str> = base.split_whitespace().collect();
        if idx < words.len() {
            let mut mutated: Vec<&str> = words.clone();
            mutated[idx] = &word;
            let text = mutated.join(" ");
            let _ = devil_core::compile("fuzz.dil", &text);
        }
    }
}

#[test]
fn signed_value_extremes() {
    use devil_core::runtime::TypedValue;
    for width in 1..=32u32 {
        let max_raw = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let v = TypedValue { type_id: 0, raw: max_raw };
        assert_eq!(v.as_signed(width), -1, "all-ones is -1 at width {width}");
        let v = TypedValue { type_id: 0, raw: 0 };
        assert_eq!(v.as_signed(width), 0);
    }
}
