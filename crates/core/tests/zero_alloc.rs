//! Proof that the compiled stub access plans are allocation-free.
//!
//! Binds the busmouse and IDE specifications to live device models and
//! asserts that `get`/`set` (string-keyed), `get_by_id`/`set_by_id` and
//! `read_register`/`write_register` perform zero heap allocations on
//! success — in debug mode, with pre-actions and partial-write cache
//! merges on the path. This is the acceptance gate for the access-plan
//! layer of `devil_core::runtime`.
//!
//! Kept to a single `#[test]` so no concurrent test thread can disturb
//! the global counter.

use devil_core::runtime::{DeviceInstance, StubMode};
use devil_hwsim::devices::{Busmouse, IdeController, IdeDisk};
use devil_hwsim::IoSpace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Only allocations made by the thread inside `allocations_during`
    /// are counted — libtest's harness threads allocate at their own
    /// pace and must not flake the assertion.
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(|c| c.get()).unwrap_or(false)
}

struct CountingAllocator;

// SAFETY: delegates directly to `System`, only incrementing a counter for
// allocations made by a thread that opted in.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    let result = f();
    COUNTING.with(|c| c.set(false));
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

const BUSMOUSE: &str = r#"
device logitech_busmouse (base : bit[8] port @ {0..3})
{
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);
  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];
  variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
  variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
  variable buttons = y_high[7..5], volatile : int(3);
}
"#;

const MOUSE_BASE: u16 = 0x23C;
const IDE_BASE: u16 = 0x1F0;

#[test]
fn stub_hot_paths_are_allocation_free() {
    // --- busmouse: concatenated fragments + pre-actions + cache merges ---
    let spec = devil_core::compile("busmouse.dil", BUSMOUSE).unwrap();
    let mut io = IoSpace::new();
    let id = io.map(MOUSE_BASE, 4, Box::new(Busmouse::new())).unwrap();
    io.device_mut::<Busmouse>(id).unwrap().inject_motion(-5, 18, 0b011);
    let mut dev = DeviceInstance::new(&spec, &[MOUSE_BASE], StubMode::Debug);

    let dx = dev.var_id("dx").unwrap();
    let dy = dev.var_id("dy").unwrap();
    let buttons = dev.var_id("buttons").unwrap();
    let signature = dev.var_id("signature").unwrap();
    let sig_val = dev.int_value("signature", 0x5A).unwrap();

    // Warm-up: first traversal of every path.
    dev.get(&mut io, "dx").unwrap();
    dev.set(&mut io, "signature", sig_val).unwrap();

    let (allocs, checksum) = allocations_during(|| {
        let mut acc = 0u64;
        for _ in 0..10_000 {
            // String-keyed wrappers (binary-search resolve, no allocation).
            acc ^= dev.get(&mut io, "dx").unwrap().raw;
            acc ^= dev.get(&mut io, "buttons").unwrap().raw;
            dev.set(&mut io, "signature", sig_val).unwrap();
            // Dense-ID fast path.
            acc ^= dev.get_by_id(&mut io, dx).unwrap().raw;
            acc ^= dev.get_by_id(&mut io, dy).unwrap().raw;
            acc ^= dev.get_by_id(&mut io, buttons).unwrap().raw;
            dev.set_by_id(&mut io, signature, sig_val).unwrap();
        }
        acc
    });
    assert_eq!(
        allocs, 0,
        "busmouse stub hot path allocated {allocs} times (checksum {checksum:#x})"
    );

    // --- IDE: register-level stubs on a timer-driven device --------------
    let ide_spec = devil_core::compile(
        "ide_min.dil",
        r#"
device ide_min (dp : bit[16] port @ {0..0}, cmd : bit[8] port @ {2..7})
{
  register data_reg = dp @ 0 : bit[16];
  variable io_data = data_reg, volatile : int(16);
  register nsect_reg = cmd @ 2 : bit[8];
  variable sector_count = nsect_reg : int(8);
  register sect_reg = cmd @ 3 : bit[8];
  variable sector_number = sect_reg : int(8);
  register lcyl_reg = cmd @ 4 : bit[8];
  variable cyl_low = lcyl_reg : int(8);
  register hcyl_reg = cmd @ 5 : bit[8];
  variable cyl_high = hcyl_reg : int(8);
  register select_reg = cmd @ 6, mask '1.1.....' : bit[8];
  variable drive = select_reg[4] : int(1);
  variable head = select_reg[3..0] : int(4);
  variable lba = select_reg[6] : int(1);
  register status_reg = read cmd @ 7, mask '...*.**.' : bit[8];
  variable busy = status_reg[7], volatile : int(1);
  variable ready = status_reg[6], volatile : int(1);
  variable wfault = status_reg[5], volatile : int(1);
  variable drq = status_reg[3], volatile : int(1);
  variable err = status_reg[0], volatile : int(1);
}
"#,
    )
    .unwrap();
    let mut io = IoSpace::new();
    io.map(IDE_BASE, 9, Box::new(IdeController::new(IdeDisk::small()))).unwrap();
    let mut dev = DeviceInstance::new(&ide_spec, &[IDE_BASE, IDE_BASE], StubMode::Debug);
    let busy = dev.var_id("busy").unwrap();
    let status = dev.register_id("status_reg").unwrap();
    let select = dev.register_id("select_reg").unwrap();
    let count = dev.var_id("sector_count").unwrap();
    let count_val = dev.int_value("sector_count", 1).unwrap();

    dev.get_by_id(&mut io, busy).unwrap();
    dev.write_register(&mut io, select, 0x40).unwrap();

    let (allocs, checksum) = allocations_during(|| {
        let mut acc = 0u64;
        for _ in 0..10_000 {
            acc ^= dev.get_by_id(&mut io, busy).unwrap().raw;
            acc ^= dev.read_register(&mut io, status).unwrap();
            dev.write_register(&mut io, select, 0x40).unwrap();
            dev.set_by_id(&mut io, count, count_val).unwrap();
        }
        acc
    });
    assert_eq!(
        allocs, 0,
        "IDE register hot path allocated {allocs} times (checksum {checksum:#x})"
    );

    // --- campaign reset: machine restore + instance state rewind ---------
    // The per-mutant reset loop of the campaign engine: dirty the stub
    // cache and the machine, then rewind both. Must never allocate.
    let machine_snap = io.snapshot();
    let instance_state = dev.state();
    let (allocs, checksum) = allocations_during(|| {
        let mut acc = 0u64;
        for round in 0..1_000u64 {
            dev.write_register(&mut io, select, 0x40 | (round & 0x0F)).unwrap();
            dev.set_by_id(&mut io, count, count_val).unwrap();
            acc ^= dev.read_register(&mut io, status).unwrap();
            io.restore(&machine_snap).unwrap();
            dev.restore(&instance_state);
            dev.reset();
        }
        acc
    });
    assert_eq!(
        allocs, 0,
        "campaign reset loop allocated {allocs} times (checksum {checksum:#x})"
    );
}
