//! The Devil compiler's error type.

use crate::span::{SourceFile, Span};
use std::fmt;

/// Which stage of the compiler rejected the specification.
///
/// The mutation experiments (Table 2) count a mutant as *detected* whenever
/// any stage reports an error; the stage breakdown shows where the layered
/// design catches what.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Tokenisation failed (stray character, unterminated literal, ...).
    Lex,
    /// The token stream does not match the grammar.
    Parse,
    /// A rule within one abstraction layer failed (types, sizes, uniqueness).
    IntraLayer,
    /// A rule across abstraction layers failed (attributes, omission, overlap).
    InterLayer,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => f.write_str("lexical analysis"),
            Stage::Parse => f.write_str("parsing"),
            Stage::IntraLayer => f.write_str("intra-layer checking"),
            Stage::InterLayer => f.write_str("inter-layer checking"),
        }
    }
}

/// An error produced by any stage of the Devil compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevilError {
    /// Stage that rejected the input.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// Location of the offending construct.
    pub span: Span,
}

impl DevilError {
    /// Construct an error at `span`.
    pub fn new(stage: Stage, span: Span, message: impl Into<String>) -> Self {
        DevilError { stage, span, message: message.into() }
    }

    /// Render the error with a source snippet.
    pub fn render(&self, file: &SourceFile) -> String {
        format!("error ({}): {}\n{}", self.stage, self.message, file.render_snippet(self.span))
    }
}

impl fmt::Display for DevilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error ({}) at {}: {}", self.stage, self.span, self.message)
    }
}

impl std::error::Error for DevilError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_stage_and_message() {
        let e = DevilError::new(Stage::Parse, Span::new(2, 4), "expected `;`");
        let s = e.to_string();
        assert!(s.contains("parsing"), "{s}");
        assert!(s.contains("expected `;`"), "{s}");
    }

    #[test]
    fn render_includes_snippet() {
        let f = SourceFile::new("m.dil", "device d () {}");
        let e = DevilError::new(Stage::IntraLayer, Span::new(7, 8), "bad name");
        let r = e.render(&f);
        assert!(r.contains("m.dil:1:8"), "{r}");
        assert!(r.contains("bad name"), "{r}");
    }
}
