//! Recursive-descent parser for Devil specifications.
//!
//! The grammar (reconstructed from §2.1 and Figure 3 of the paper):
//!
//! ```text
//! spec       := "device" IDENT "(" param ("," param)* ")" "{" item* "}"
//! param      := IDENT ":" "bit" "[" INT "]" "port" "@" "{" INT ".." INT "}"
//! item       := register | variable
//! register   := "register" IDENT "=" portclause ("," portclause | "," attr)*
//!               [":" "bit" "[" INT "]"] ";"
//! portclause := ["read" | "write"] IDENT "@" INT
//! attr       := "mask" BITLIT | "pre" "{" pre ("," pre)* "}"
//! pre        := IDENT "=" INT
//! variable   := ["private"] "variable" IDENT "=" frag ("#" frag)*
//!               ("," vattr)* ":" type ";"
//! frag       := IDENT ["[" INT [".." INT] "]"]
//! vattr      := "volatile" | ("read" | "write") "trigger"
//! type       := ["signed"] "int" "(" INT ")"
//!             | "int" "{" setitem ("," setitem)* "}"
//!             | "bool"
//!             | "{" arm ("," arm)* "}"
//! setitem    := INT [".." INT]
//! arm        := IDENT ("=>" | "<=" | "<=>") BITLIT
//! ```

use crate::ast::*;
use crate::error::{DevilError, Stage};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a complete specification from source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<DeviceSpec, DevilError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.device()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> DevilError {
        DevilError::new(Stage::Parse, self.peek().span, message)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, DevilError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<Token, DevilError> {
        if self.peek().kind.is_keyword(kw) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{}`, found {}", kw.as_str(), self.peek().kind)))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> Option<Token> {
        if self.peek().kind.is_keyword(kw) {
            Some(self.bump())
        } else {
            None
        }
    }

    fn ident(&mut self, what: &str) -> Result<Ident, DevilError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.peek().span;
                self.bump();
                Ok(Ident { name, span })
            }
            other => Err(self.error(format!("expected {what} name, found {other}"))),
        }
    }

    fn int(&mut self, what: &str) -> Result<IntLit, DevilError> {
        match &self.peek().kind {
            TokenKind::Int { value, .. } => {
                let value = *value;
                let span = self.peek().span;
                self.bump();
                Ok(IntLit { value, span })
            }
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    fn bit_literal(&mut self, what: &str) -> Result<MaskLit, DevilError> {
        match &self.peek().kind {
            TokenKind::BitLiteral(pattern) => {
                let pattern = pattern.clone();
                let span = self.peek().span;
                self.bump();
                Ok(MaskLit { pattern, span })
            }
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    fn device(&mut self) -> Result<DeviceSpec, DevilError> {
        let start = self.expect_keyword(Keyword::Device)?.span;
        let name = self.ident("device")?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.port_param()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut items = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                break;
            }
            if self.peek().kind == TokenKind::Eof {
                return Err(self.error("unexpected end of input inside device body"));
            }
            items.push(self.item()?);
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        if self.peek().kind != TokenKind::Eof {
            return Err(self.error("unexpected tokens after device declaration"));
        }
        Ok(DeviceSpec { name, params, items, span: start.merge(end) })
    }

    /// `base : bit[8] port @ {0..3}`
    fn port_param(&mut self) -> Result<PortParam, DevilError> {
        let name = self.ident("port parameter")?;
        self.expect(&TokenKind::Colon)?;
        self.expect_keyword(Keyword::Bit)?;
        self.expect(&TokenKind::LBracket)?;
        let width = self.int("port width")?;
        self.expect(&TokenKind::RBracket)?;
        self.expect_keyword(Keyword::Port)?;
        self.expect(&TokenKind::At)?;
        self.expect(&TokenKind::LBrace)?;
        let lo = self.int("range start")?;
        self.expect(&TokenKind::DotDot)?;
        let hi = self.int("range end")?;
        let end = self.expect(&TokenKind::RBrace)?.span;
        let span = name.span.merge(end);
        Ok(PortParam { name, width, range: (lo, hi), span })
    }

    fn item(&mut self) -> Result<Item, DevilError> {
        match &self.peek().kind {
            TokenKind::Keyword(Keyword::Register) => Ok(Item::Register(self.register()?)),
            TokenKind::Keyword(Keyword::Variable) | TokenKind::Keyword(Keyword::Private) => {
                Ok(Item::Variable(self.variable()?))
            }
            other => Err(self.error(format!(
                "expected `register`, `variable` or `private`, found {other}"
            ))),
        }
    }

    fn register(&mut self) -> Result<RegisterDecl, DevilError> {
        let start = self.expect_keyword(Keyword::Register)?.span;
        let name = self.ident("register")?;
        self.expect(&TokenKind::Eq)?;
        let mut ports = vec![self.port_clause()?];
        let mut mask = None;
        let mut pre = Vec::new();
        while self.eat(&TokenKind::Comma) {
            match &self.peek().kind {
                TokenKind::Keyword(Keyword::Mask) => {
                    self.bump();
                    let lit = self.bit_literal("mask pattern")?;
                    if mask.replace(lit).is_some() {
                        return Err(self.error("duplicate `mask` attribute"));
                    }
                }
                TokenKind::Keyword(Keyword::Pre) => {
                    self.bump();
                    self.expect(&TokenKind::LBrace)?;
                    loop {
                        let var = self.ident("pre-action variable")?;
                        self.expect(&TokenKind::Eq)?;
                        let value = self.int("pre-action value")?;
                        pre.push(PreAction { span: var.span.merge(value.span), var, value });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace)?;
                }
                TokenKind::Keyword(Keyword::Read)
                | TokenKind::Keyword(Keyword::Write)
                | TokenKind::Ident(_) => {
                    ports.push(self.port_clause()?);
                }
                other => {
                    return Err(self.error(format!(
                        "expected `mask`, `pre` or a port clause, found {other}"
                    )));
                }
            }
        }
        let size = if self.eat(&TokenKind::Colon) {
            self.expect_keyword(Keyword::Bit)?;
            self.expect(&TokenKind::LBracket)?;
            let sz = self.int("register size")?;
            self.expect(&TokenKind::RBracket)?;
            Some(sz)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(RegisterDecl { name, ports, mask, pre, size, span: start.merge(end) })
    }

    /// `[read|write] base @ 1`
    fn port_clause(&mut self) -> Result<PortClause, DevilError> {
        let start = self.peek().span;
        let direction = if self.eat_keyword(Keyword::Read).is_some() {
            Some(Direction::Read)
        } else if self.eat_keyword(Keyword::Write).is_some() {
            Some(Direction::Write)
        } else {
            None
        };
        let port = self.ident("port")?;
        self.expect(&TokenKind::At)?;
        let offset = self.int("port offset")?;
        let span = start.merge(offset.span);
        Ok(PortClause { direction, port, offset, span })
    }

    fn variable(&mut self) -> Result<VariableDecl, DevilError> {
        let private_tok = self.eat_keyword(Keyword::Private);
        let start = private_tok
            .as_ref()
            .map(|t| t.span)
            .unwrap_or(self.peek().span);
        self.expect_keyword(Keyword::Variable)?;
        let name = self.ident("variable")?;
        self.expect(&TokenKind::Eq)?;
        let mut frags = vec![self.fragment()?];
        while self.eat(&TokenKind::Hash) {
            frags.push(self.fragment()?);
        }
        let mut volatile = false;
        let mut trigger = None;
        while self.eat(&TokenKind::Comma) {
            match &self.peek().kind {
                TokenKind::Keyword(Keyword::Volatile) => {
                    let t = self.bump();
                    if volatile {
                        return Err(DevilError::new(
                            Stage::Parse,
                            t.span,
                            "duplicate `volatile` attribute",
                        ));
                    }
                    volatile = true;
                }
                TokenKind::Keyword(Keyword::Read) | TokenKind::Keyword(Keyword::Write) => {
                    let dir = if self.peek().kind.is_keyword(Keyword::Read) {
                        Direction::Read
                    } else {
                        Direction::Write
                    };
                    let dspan = self.bump().span;
                    let tspan = self.expect_keyword(Keyword::Trigger)?.span;
                    if trigger.replace((dir, dspan.merge(tspan))).is_some() {
                        return Err(self.error("duplicate trigger attribute"));
                    }
                }
                other => {
                    return Err(self.error(format!(
                        "expected `volatile`, `read trigger` or `write trigger`, found {other}"
                    )));
                }
            }
        }
        self.expect(&TokenKind::Colon)?;
        let ty = self.type_expr()?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(VariableDecl {
            private: private_tok.is_some(),
            name,
            frags,
            volatile,
            trigger,
            ty,
            span: start.merge(end),
        })
    }

    /// `x_high[3..0]`, `index_reg[4]`, or a bare register name.
    fn fragment(&mut self) -> Result<Fragment, DevilError> {
        let register = self.ident("register")?;
        let mut span = register.span;
        let bits = if self.eat(&TokenKind::LBracket) {
            let msb = self.int("bit index")?;
            let lsb = if self.eat(&TokenKind::DotDot) {
                self.int("bit index")?
            } else {
                msb
            };
            let close = self.expect(&TokenKind::RBracket)?.span;
            span = span.merge(close);
            Some(BitRange { msb, lsb, span: msb.span.merge(close) })
        } else {
            None
        };
        Ok(Fragment { register, bits, span })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, DevilError> {
        match &self.peek().kind {
            TokenKind::Keyword(Keyword::Signed) => {
                let start = self.bump().span;
                self.expect_keyword(Keyword::Int)?;
                self.int_tail(start, true)
            }
            TokenKind::Keyword(Keyword::Int) => {
                let start = self.bump().span;
                self.int_tail(start, false)
            }
            TokenKind::Keyword(Keyword::Bool) => {
                let span = self.bump().span;
                Ok(TypeExpr::Bool { span })
            }
            TokenKind::LBrace => {
                let start = self.bump().span;
                let mut arms = Vec::new();
                loop {
                    let name = self.ident("symbolic value")?;
                    let mapping = match &self.peek().kind {
                        TokenKind::FatArrow => MappingDir::Write,
                        TokenKind::ReadArrow => MappingDir::Read,
                        TokenKind::BothArrow => MappingDir::Both,
                        other => {
                            return Err(self.error(format!(
                                "expected `=>`, `<=` or `<=>`, found {other}"
                            )));
                        }
                    };
                    self.bump();
                    let pattern = self.bit_literal("bit pattern")?;
                    arms.push(EnumArm {
                        span: name.span.merge(pattern.span),
                        name,
                        mapping,
                        pattern,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                let end = self.expect(&TokenKind::RBrace)?.span;
                Ok(TypeExpr::Enum { arms, span: start.merge(end) })
            }
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    /// After `int` / `signed int`: either `(n)` or `{set}`.
    fn int_tail(&mut self, start: Span, signed: bool) -> Result<TypeExpr, DevilError> {
        if self.eat(&TokenKind::LParen) {
            let bits = self.int("bit width")?;
            let end = self.expect(&TokenKind::RParen)?.span;
            Ok(TypeExpr::Int { signed, bits, span: start.merge(end) })
        } else if !signed && self.peek().kind == TokenKind::LBrace {
            self.bump();
            let mut items = Vec::new();
            loop {
                let lo = self.int("set value")?;
                if self.eat(&TokenKind::DotDot) {
                    let hi = self.int("set range end")?;
                    items.push(SetItem::Range(lo, hi));
                } else {
                    items.push(SetItem::Value(lo));
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            let end = self.expect(&TokenKind::RBrace)?.span;
            Ok(TypeExpr::IntSet { items, span: start.merge(end) })
        } else {
            Err(self.error("expected `(width)` or `{value set}` after `int`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUSMOUSE_HEAD: &str = r#"
device logitech_busmouse (base : bit[8] port @ {0..3})
{
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
}
"#;

    #[test]
    fn parses_minimal_device() {
        let spec = parse("device d (p : bit[8] port @ {0..0}) { }").unwrap();
        assert_eq!(spec.name.name, "d");
        assert_eq!(spec.params.len(), 1);
        assert_eq!(spec.params[0].width.value, 8);
        assert!(spec.items.is_empty());
    }

    #[test]
    fn parses_busmouse_head() {
        let spec = parse(BUSMOUSE_HEAD).unwrap();
        assert_eq!(spec.registers().count(), 1);
        let v = spec.variables().next().unwrap();
        assert!(v.volatile);
        assert_eq!(v.trigger.map(|t| t.0), Some(Direction::Write));
        assert!(matches!(&v.ty, TypeExpr::Int { signed: false, bits, .. } if bits.value == 8));
    }

    #[test]
    fn parses_masked_write_register() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..3}) {
               register cr = write base @ 3, mask '1001000.' : bit[8];
             }",
        )
        .unwrap();
        let r = spec.registers().next().unwrap();
        assert_eq!(r.ports[0].direction, Some(Direction::Write));
        assert_eq!(r.ports[0].offset.value, 3);
        assert_eq!(r.mask.as_ref().unwrap().pattern, "1001000.");
        assert_eq!(r.size.unwrap().value, 8);
    }

    #[test]
    fn parses_pre_actions() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..3}) {
               register x_low = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
             }",
        )
        .unwrap();
        let r = spec.registers().next().unwrap();
        assert_eq!(r.pre.len(), 1);
        assert_eq!(r.pre[0].var.name, "index");
        assert_eq!(r.pre[0].value.value, 0);
    }

    #[test]
    fn parses_concatenation() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..3}) {
               variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
             }",
        )
        .unwrap();
        let v = spec.variables().next().unwrap();
        assert_eq!(v.frags.len(), 2);
        assert_eq!(v.frags[0].register.name, "x_high");
        let b = v.frags[0].bits.unwrap();
        assert_eq!((b.msb.value, b.lsb.value), (3, 0));
        assert!(matches!(&v.ty, TypeExpr::Int { signed: true, .. }));
    }

    #[test]
    fn parses_enum_type_with_all_arrows() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..3}) {
               variable config = cr[0] : { A => '1', B <= '0', C <=> '1' };
             }",
        )
        .unwrap();
        let v = spec.variables().next().unwrap();
        let TypeExpr::Enum { arms, .. } = &v.ty else { panic!("expected enum") };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].mapping, MappingDir::Write);
        assert_eq!(arms[1].mapping, MappingDir::Read);
        assert_eq!(arms[2].mapping, MappingDir::Both);
    }

    #[test]
    fn parses_private_variable_and_single_bit() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..3}) {
               private variable index = index_reg[6..5] : int(2);
               variable interrupt = interrupt_reg[4] : { E => '0', D => '1' };
             }",
        )
        .unwrap();
        let mut vars = spec.variables();
        let idx = vars.next().unwrap();
        assert!(idx.private);
        let int = vars.next().unwrap();
        let b = int.frags[0].bits.unwrap();
        assert_eq!((b.msb.value, b.lsb.value), (4, 4));
        assert_eq!(b.width(), 1);
    }

    #[test]
    fn parses_int_set_type() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..3}) {
               variable v = r[1..0] : int {0, 2..3};
             }",
        )
        .unwrap();
        let v = spec.variables().next().unwrap();
        let TypeExpr::IntSet { items, .. } = &v.ty else { panic!("expected set") };
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].values(), vec![2, 3]);
    }

    #[test]
    fn parses_dual_port_register() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..3}) {
               register r = read base @ 0, write base @ 1 : bit[8];
             }",
        )
        .unwrap();
        let r = spec.registers().next().unwrap();
        assert_eq!(r.ports.len(), 2);
        assert_eq!(r.ports[0].direction, Some(Direction::Read));
        assert_eq!(r.ports[1].direction, Some(Direction::Write));
    }

    #[test]
    fn parses_register_without_size() {
        let spec = parse(
            "device d (base : bit[8] port @ {0..7}) {
               register ide_select = base@6, mask '1.1.....';
             }",
        )
        .unwrap();
        let r = spec.registers().next().unwrap();
        assert!(r.size.is_none());
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse(
            "device d (base : bit[8] port @ {0..3}) {
               register r = base @ 0 : bit[8]
             }",
        )
        .unwrap_err();
        assert_eq!(err.stage, Stage::Parse);
    }

    #[test]
    fn rejects_duplicate_mask_attribute() {
        let err = parse(
            "device d (base : bit[8] port @ {0..3}) {
               register r = base @ 0, mask '........', mask '........' : bit[8];
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse("device d (p : bit[8] port @ {0..0}) { } register").unwrap_err();
        assert!(err.message.contains("after device"));
    }

    #[test]
    fn rejects_bad_type() {
        let err = parse(
            "device d (base : bit[8] port @ {0..3}) {
               variable v = r[0] : float;
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("expected a type"));
    }

    #[test]
    fn rejects_unclosed_body() {
        let err = parse("device d (p : bit[8] port @ {0..0}) {").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn parses_multi_param_device() {
        let spec =
            parse("device d (a : bit[8] port @ {0..1}, b : bit[16] port @ {0..0}) { }").unwrap();
        assert_eq!(spec.params.len(), 2);
        assert_eq!(spec.params[1].width.value, 16);
    }

    #[test]
    fn full_busmouse_figure3_parses() {
        let src = r#"
device logitech_busmouse (base : bit[8] port @ {0..3})
{
  // Signature register (SR)
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);

  // Configuration register (CR)
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };

  // Interrupt register
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };

  // Index register
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);

  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];

  variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
  variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
  variable buttons = y_high[7..5], volatile : int(3);
}
"#;
        let spec = parse(src).unwrap();
        assert_eq!(spec.name.name, "logitech_busmouse");
        assert_eq!(spec.registers().count(), 8);
        assert_eq!(spec.variables().count(), 7);
    }
}
