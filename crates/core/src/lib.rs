//! # devil-core — the Devil IDL
//!
//! A reimplementation of the Devil interface-definition language from
//! *Improving Driver Robustness: an Evaluation of the Devil Approach*
//! (Réveillère & Muller, DSN-2001). A Devil specification describes a
//! device's communication interface in three layers — ports, registers and
//! typed device variables — and the compiler here:
//!
//! 1. parses it ([`parser`]),
//! 2. checks intra-layer and inter-layer consistency ([`check`]),
//! 3. generates C stubs in production or debug mode ([`codegen`]), and
//! 4. can execute the stubs directly against simulated hardware
//!    ([`runtime`]).
//!
//! ```
//! use devil_core::Spec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//! device demo (base : bit[8] port @ {0..0}) {
//!   register status = read base @ 0 : bit[8];
//!   variable ready = status[7] : bool;
//!   variable code  = status[6..0] : int(7);
//! }
//! "#;
//! let checked = Spec::parse("demo.dil", src)?.check()?;
//! assert_eq!(checked.device_name(), "demo");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod codegen;
pub mod error;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod runtime;
pub mod span;
pub mod token;

pub use error::{DevilError, Stage};
pub use ir::CheckedSpec;

use span::SourceFile;
use std::fmt;

/// A parsed Devil specification bundled with its source file, the
/// convenient top-level entry point.
#[derive(Debug, Clone)]
pub struct Spec {
    file: SourceFile,
    ast: ast::DeviceSpec,
}

impl Spec {
    /// Lex and parse `source`, reporting errors against `name`.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] carrying the rendered snippet on lexical
    /// or syntax errors.
    pub fn parse(name: &str, source: &str) -> Result<Spec, CompileError> {
        let file = SourceFile::new(name, source);
        match parser::parse(source) {
            Ok(ast) => Ok(Spec { file, ast }),
            Err(e) => Err(CompileError { rendered: e.render(&file), errors: vec![e] }),
        }
    }

    /// The parsed AST.
    pub fn ast(&self) -> &ast::DeviceSpec {
        &self.ast
    }

    /// The source file.
    pub fn file(&self) -> &SourceFile {
        &self.file
    }

    /// Run the layered consistency checker.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] collecting *all* violations.
    pub fn check(&self) -> Result<CheckedSpec, CompileError> {
        check::check(&self.ast).map_err(|errors| {
            let rendered = errors
                .iter()
                .map(|e| e.render(&self.file))
                .collect::<Vec<_>>()
                .join("\n");
            CompileError { rendered, errors }
        })
    }
}

/// Parse and check in one step.
///
/// # Errors
///
/// Returns the first stage's [`CompileError`]; parsing errors win over
/// checking errors because checking never runs on an unparsable file.
pub fn compile(name: &str, source: &str) -> Result<CheckedSpec, CompileError> {
    Spec::parse(name, source)?.check()
}

/// One or more Devil compilation errors with pre-rendered snippets.
#[derive(Debug, Clone)]
pub struct CompileError {
    rendered: String,
    errors: Vec<DevilError>,
}

impl CompileError {
    /// The individual stage errors.
    pub fn errors(&self) -> &[DevilError] {
        &self.errors
    }

    /// The stage of the first error.
    pub fn stage(&self) -> Stage {
        self.errors[0].stage
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_happy_path() {
        let checked = compile(
            "mini.dil",
            "device mini (b : bit[8] port @ {0..0}) {
               register r = b @ 0 : bit[8];
               variable v = r : int(8);
             }",
        )
        .unwrap();
        assert_eq!(checked.device_name(), "mini");
    }

    #[test]
    fn compile_error_renders_snippet() {
        let err = compile("bad.dil", "device mini (").unwrap_err();
        assert_eq!(err.stage(), Stage::Parse);
        assert!(err.to_string().contains("bad.dil:1:"), "{err}");
    }

    #[test]
    fn check_error_lists_all_violations() {
        let err = compile(
            "multi.dil",
            "device d (b : bit[8] port @ {0..1}) {
               register r = b @ 0 : bit[8];
               variable v = r : int(9);
             }",
        )
        .unwrap_err();
        // int(9) mismatch AND offset 1 unused.
        assert!(err.errors().len() >= 2, "{err}");
    }
}
