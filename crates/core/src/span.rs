//! Source positions and human-readable diagnostics.
//!
//! Every token and AST node carries a [`Span`] into the original source
//! text; [`SourceFile`] converts spans to line/column pairs and renders the
//! offending line, so the Devil compiler's error messages point at the exact
//! character a mutation (or a human typo) landed on — the paper's whole
//! point is *when* an error surfaces, so precise reporting is part of the
//! reproduction.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Construct a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no characters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Line/column position (both 1-based) resolved from a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A named source file with cached line starts.
#[derive(Debug, Clone)]
pub struct SourceFile {
    name: String,
    text: String,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Wrap `text` under the given display `name`.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile { name: name.into(), text, line_starts }
    }

    /// Display name (typically the file name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Text covered by `span` (clamped to the file).
    pub fn slice(&self, span: Span) -> &str {
        let end = span.end.min(self.text.len());
        let start = span.start.min(end);
        &self.text[start..end]
    }

    /// Resolve a byte offset to a line/column pair.
    pub fn line_col(&self, offset: usize) -> LineCol {
        let offset = offset.min(self.text.len());
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol { line: line + 1, col: offset - self.line_starts[line] + 1 }
    }

    /// The full source line (without trailing newline) containing `offset`.
    pub fn line_text(&self, offset: usize) -> &str {
        let lc = self.line_col(offset);
        let start = self.line_starts[lc.line - 1];
        let end = self
            .line_starts
            .get(lc.line)
            .map(|e| e - 1)
            .unwrap_or(self.text.len());
        &self.text[start..end.max(start)]
    }

    /// Render a compiler-style snippet for `span`:
    ///
    /// ```text
    /// busmouse.dil:5:23
    ///     variable signature = sig_reg, volatile ...
    ///                          ^^^^^^^
    /// ```
    pub fn render_snippet(&self, span: Span) -> String {
        let lc = self.line_col(span.start);
        let line = self.line_text(span.start);
        let caret_start = lc.col - 1;
        let caret_len = span.len().clamp(1, line.len().saturating_sub(caret_start).max(1));
        let mut out = format!("{}:{}\n    {}\n    ", self.name, lc, line);
        for _ in 0..caret_start {
            out.push(' ');
        }
        for _ in 0..caret_len {
            out.push('^');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_resolution() {
        let f = SourceFile::new("t", "ab\ncd\n\nef");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(7), LineCol { line: 4, col: 1 });
        // Past the end clamps to the last position.
        assert_eq!(f.line_col(1000).line, 4);
    }

    #[test]
    fn line_text_extracts_whole_line() {
        let f = SourceFile::new("t", "first\nsecond\nthird");
        assert_eq!(f.line_text(0), "first");
        assert_eq!(f.line_text(7), "second");
        assert_eq!(f.line_text(14), "third");
    }

    #[test]
    fn snippet_points_at_span() {
        let f = SourceFile::new("x.dil", "register cr = base @ 3;");
        let s = f.render_snippet(Span::new(9, 11));
        assert!(s.contains("x.dil:1:10"), "{s}");
        assert!(s.contains("^^"), "{s}");
    }

    #[test]
    fn slice_clamps() {
        let f = SourceFile::new("t", "hello");
        assert_eq!(f.slice(Span::new(1, 3)), "el");
        assert_eq!(f.slice(Span::new(3, 100)), "lo");
    }

    #[test]
    fn empty_file_has_one_line() {
        let f = SourceFile::new("t", "");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_text(0), "");
    }
}
