//! Checked intermediate representation of a Devil specification.
//!
//! The checker ([`crate::check`]) lowers a parsed [`crate::ast::DeviceSpec`]
//! into a [`CheckedSpec`]: names resolved to indices, masks parsed into
//! [`Mask`] bit classes, variable fragments resolved to `(register, bits)`
//! pairs, and access directions computed. Code generation and the stub
//! runtime work exclusively from this IR.

use crate::ast::{Direction, MappingDir};
use std::fmt;

/// Index of a port parameter within a [`CheckedSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub usize);

/// Index of a register within a [`CheckedSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(pub usize);

/// Index of a variable within a [`CheckedSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

/// Classification of one register bit, from the mask pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskBit {
    /// `.` — carries information when read and written.
    Relevant,
    /// `0` — irrelevant when read, must be written as 0.
    Fixed0,
    /// `1` — irrelevant when read, must be written as 1.
    Fixed1,
    /// `*` — irrelevant in both directions.
    Irrelevant,
}

/// A register's bit-constraint mask.
///
/// Bit 0 of all the `u64` views is the register's least-significant bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    bits: Vec<MaskBit>, // index 0 = LSB
}

impl Mask {
    /// A mask of `size` bits, all relevant (the default when no `mask`
    /// attribute is given).
    pub fn all_relevant(size: u32) -> Self {
        Mask { bits: vec![MaskBit::Relevant; size as usize] }
    }

    /// Parse a pattern written MSB-first (as in the source text).
    ///
    /// Returns `None` if the pattern contains a character outside
    /// `{0, 1, *, .}`.
    pub fn from_pattern(pattern: &str) -> Option<Self> {
        let mut bits = Vec::with_capacity(pattern.len());
        for c in pattern.chars().rev() {
            bits.push(match c {
                '.' => MaskBit::Relevant,
                '0' => MaskBit::Fixed0,
                '1' => MaskBit::Fixed1,
                '*' => MaskBit::Irrelevant,
                _ => return None,
            });
        }
        Some(Mask { bits })
    }

    /// Number of bits in the mask.
    pub fn len(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Whether the mask has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The class of bit `i` (LSB = 0).
    pub fn bit(&self, i: u32) -> MaskBit {
        self.bits[i as usize]
    }

    /// Bitmask of relevant (`.`) positions.
    pub fn relevant(&self) -> u64 {
        self.fold(|b| b == MaskBit::Relevant)
    }

    /// Bitmask of positions forced to one on writes.
    pub fn fixed_ones(&self) -> u64 {
        self.fold(|b| b == MaskBit::Fixed1)
    }

    /// Bitmask of positions forced to zero on writes.
    pub fn fixed_zeros(&self) -> u64 {
        self.fold(|b| b == MaskBit::Fixed0)
    }

    /// Bitmask of positions with *any* fixed value.
    pub fn fixed(&self) -> u64 {
        self.fixed_ones() | self.fixed_zeros()
    }

    /// Transform a raw value so all fixed bits hold their required value and
    /// irrelevant bits are cleared — what the write stub sends on the wire.
    pub fn apply_write(&self, value: u64) -> u64 {
        (value & self.relevant()) | self.fixed_ones()
    }

    /// Whether a value read from the device honours the fixed bits.
    pub fn read_respects_fixed(&self, value: u64) -> bool {
        (value & self.fixed_ones()) == self.fixed_ones()
            && (value & self.fixed_zeros()) == 0
    }

    fn fold(&self, pred: impl Fn(MaskBit) -> bool) -> u64 {
        // Bits beyond 63 cannot be represented in the u64 views; they only
        // arise from invalid sizes the checker rejects separately.
        self.bits
            .iter()
            .take(64)
            .enumerate()
            .filter(|(_, b)| pred(**b))
            .fold(0u64, |acc, (i, _)| acc | (1 << i))
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.bits.iter().rev() {
            f.write_str(match b {
                MaskBit::Relevant => ".",
                MaskBit::Fixed0 => "0",
                MaskBit::Fixed1 => "1",
                MaskBit::Irrelevant => "*",
            })?;
        }
        Ok(())
    }
}

/// A resolved port parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDef {
    /// Parameter name.
    pub name: String,
    /// Data width in bits (8, 16 or 32).
    pub width: u32,
    /// Inclusive valid offset range.
    pub range: (u64, u64),
}

/// A resolved register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDef {
    /// Register name.
    pub name: String,
    /// Size in bits.
    pub size: u32,
    /// Port used for reads, if readable.
    pub read_port: Option<(PortId, u64)>,
    /// Port used for writes, if writable.
    pub write_port: Option<(PortId, u64)>,
    /// Bit-constraint mask (all-relevant when unspecified).
    pub mask: Mask,
    /// Pre-actions: `(variable, value)` assignments required before access.
    pub pre: Vec<(VarId, u64)>,
}

impl RegisterDef {
    /// Whether the register can be read.
    pub fn readable(&self) -> bool {
        self.read_port.is_some()
    }

    /// Whether the register can be written.
    pub fn writable(&self) -> bool {
        self.write_port.is_some()
    }
}

/// A resolved variable fragment: bits `msb..=lsb` of `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentDef {
    /// Source register.
    pub reg: RegId,
    /// Most significant selected bit.
    pub msb: u32,
    /// Least significant selected bit.
    pub lsb: u32,
}

impl FragmentDef {
    /// Number of bits this fragment contributes.
    pub fn width(&self) -> u32 {
        self.msb - self.lsb + 1
    }

    /// Bitmask of the selected bits within the register.
    pub fn reg_mask(&self) -> u64 {
        let w = self.width();
        if w >= 64 {
            u64::MAX
        } else {
            ((1u64 << w) - 1) << self.lsb
        }
    }
}

/// A resolved variable type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarType {
    /// `int(n)` / `signed int(n)`.
    Int {
        /// Sign-extended?
        signed: bool,
        /// Width in bits.
        bits: u32,
    },
    /// `bool` — one bit.
    Bool,
    /// Symbolic value mapping; patterns resolved to integers.
    Enum {
        /// `(symbol, direction, value)` arms.
        arms: Vec<(String, MappingDir, u64)>,
    },
    /// Fixed set of allowed integers (sorted, deduplicated).
    IntSet {
        /// Allowed values.
        values: Vec<u64>,
    },
}

impl VarType {
    /// Whether `raw` (the bits read from the device, zero-extended) is a
    /// legal value of this type — the debug stub's post-read assertion.
    pub fn admits(&self, raw: u64, width: u32) -> bool {
        match self {
            VarType::Int { .. } | VarType::Bool => {
                width >= 64 || raw < (1u64 << width)
            }
            VarType::Enum { arms } => arms
                .iter()
                .any(|(_, dir, v)| *dir != MappingDir::Write && *v == raw),
            VarType::IntSet { values } => values.contains(&raw),
        }
    }

    /// A short human name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            VarType::Int { signed: true, bits } => format!("signed int({bits})"),
            VarType::Int { signed: false, bits } => format!("int({bits})"),
            VarType::Bool => "bool".into(),
            VarType::Enum { arms } => {
                format!("enum of {} symbols", arms.len())
            }
            VarType::IntSet { values } => format!("int set of {} values", values.len()),
        }
    }
}

/// A resolved device variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableDef {
    /// Variable name.
    pub name: String,
    /// Not exported to the driver API.
    pub private: bool,
    /// Value may change under device control.
    pub volatile: bool,
    /// Access trigger, if any.
    pub trigger: Option<Direction>,
    /// Fragments, most significant first.
    pub frags: Vec<FragmentDef>,
    /// The variable's type.
    pub ty: VarType,
    /// Total width in bits.
    pub width: u32,
    /// Whether the driver may read it.
    pub readable: bool,
    /// Whether the driver may write it.
    pub writable: bool,
    /// Specification-unique type identifier (the `type` field of the debug
    /// struct in Figure 4).
    pub type_id: u32,
}

/// A fully checked Devil specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckedSpec {
    /// Device name.
    pub name: String,
    /// Port parameters.
    pub ports: Vec<PortDef>,
    /// Registers.
    pub registers: Vec<RegisterDef>,
    /// Variables (public and private).
    pub variables: Vec<VariableDef>,
}

impl CheckedSpec {
    /// The device's name.
    pub fn device_name(&self) -> &str {
        &self.name
    }

    /// Look up a variable by name.
    pub fn variable(&self, name: &str) -> Option<(VarId, &VariableDef)> {
        self.variables
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .map(|(i, v)| (VarId(i), v))
    }

    /// Look up a register by name.
    pub fn register(&self, name: &str) -> Option<(RegId, &RegisterDef)> {
        self.registers
            .iter()
            .enumerate()
            .find(|(_, r)| r.name == name)
            .map(|(i, r)| (RegId(i), r))
    }

    /// Variables exported in the functional interface (non-private).
    pub fn public_variables(&self) -> impl Iterator<Item = (VarId, &VariableDef)> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.private)
            .map(|(i, v)| (VarId(i), v))
    }

    /// Render the Figure-2 style schematic: ports → registers → variables.
    pub fn render_schematic(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("device {}\n", self.name));
        out.push_str("ports:\n");
        for p in &self.ports {
            out.push_str(&format!(
                "  {} : bit[{}] @ {{{}..{}}}\n",
                p.name, p.width, p.range.0, p.range.1
            ));
        }
        out.push_str("registers:\n");
        for r in &self.registers {
            let dir = |p: &Option<(PortId, u64)>, label: &str| {
                p.map(|(pid, off)| format!("{} {}@{}", label, self.ports[pid.0].name, off))
            };
            let mut ends: Vec<String> = Vec::new();
            if let Some(s) = dir(&r.read_port, "read") {
                ends.push(s);
            }
            if let Some(s) = dir(&r.write_port, "write") {
                ends.push(s);
            }
            out.push_str(&format!(
                "  {:<14} bit[{}] mask '{}' {}\n",
                r.name,
                r.size,
                r.mask,
                ends.join(", ")
            ));
            for (var, val) in &r.pre {
                out.push_str(&format!(
                    "    pre: {} = {}\n",
                    self.variables[var.0].name, val
                ));
            }
        }
        out.push_str("variables:\n");
        for v in &self.variables {
            let frags: Vec<String> = v
                .frags
                .iter()
                .map(|f| format!("{}[{}..{}]", self.registers[f.reg.0].name, f.msb, f.lsb))
                .collect();
            out.push_str(&format!(
                "  {}{:<12} = {} : {}\n",
                if v.private { "(private) " } else { "" },
                v.name,
                frags.join(" # "),
                v.ty.describe()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_pattern_round_trip() {
        let m = Mask::from_pattern("1001000.").unwrap();
        assert_eq!(m.to_string(), "1001000.");
        assert_eq!(m.len(), 8);
        assert_eq!(m.bit(0), MaskBit::Relevant);
        assert_eq!(m.bit(7), MaskBit::Fixed1);
        assert_eq!(m.bit(4), MaskBit::Fixed1);
        assert_eq!(m.bit(6), MaskBit::Fixed0);
    }

    #[test]
    fn mask_views() {
        // '1..00000': bit7 fixed 1, bits 6..5 relevant, bits 4..0 fixed 0.
        let m = Mask::from_pattern("1..00000").unwrap();
        assert_eq!(m.relevant(), 0b0110_0000);
        assert_eq!(m.fixed_ones(), 0b1000_0000);
        assert_eq!(m.fixed_zeros(), 0b0001_1111);
    }

    #[test]
    fn apply_write_forces_fixed_bits() {
        let m = Mask::from_pattern("1..00000").unwrap();
        // Writing index=2 (bits 6..5 = 10) must force bit 7 on, rest off.
        assert_eq!(m.apply_write(0b0100_0000), 0b1100_0000);
        // Stray bits outside the relevant window are stripped.
        assert_eq!(m.apply_write(0xFF), 0b1110_0000);
    }

    #[test]
    fn read_respects_fixed_checks_both_polarities() {
        let m = Mask::from_pattern("1.1.....").unwrap();
        assert!(m.read_respects_fixed(0xA0));
        assert!(m.read_respects_fixed(0xFF));
        assert!(!m.read_respects_fixed(0x20)); // bit 7 missing
        assert!(!m.read_respects_fixed(0x80)); // bit 5 missing
        let z = Mask::from_pattern("0.......").unwrap();
        assert!(!z.read_respects_fixed(0x80));
        assert!(z.read_respects_fixed(0x7F));
    }

    #[test]
    fn all_relevant_mask() {
        let m = Mask::all_relevant(8);
        assert_eq!(m.relevant(), 0xFF);
        assert_eq!(m.fixed(), 0);
        assert_eq!(m.apply_write(0x5A), 0x5A);
    }

    #[test]
    fn from_pattern_rejects_bad_chars() {
        assert!(Mask::from_pattern("10x.").is_none());
    }

    #[test]
    fn irrelevant_bits_stripped_on_write() {
        let m = Mask::from_pattern("****....").unwrap();
        assert_eq!(m.apply_write(0xFF), 0x0F);
        assert!(m.read_respects_fixed(0xFF), "no fixed bits to violate");
    }

    #[test]
    fn fragment_geometry() {
        let f = FragmentDef { reg: RegId(0), msb: 6, lsb: 5 };
        assert_eq!(f.width(), 2);
        assert_eq!(f.reg_mask(), 0b0110_0000);
        let whole = FragmentDef { reg: RegId(0), msb: 7, lsb: 0 };
        assert_eq!(whole.reg_mask(), 0xFF);
    }

    #[test]
    fn var_type_admits() {
        let set = VarType::IntSet { values: vec![0, 2, 3] };
        assert!(set.admits(2, 2));
        assert!(!set.admits(1, 2));
        let e = VarType::Enum {
            arms: vec![
                ("A".into(), MappingDir::Both, 1),
                ("B".into(), MappingDir::Write, 0),
            ],
        };
        assert!(e.admits(1, 1));
        // 0 is only a *write* symbol; reading it back is a violation.
        assert!(!e.admits(0, 1));
        let i = VarType::Int { signed: false, bits: 2 };
        assert!(i.admits(3, 2));
        assert!(!i.admits(4, 2));
    }
}
