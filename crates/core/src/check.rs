//! The layered consistency checker (§2.2 of the paper).
//!
//! The checker enforces two families of rules:
//!
//! **Intra-layer** — type properties and uniqueness within one abstraction
//! layer: every use of a port/register/variable matches its definition,
//! sizes agree (port data width, register size, mask length, variable type
//! width, enum bit-pattern lengths, bit ranges), and all entity names and
//! enum patterns are uniquely defined.
//!
//! **Inter-layer** — consistency across the port → register → variable
//! layering: access directions propagate upward; *no omission* (every port
//! parameter, every ranged offset, every register and every relevant
//! register bit must be used; read mappings must be exhaustive; read/write
//! mappings require readable/writable variables); and *no overlap* (a port
//! offset appears in at most one register per direction unless the registers
//! carry disjoint pre-actions or disjoint masks; no register bit feeds two
//! variables).
//!
//! All violations are collected — a mutant is "detected" when at least one
//! error is reported, and real users get every diagnostic at once.

use crate::ast::{self, DeviceSpec, Direction, MappingDir, TypeExpr};
use crate::error::{DevilError, Stage};
use crate::ir::*;
use crate::span::Span;
use std::collections::{HashMap, HashSet};

/// Check a parsed specification, lowering it to IR.
///
/// # Errors
///
/// Returns every intra-layer and inter-layer violation found.
pub fn check(spec: &DeviceSpec) -> Result<CheckedSpec, Vec<DevilError>> {
    let mut cx = Checker::default();
    cx.ports(spec);
    cx.registers_pass(spec);
    cx.variables_pass(spec);
    cx.pre_actions_pass(spec);
    cx.omission_checks(spec);
    cx.overlap_checks(spec);
    if cx.errors.is_empty() {
        Ok(CheckedSpec {
            name: spec.name.name.clone(),
            ports: cx.ports,
            registers: cx.registers,
            variables: cx.variables,
        })
    } else {
        Err(cx.errors)
    }
}

#[derive(Default)]
struct Checker {
    errors: Vec<DevilError>,
    ports: Vec<PortDef>,
    registers: Vec<RegisterDef>,
    variables: Vec<VariableDef>,
    port_names: HashMap<String, PortId>,
    reg_names: HashMap<String, RegId>,
    var_names: HashMap<String, VarId>,
    symbol_names: HashSet<String>,
    /// Registers that failed resolution, to suppress cascading errors.
    broken_regs: HashSet<String>,
}

impl Checker {
    fn intra(&mut self, span: Span, msg: impl Into<String>) {
        self.errors.push(DevilError::new(Stage::IntraLayer, span, msg));
    }

    fn inter(&mut self, span: Span, msg: impl Into<String>) {
        self.errors.push(DevilError::new(Stage::InterLayer, span, msg));
    }

    // ----- layer 1: ports -------------------------------------------------

    fn ports(&mut self, spec: &DeviceSpec) {
        for p in &spec.params {
            if self.port_names.contains_key(&p.name.name) {
                self.intra(
                    p.name.span,
                    format!("port parameter `{}` is defined twice", p.name.name),
                );
                continue;
            }
            let width = p.width.value;
            if !matches!(width, 8 | 16 | 32) {
                self.intra(
                    p.width.span,
                    format!("port width must be 8, 16 or 32 bits, got {width}"),
                );
            }
            let (lo, hi) = (p.range.0.value, p.range.1.value);
            if lo > hi {
                self.intra(
                    p.range.0.span.merge(p.range.1.span),
                    format!("port offset range {{{lo}..{hi}}} is inverted"),
                );
            }
            let id = PortId(self.ports.len());
            self.port_names.insert(p.name.name.clone(), id);
            self.ports.push(PortDef {
                name: p.name.name.clone(),
                width: width.clamp(8, 32) as u32,
                range: (lo, hi.max(lo)),
            });
        }
    }

    // ----- layer 2: registers ----------------------------------------------

    fn registers_pass(&mut self, spec: &DeviceSpec) {
        for r in spec.registers() {
            let name = &r.name.name;
            if self.port_names.contains_key(name) || self.reg_names.contains_key(name) {
                self.intra(r.name.span, format!("`{name}` is already defined"));
                self.broken_regs.insert(name.clone());
                continue;
            }
            let mut read_port = None;
            let mut write_port = None;
            let mut resolved_width = None;
            let mut broken = false;
            for clause in &r.ports {
                let Some(&pid) = self.port_names.get(&clause.port.name) else {
                    self.intra(
                        clause.port.span,
                        format!("`{}` is not a declared port parameter", clause.port.name),
                    );
                    broken = true;
                    continue;
                };
                let (prange, pwidth, pname) = {
                    let pdef = &self.ports[pid.0];
                    (pdef.range, pdef.width, pdef.name.clone())
                };
                let off = clause.offset.value;
                if off < prange.0 || off > prange.1 {
                    self.intra(
                        clause.offset.span,
                        format!(
                            "offset {off} is outside the declared range {{{}..{}}} of port `{pname}`",
                            prange.0, prange.1
                        ),
                    );
                }
                resolved_width.get_or_insert(pwidth);
                match clause.direction {
                    Some(Direction::Read) => {
                        if read_port.replace((pid, off)).is_some() {
                            self.intra(clause.span, "register has two read port clauses");
                        }
                    }
                    Some(Direction::Write) => {
                        if write_port.replace((pid, off)).is_some() {
                            self.intra(clause.span, "register has two write port clauses");
                        }
                    }
                    None => {
                        if read_port.replace((pid, off)).is_some()
                            || write_port.replace((pid, off)).is_some()
                        {
                            self.intra(
                                clause.span,
                                "a direction-less port clause cannot be combined with others",
                            );
                        }
                    }
                }
            }
            // Size: explicit, else the port's data width.
            let size = match (&r.size, resolved_width) {
                (Some(s), Some(w)) => {
                    if s.value != w as u64 {
                        self.intra(
                            s.span,
                            format!(
                                "register size bit[{}] does not match the {w}-bit data width of its port",
                                s.value
                            ),
                        );
                    }
                    s.value as u32
                }
                (Some(s), None) => s.value as u32,
                (None, Some(w)) => w,
                (None, None) => 8,
            };
            if size == 0 || size > 64 {
                self.intra(r.name.span, format!("register size {size} is not supported"));
            }
            let mask = match &r.mask {
                Some(m) => match Mask::from_pattern(&m.pattern) {
                    Some(mask) => {
                        if mask.len() != size {
                            self.intra(
                                m.span,
                                format!(
                                    "mask '{}' has {} bits but register `{name}` is {size} bits wide",
                                    m.pattern,
                                    mask.len()
                                ),
                            );
                        }
                        mask
                    }
                    None => {
                        self.intra(m.span, "mask contains characters outside {0, 1, *, .}");
                        Mask::all_relevant(size)
                    }
                },
                None => Mask::all_relevant(size),
            };
            if broken {
                self.broken_regs.insert(name.clone());
            }
            let id = RegId(self.registers.len());
            self.reg_names.insert(name.clone(), id);
            self.registers.push(RegisterDef {
                name: name.clone(),
                size: size.clamp(1, 64),
                read_port,
                write_port,
                mask,
                pre: Vec::new(), // resolved in pre_actions_pass
            });
        }
    }

    // ----- layer 3: variables ----------------------------------------------

    fn variables_pass(&mut self, spec: &DeviceSpec) {
        for (index, v) in spec.variables().enumerate() {
            let name = &v.name.name;
            if self.port_names.contains_key(name)
                || self.reg_names.contains_key(name)
                || self.var_names.contains_key(name)
            {
                self.intra(v.name.span, format!("`{name}` is already defined"));
            }
            let mut frags = Vec::new();
            let mut width = 0u32;
            let mut all_readable = true;
            let mut all_writable = true;
            let mut unresolved = false;
            for f in &v.frags {
                let Some(&rid) = self.reg_names.get(&f.register.name) else {
                    if self.var_names.contains_key(&f.register.name)
                        || self.port_names.contains_key(&f.register.name)
                    {
                        self.intra(
                            f.register.span,
                            format!(
                                "`{}` is not a register (variables are built from registers)",
                                f.register.name
                            ),
                        );
                    } else {
                        self.intra(
                            f.register.span,
                            format!("unknown register `{}`", f.register.name),
                        );
                    }
                    unresolved = true;
                    continue;
                };
                let rdef = &self.registers[rid.0];
                let (msb, lsb) = match &f.bits {
                    Some(b) => (b.msb.value, b.lsb.value),
                    None => ((rdef.size - 1) as u64, 0),
                };
                if msb < lsb {
                    self.intra(
                        f.span,
                        format!("bit range [{msb}..{lsb}] is inverted (write it msb..lsb)"),
                    );
                    unresolved = true;
                    continue;
                }
                if msb >= rdef.size as u64 {
                    self.intra(
                        f.span,
                        format!(
                            "bit {msb} is outside register `{}` (bit[{}])",
                            rdef.name, rdef.size
                        ),
                    );
                    unresolved = true;
                    continue;
                }
                all_readable &= rdef.readable();
                all_writable &= rdef.writable();
                let frag = FragmentDef { reg: rid, msb: msb as u32, lsb: lsb as u32 };
                width += frag.width();
                frags.push(frag);
            }

            let ty = self.resolve_type(&v.ty, width, unresolved);

            // Direction: intersect register capabilities with what the type's
            // mappings allow.
            let (ty_reads, ty_writes) = match &ty {
                VarType::Enum { arms } => (
                    arms.iter().any(|(_, d, _)| *d != MappingDir::Write),
                    arms.iter().any(|(_, d, _)| *d != MappingDir::Read),
                ),
                _ => (true, true),
            };
            if let VarType::Enum { arms } = &ty {
                if !unresolved {
                    if !all_readable && arms.iter().any(|(_, d, _)| *d == MappingDir::Read) {
                        self.inter(
                            v.ty.span(),
                            format!(
                                "type of `{name}` has read-only mappings (`<=`) but the variable is not readable"
                            ),
                        );
                    }
                    if !all_writable && arms.iter().any(|(_, d, _)| *d == MappingDir::Write) {
                        self.inter(
                            v.ty.span(),
                            format!(
                                "type of `{name}` has write-only mappings (`=>`) but the variable is not writable"
                            ),
                        );
                    }
                    if !all_readable
                        && !all_writable
                        && arms.iter().any(|(_, d, _)| *d == MappingDir::Both)
                    {
                        self.inter(
                            v.ty.span(),
                            format!("`<=>` mappings on `{name}` need a readable or writable register"),
                        );
                    }
                }
            }
            let readable = all_readable && ty_reads && !frags.is_empty();
            let writable = all_writable && ty_writes && !frags.is_empty();
            if !unresolved && !readable && !writable {
                self.inter(
                    v.name.span,
                    format!("variable `{name}` is neither readable nor writable"),
                );
            }

            // Read mappings must be exhaustive over the variable's width.
            if let VarType::Enum { arms } = &ty {
                if readable && width > 0 && width <= 16 && !unresolved {
                    let covered: HashSet<u64> = arms
                        .iter()
                        .filter(|(_, d, _)| *d != MappingDir::Write)
                        .map(|(_, _, val)| *val)
                        .collect();
                    let total = 1u64 << width;
                    if (covered.len() as u64) < total {
                        self.inter(
                            v.ty.span(),
                            format!(
                                "read mapping of `{name}` covers {} of {total} possible {width}-bit values; \
                                 read mappings must be exhaustive",
                                covered.len()
                            ),
                        );
                    }
                }
            }

            if let Some((dir, tspan)) = &v.trigger {
                let ok = match dir {
                    Direction::Read => readable,
                    Direction::Write => writable,
                };
                if !ok && !unresolved {
                    self.inter(
                        *tspan,
                        format!(
                            "`{} trigger` on `{name}` requires the variable to be {}able",
                            match dir {
                                Direction::Read => "read",
                                Direction::Write => "write",
                            },
                            match dir {
                                Direction::Read => "read",
                                Direction::Write => "write",
                            }
                        ),
                    );
                }
            }

            let id = VarId(self.variables.len());
            self.var_names.entry(name.clone()).or_insert(id);
            self.variables.push(VariableDef {
                name: name.clone(),
                private: v.private,
                volatile: v.volatile,
                trigger: v.trigger.map(|t| t.0),
                frags,
                ty,
                width,
                readable,
                writable,
                type_id: index as u32 + 1,
            });
        }
    }

    fn resolve_type(&mut self, ty: &TypeExpr, width: u32, unresolved: bool) -> VarType {
        match ty {
            TypeExpr::Int { signed, bits, span } => {
                if !unresolved && bits.value != width as u64 {
                    self.intra(
                        *span,
                        format!(
                            "type int({}) does not match the {width} bit(s) selected from the registers",
                            bits.value
                        ),
                    );
                }
                VarType::Int { signed: *signed, bits: bits.value as u32 }
            }
            TypeExpr::Bool { span } => {
                if !unresolved && width != 1 {
                    self.intra(*span, format!("bool requires exactly 1 bit, got {width}"));
                }
                VarType::Bool
            }
            TypeExpr::Enum { arms, span } => {
                let mut seen_patterns: HashMap<(bool, u64), String> = HashMap::new();
                let mut out = Vec::new();
                for arm in arms {
                    // Symbolic names are globally unique (§2.2): they become
                    // file-scope constants in the generated C.
                    if !self.symbol_names.insert(arm.name.name.clone()) {
                        self.intra(
                            arm.name.span,
                            format!("symbolic name `{}` is already defined", arm.name.name),
                        );
                    }
                    let pat = &arm.pattern.pattern;
                    if pat.chars().any(|c| c != '0' && c != '1') {
                        self.intra(
                            arm.pattern.span,
                            "enum bit patterns may contain only 0 and 1",
                        );
                        continue;
                    }
                    if !unresolved && pat.len() != width as usize {
                        self.intra(
                            arm.pattern.span,
                            format!(
                                "bit pattern '{pat}' has {} bits but `{}` selects {width}",
                                pat.len(),
                                arm.name.name
                            ),
                        );
                    }
                    let value = u64::from_str_radix(pat, 2).unwrap_or(0);
                    // A pattern may legitimately appear once for reading and
                    // once for writing, but not twice in the same direction.
                    for dirread in [true, false] {
                        let applies = match arm.mapping {
                            MappingDir::Both => true,
                            MappingDir::Read => dirread,
                            MappingDir::Write => !dirread,
                        };
                        if applies {
                            if let Some(prev) =
                                seen_patterns.insert((dirread, value), arm.name.name.clone())
                            {
                                self.intra(
                                    arm.pattern.span,
                                    format!(
                                        "bit pattern '{pat}' is mapped to both `{prev}` and `{}`",
                                        arm.name.name
                                    ),
                                );
                            }
                        }
                    }
                    out.push((arm.name.name.clone(), arm.mapping, value));
                }
                if out.is_empty() {
                    self.intra(*span, "enumerated type has no valid arms");
                }
                VarType::Enum { arms: out }
            }
            TypeExpr::IntSet { items, span } => {
                let mut values = Vec::new();
                for item in items {
                    if let ast::SetItem::Range(lo, hi) = item {
                        if lo.value > hi.value {
                            self.intra(
                                item.span(),
                                format!("set range {}..{} is inverted", lo.value, hi.value),
                            );
                        }
                    }
                    for v in item.values() {
                        if values.contains(&v) {
                            self.intra(
                                item.span(),
                                format!("value {v} appears twice in the integer set"),
                            );
                        } else {
                            if !unresolved && width < 64 && v >= (1u64 << width) {
                                self.intra(
                                    item.span(),
                                    format!("value {v} does not fit in the {width} selected bit(s)"),
                                );
                            }
                            values.push(v);
                        }
                    }
                }
                if values.is_empty() {
                    self.intra(*span, "integer set type is empty");
                }
                values.sort_unstable();
                VarType::IntSet { values }
            }
        }
    }

    // ----- pre-actions -----------------------------------------------------

    fn pre_actions_pass(&mut self, spec: &DeviceSpec) {
        // Resolve each register's pre-actions now that variables exist.
        for r in spec.registers() {
            let Some(&rid) = self.reg_names.get(&r.name.name) else { continue };
            let mut resolved = Vec::new();
            for pa in &r.pre {
                let Some(&vid) = self.var_names.get(&pa.var.name) else {
                    self.inter(
                        pa.var.span,
                        format!("pre-action references unknown variable `{}`", pa.var.name),
                    );
                    continue;
                };
                let vdef = self.variables[vid.0].clone();
                if !vdef.writable {
                    self.inter(
                        pa.var.span,
                        format!("pre-action variable `{}` is not writable", vdef.name),
                    );
                }
                let ok = match &vdef.ty {
                    VarType::Enum { arms } => arms
                        .iter()
                        .any(|(_, d, v)| *d != MappingDir::Read && *v == pa.value.value),
                    VarType::IntSet { values } => values.contains(&pa.value.value),
                    VarType::Int { .. } | VarType::Bool => {
                        vdef.width >= 64 || pa.value.value < (1u64 << vdef.width)
                    }
                };
                if !ok {
                    self.inter(
                        pa.value.span,
                        format!(
                            "pre-action value {} is not a legal value of `{}` ({})",
                            pa.value.value,
                            vdef.name,
                            vdef.ty.describe()
                        ),
                    );
                }
                // The pre-action variable must not live (even partly) in the
                // register it guards — that would be circular.
                if self.variables[vid.0].frags.iter().any(|f| f.reg == rid) {
                    self.inter(
                        pa.span,
                        format!(
                            "pre-action on register `{}` uses variable `{}` stored in that same register",
                            r.name.name, pa.var.name
                        ),
                    );
                }
                resolved.push((vid, pa.value.value));
            }
            self.registers[rid.0].pre = resolved;
        }
        // Deeper cycles: register -> pre var -> that var's registers -> ...
        self.detect_pre_cycles(spec);
    }

    fn detect_pre_cycles(&mut self, spec: &DeviceSpec) {
        let n = self.registers.len();
        // adjacency: register i depends on register j if a pre-var of i is
        // stored in j.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, r) in self.registers.iter().enumerate() {
            for (vid, _) in &r.pre {
                for f in &self.variables[vid.0].frags {
                    adj[i].push(f.reg.0);
                }
            }
        }
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        fn dfs(u: usize, adj: &[Vec<usize>], state: &mut [u8]) -> bool {
            state[u] = 1;
            for &v in &adj[u] {
                if state[v] == 1 || (state[v] == 0 && dfs(v, adj, state)) {
                    return true;
                }
            }
            state[u] = 2;
            false
        }
        for i in 0..n {
            if state[i] == 0 && dfs(i, &adj, &mut state) {
                let span = spec
                    .registers()
                    .nth(i)
                    .map(|r| r.name.span)
                    .unwrap_or_default();
                self.inter(
                    span,
                    format!(
                        "pre-actions of register `{}` form a dependency cycle",
                        self.registers[i].name
                    ),
                );
                return; // one report is enough
            }
        }
    }

    // ----- no omission -----------------------------------------------------

    fn omission_checks(&mut self, spec: &DeviceSpec) {
        if !self.broken_regs.is_empty() {
            // Unresolved registers make usage accounting unreliable.
            return;
        }
        // Every port parameter and every ranged offset must be used.
        let mut used_offsets: HashMap<PortId, HashSet<u64>> = HashMap::new();
        for r in &self.registers {
            for p in [r.read_port, r.write_port].into_iter().flatten() {
                used_offsets.entry(p.0).or_default().insert(p.1);
            }
        }
        let port_errors: Vec<(Span, String)> = spec
            .params
            .iter()
            .enumerate()
            .flat_map(|(i, p)| {
                let pid = PortId(i);
                let used = used_offsets.get(&pid);
                match used {
                    None => vec![(
                        p.name.span,
                        format!("port parameter `{}` is never used by any register", p.name.name),
                    )],
                    Some(set) => {
                        let (lo, hi) = self.ports[pid.0].range;
                        let missing: Vec<u64> =
                            (lo..=hi).filter(|off| !set.contains(off)).collect();
                        if missing.is_empty() {
                            vec![]
                        } else {
                            vec![(
                                p.name.span,
                                format!(
                                    "offsets {missing:?} of port `{}` are declared in its range but never used",
                                    p.name.name
                                ),
                            )]
                        }
                    }
                }
            })
            .collect();
        for (span, msg) in port_errors {
            self.inter(span, msg);
        }

        // Every register must be used by a variable, and every relevant bit
        // must be covered; fragments may only select relevant bits.
        let mut bit_use: HashMap<RegId, u64> = HashMap::new();
        for v in &self.variables {
            for f in &v.frags {
                *bit_use.entry(f.reg).or_insert(0) |= f.reg_mask();
            }
        }
        let reg_spans: HashMap<String, Span> = spec
            .registers()
            .map(|r| (r.name.name.clone(), r.name.span))
            .collect();
        let frag_errors: Vec<(Span, String)> = self
            .registers
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let span = reg_spans.get(&r.name).copied().unwrap_or_default();
                let relevant = r.mask.relevant();
                if relevant == 0 {
                    // A fully fixed/irrelevant register (a reserved slot)
                    // has nothing for a variable to use.
                    return None;
                }
                let used = bit_use.get(&RegId(i)).copied().unwrap_or(0);
                if used == 0 {
                    return Some((
                        span,
                        format!("register `{}` is never used by any variable", r.name),
                    ));
                }
                let uncovered = relevant & !used;
                if uncovered != 0 {
                    return Some((
                        span,
                        format!(
                            "relevant bits {:#b} of register `{}` are not used by any variable",
                            uncovered, r.name
                        ),
                    ));
                }
                None
            })
            .collect();
        for (span, msg) in frag_errors {
            self.inter(span, msg);
        }

        // Fragments selecting fixed or irrelevant bits.
        for v in spec.variables() {
            for f in &v.frags {
                let Some(&rid) = self.reg_names.get(&f.register.name) else { continue };
                let rdef = &self.registers[rid.0];
                let (msb, lsb) = match &f.bits {
                    Some(b) => (b.msb.value, b.lsb.value),
                    None => ((rdef.size - 1) as u64, 0),
                };
                if msb < lsb || msb >= rdef.size as u64 {
                    continue; // already reported
                }
                let sel = FragmentDef { reg: rid, msb: msb as u32, lsb: lsb as u32 }.reg_mask();
                let bad = sel & !rdef.mask.relevant();
                if bad != 0 {
                    let msg = format!(
                        "fragment selects bits {bad:#b} of `{}` that its mask '{}' marks as fixed or irrelevant",
                        rdef.name, rdef.mask
                    );
                    self.inter(f.span, msg);
                }
            }
        }
    }

    // ----- no overlap ------------------------------------------------------

    fn overlap_checks(&mut self, spec: &DeviceSpec) {
        if !self.broken_regs.is_empty() {
            return;
        }
        // Port sharing: group register uses by (port, offset, direction).
        let mut by_endpoint: HashMap<(PortId, u64, Direction), Vec<RegId>> = HashMap::new();
        for (i, r) in self.registers.iter().enumerate() {
            if let Some(p) = r.read_port {
                by_endpoint.entry((p.0, p.1, Direction::Read)).or_default().push(RegId(i));
            }
            if let Some(p) = r.write_port {
                by_endpoint.entry((p.0, p.1, Direction::Write)).or_default().push(RegId(i));
            }
        }
        let reg_spans: HashMap<String, Span> = spec
            .registers()
            .map(|r| (r.name.name.clone(), r.name.span))
            .collect();
        let mut overlap_errors: Vec<(Span, String)> = Vec::new();
        for ((pid, off, dir), regs) in &by_endpoint {
            for (ai, &a) in regs.iter().enumerate() {
                for &b in &regs[ai + 1..] {
                    let ra = &self.registers[a.0];
                    let rb = &self.registers[b.0];
                    let masks_disjoint = ra.mask.relevant() & rb.mask.relevant() == 0;
                    let pre_disjoint = ra.pre.iter().any(|(va, xa)| {
                        rb.pre.iter().any(|(vb, xb)| va == vb && xa != xb)
                    });
                    if !masks_disjoint && !pre_disjoint {
                        let span = reg_spans.get(&rb.name).copied().unwrap_or_default();
                        overlap_errors.push((
                            span,
                            format!(
                                "registers `{}` and `{}` both {} port `{}`@{} without disjoint masks or pre-actions",
                                ra.name,
                                rb.name,
                                match dir {
                                    Direction::Read => "read",
                                    Direction::Write => "write",
                                },
                                self.ports[pid.0].name,
                                off
                            ),
                        ));
                    }
                }
            }
        }
        for (span, msg) in overlap_errors {
            self.inter(span, msg);
        }

        // Register-bit sharing between variables.
        let mut claimed: HashMap<RegId, Vec<(u64, String)>> = HashMap::new();
        let mut bit_errors: Vec<(Span, String)> = Vec::new();
        for (v, vast) in self.variables.iter().zip(spec.variables()) {
            for (f, fast) in v.frags.iter().zip(vast.frags.iter()) {
                let mask = f.reg_mask();
                let entry = claimed.entry(f.reg).or_default();
                if let Some((_, other)) = entry
                    .iter()
                    .find(|(other_mask, other_var)| other_mask & mask != 0 && *other_var != v.name)
                {
                    bit_errors.push((
                        fast.span,
                        format!(
                            "bits of register `{}` are used by both `{}` and `{}`",
                            self.registers[f.reg.0].name, other, v.name
                        ),
                    ));
                }
                entry.push((mask, v.name.clone()));
            }
        }
        for (span, msg) in bit_errors {
            self.inter(span, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedSpec, Vec<DevilError>> {
        check(&parse(src).expect("test source must parse"))
    }

    fn errors(src: &str) -> Vec<String> {
        match check_src(src) {
            Ok(_) => Vec::new(),
            Err(es) => es.into_iter().map(|e| e.message).collect(),
        }
    }

    const BUSMOUSE: &str = r#"
device logitech_busmouse (base : bit[8] port @ {0..3})
{
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);
  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];
  variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
  variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
  variable buttons = y_high[7..5], volatile : int(3);
}
"#;

    #[test]
    fn busmouse_checks_clean() {
        let checked = check_src(BUSMOUSE).unwrap();
        assert_eq!(checked.registers.len(), 8);
        assert_eq!(checked.variables.len(), 7);
        let (_, dx) = checked.variable("dx").unwrap();
        assert_eq!(dx.width, 8);
        assert_eq!(dx.frags.len(), 2);
        assert!(dx.readable);
        assert!(!dx.writable);
        let (_, index) = checked.variable("index").unwrap();
        assert!(index.private);
        assert!(index.writable);
        let (_, x_low) = checked.register("x_low").unwrap();
        assert_eq!(x_low.pre.len(), 1);
    }

    #[test]
    fn detects_duplicate_register() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0 : bit[8];
               register r = base @ 0 : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("already defined")), "{es:?}");
    }

    #[test]
    fn detects_offset_out_of_range() {
        let es = errors(
            "device d (base : bit[8] port @ {0..1}) {
               register r = base @ 2 : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("outside the declared range")), "{es:?}");
    }

    #[test]
    fn detects_unknown_port() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = bose @ 0 : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("not a declared port")), "{es:?}");
    }

    #[test]
    fn detects_mask_size_mismatch() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '....' : bit[8];
               variable v = r[3..0] : int(4);
             }",
        );
        assert!(es.iter().any(|m| m.contains("mask")), "{es:?}");
    }

    #[test]
    fn detects_type_width_mismatch() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0 : bit[8];
               variable v = r : int(7);
             }",
        );
        assert!(es.iter().any(|m| m.contains("int(7)")), "{es:?}");
    }

    #[test]
    fn detects_pattern_width_mismatch() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '*******.' : bit[8];
               variable v = r[0] : { A <=> '10', B <=> '0' };
             }",
        );
        assert!(es.iter().any(|m| m.contains("bit pattern")), "{es:?}");
    }

    #[test]
    fn detects_duplicate_pattern() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '*******.' : bit[8];
               variable v = r[0] : { A <=> '1', B <=> '1' };
             }",
        );
        assert!(es.iter().any(|m| m.contains("mapped to both")), "{es:?}");
    }

    #[test]
    fn duplicate_pattern_allowed_across_directions() {
        let r = check_src(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '*******.' : bit[8];
               variable v = r[0] : { A <= '1', B => '1', C <= '0' };
             }",
        );
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn detects_non_exhaustive_read_mapping() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '******..' : bit[8];
               variable v = r[1..0] : { A <=> '00', B <=> '01' };
             }",
        );
        assert!(es.iter().any(|m| m.contains("exhaustive")), "{es:?}");
    }

    #[test]
    fn write_only_mapping_need_not_be_exhaustive() {
        let r = check_src(
            "device d (base : bit[8] port @ {0..0}) {
               register r = write base @ 0, mask '******..' : bit[8];
               variable v = r[1..0] : { A => '00', B => '01' };
             }",
        );
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn detects_read_mapping_on_write_only_register() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = write base @ 0, mask '*******.' : bit[8];
               variable v = r[0] : { A <= '1', B => '0' };
             }",
        );
        assert!(es.iter().any(|m| m.contains("not readable")), "{es:?}");
    }

    #[test]
    fn detects_unused_port_offset() {
        let es = errors(
            "device d (base : bit[8] port @ {0..1}) {
               register r = base @ 0 : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("never used")), "{es:?}");
    }

    #[test]
    fn detects_unused_register() {
        let es = errors(
            "device d (base : bit[8] port @ {0..1}) {
               register r = base @ 0 : bit[8];
               register s = base @ 1 : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(
            es.iter().any(|m| m.contains("`s` is never used")),
            "{es:?}"
        );
    }

    #[test]
    fn detects_uncovered_relevant_bits() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0 : bit[8];
               variable v = r[3..0] : int(4);
             }",
        );
        assert!(es.iter().any(|m| m.contains("not used by any variable")), "{es:?}");
    }

    #[test]
    fn detects_fragment_on_fixed_bits() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '0000....' : bit[8];
               variable v = r[4..0] : int(5);
             }",
        );
        assert!(es.iter().any(|m| m.contains("fixed or irrelevant")), "{es:?}");
    }

    #[test]
    fn detects_port_overlap_without_disjointness() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register a = base @ 0 : bit[8];
               register b = base @ 0 : bit[8];
               variable va = a : int(8);
               variable vb = b : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("without disjoint")), "{es:?}");
    }

    #[test]
    fn port_overlap_allowed_with_disjoint_masks() {
        let r = check_src(
            "device d (base : bit[8] port @ {0..0}) {
               register a = write base @ 0, mask '....0000' : bit[8];
               register b = write base @ 0, mask '0000....' : bit[8];
               variable va = a[7..4] : int(4);
               variable vb = b[3..0] : int(4);
             }",
        );
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn port_overlap_allowed_with_disjoint_pre_actions() {
        // This is exactly the busmouse x_low / x_high situation.
        assert!(check_src(BUSMOUSE).is_ok());
    }

    #[test]
    fn read_and_write_may_share_a_port() {
        let r = check_src(
            "device d (base : bit[8] port @ {0..0}) {
               register a = read base @ 0 : bit[8];
               register b = write base @ 0 : bit[8];
               variable va = a : int(8);
               variable vb = b : int(8);
             }",
        );
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn detects_register_bit_claimed_twice() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0 : bit[8];
               variable a = r[4..0] : int(5);
               variable b = r[7..4] : int(4);
             }",
        );
        assert!(es.iter().any(|m| m.contains("used by both")), "{es:?}");
    }

    #[test]
    fn detects_pre_action_value_out_of_type() {
        let es = errors(
            "device d (base : bit[8] port @ {0..1}) {
               register idx = write base @ 1, mask '........' : bit[8];
               private variable sel = idx[1..0] : int(2);
               variable pad = idx[7..2] : int(6);
               register r = read base @ 0, pre {sel = 9} : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("not a legal value")), "{es:?}");
    }

    #[test]
    fn detects_pre_action_unknown_variable() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = read base @ 0, pre {sel = 1} : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("unknown variable")), "{es:?}");
    }

    #[test]
    fn detects_self_referential_pre_action() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, pre {v = 1} : bit[8];
               variable v = r : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("same register")), "{es:?}");
    }

    #[test]
    fn detects_bit_range_beyond_register() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0 : bit[8];
               variable v = r[8..0] : int(9);
             }",
        );
        assert!(es.iter().any(|m| m.contains("outside register")), "{es:?}");
    }

    #[test]
    fn detects_inverted_bit_range() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0 : bit[8];
               variable v = r[0..7] : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("inverted")), "{es:?}");
    }

    #[test]
    fn detects_variable_using_variable() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0 : bit[8];
               variable a = r : int(8);
               variable b = a[0] : bool;
             }",
        );
        assert!(es.iter().any(|m| m.contains("not a register")), "{es:?}");
    }

    #[test]
    fn detects_set_value_too_wide() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '******..' : bit[8];
               variable v = r[1..0] : int {0, 2, 5};
             }",
        );
        assert!(es.iter().any(|m| m.contains("does not fit")), "{es:?}");
    }

    #[test]
    fn bool_type_requires_one_bit() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = base @ 0, mask '******..' : bit[8];
               variable v = r[1..0] : bool;
             }",
        );
        assert!(es.iter().any(|m| m.contains("bool requires")), "{es:?}");
    }

    #[test]
    fn write_trigger_requires_writable() {
        let es = errors(
            "device d (base : bit[8] port @ {0..0}) {
               register r = read base @ 0 : bit[8];
               variable v = r, write trigger : int(8);
             }",
        );
        assert!(es.iter().any(|m| m.contains("trigger")), "{es:?}");
    }

    #[test]
    fn type_ids_are_unique_and_stable() {
        let checked = check_src(BUSMOUSE).unwrap();
        let mut ids: Vec<u32> = checked.variables.iter().map(|v| v.type_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), checked.variables.len());
    }

    #[test]
    fn schematic_renders_layering() {
        let checked = check_src(BUSMOUSE).unwrap();
        let s = checked.render_schematic();
        assert!(s.contains("ports:"), "{s}");
        assert!(s.contains("x_high"), "{s}");
        assert!(s.contains("pre: index = 1"), "{s}");
        assert!(s.contains("dx"), "{s}");
    }
}
