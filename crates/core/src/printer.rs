//! Pretty-printer for Devil ASTs.
//!
//! Emits canonical specification text from a parsed [`DeviceSpec`]; the
//! round-trip `parse → print → parse` is the identity on the AST (modulo
//! spans), which the test suite and the fuzzing harness rely on.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a parsed specification as canonical Devil source.
pub fn print(spec: &DeviceSpec) -> String {
    let mut out = String::new();
    let params: Vec<String> = spec
        .params
        .iter()
        .map(|p| {
            format!(
                "{} : bit[{}] port @ {{{}..{}}}",
                p.name.name, p.width.value, p.range.0.value, p.range.1.value
            )
        })
        .collect();
    let _ = writeln!(out, "device {} ({})", spec.name.name, params.join(", "));
    out.push_str("{\n");
    for item in &spec.items {
        match item {
            Item::Register(r) => print_register(&mut out, r),
            Item::Variable(v) => print_variable(&mut out, v),
        }
    }
    out.push_str("}\n");
    out
}

fn print_register(out: &mut String, r: &RegisterDecl) {
    let mut parts = Vec::new();
    for pc in &r.ports {
        let dir = match pc.direction {
            Some(Direction::Read) => "read ",
            Some(Direction::Write) => "write ",
            None => "",
        };
        parts.push(format!("{dir}{} @ {}", pc.port.name, pc.offset.value));
    }
    if !r.pre.is_empty() {
        let pre: Vec<String> = r
            .pre
            .iter()
            .map(|p| format!("{} = {}", p.var.name, p.value.value))
            .collect();
        parts.push(format!("pre {{{}}}", pre.join(", ")));
    }
    if let Some(m) = &r.mask {
        parts.push(format!("mask '{}'", m.pattern));
    }
    let size = match &r.size {
        Some(s) => format!(" : bit[{}]", s.value),
        None => String::new(),
    };
    let _ = writeln!(out, "  register {} = {}{size};", r.name.name, parts.join(", "));
}

fn print_variable(out: &mut String, v: &VariableDecl) {
    let frags: Vec<String> = v
        .frags
        .iter()
        .map(|f| match &f.bits {
            None => f.register.name.clone(),
            Some(b) if b.msb.value == b.lsb.value => {
                format!("{}[{}]", f.register.name, b.msb.value)
            }
            Some(b) => format!("{}[{}..{}]", f.register.name, b.msb.value, b.lsb.value),
        })
        .collect();
    let mut attrs = String::new();
    if v.volatile {
        attrs.push_str(", volatile");
    }
    if let Some((dir, _)) = &v.trigger {
        attrs.push_str(match dir {
            Direction::Read => ", read trigger",
            Direction::Write => ", write trigger",
        });
    }
    let _ = writeln!(
        out,
        "  {}variable {} = {}{attrs} : {};",
        if v.private { "private " } else { "" },
        v.name.name,
        frags.join(" # "),
        print_type(&v.ty)
    );
}

fn print_type(ty: &TypeExpr) -> String {
    match ty {
        TypeExpr::Int { signed: false, bits, .. } => format!("int({})", bits.value),
        TypeExpr::Int { signed: true, bits, .. } => format!("signed int({})", bits.value),
        TypeExpr::Bool { .. } => "bool".into(),
        TypeExpr::Enum { arms, .. } => {
            let a: Vec<String> = arms
                .iter()
                .map(|arm| {
                    let arrow = match arm.mapping {
                        MappingDir::Write => "=>",
                        MappingDir::Read => "<=",
                        MappingDir::Both => "<=>",
                    };
                    format!("{} {arrow} '{}'", arm.name.name, arm.pattern.pattern)
                })
                .collect();
            format!("{{ {} }}", a.join(", "))
        }
        TypeExpr::IntSet { items, .. } => {
            let a: Vec<String> = items
                .iter()
                .map(|i| match i {
                    SetItem::Value(v) => v.value.to_string(),
                    SetItem::Range(lo, hi) => format!("{}..{}", lo.value, hi.value),
                })
                .collect();
            format!("int {{{}}}", a.join(", "))
        }
    }
}

/// Structural AST equality ignoring spans (for round-trip checks).
pub fn ast_eq(a: &DeviceSpec, b: &DeviceSpec) -> bool {
    print(a) == print(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let ast1 = parse(src).expect("original parses");
        let text = print(&ast1);
        let ast2 = parse(&text).unwrap_or_else(|e| panic!("printed text re-parses: {e}\n{text}"));
        assert!(ast_eq(&ast1, &ast2), "round trip diverged:\n{text}");
        // Printing is a fixed point after one iteration.
        assert_eq!(print(&ast2), text);
    }

    #[test]
    fn round_trips_the_bundled_specs() {
        // Sanity on a subset here; the drivers crate tests cover all five.
        round_trip(
            "device d (b : bit[8] port @ {0..1}) {
               register r = b @ 0 : bit[8];
               register w = write b @ 1, mask '1.0.....' : bit[8];
               variable v = r : int(8);
               variable x = w[6] : { ON <=> '1', OFF <=> '0' };
               private variable y = w[4] : bool;
             }",
        );
    }

    #[test]
    fn prints_all_type_forms() {
        round_trip(
            "device d (b : bit[8] port @ {0..2}) {
               register r = b @ 0 : bit[8];
               register s = read b @ 1, pre {q = 2} : bit[8];
               register t = write b @ 2 : bit[8];
               variable a = r[7..4] : int(4);
               variable q = r[1..0] : int {0, 2..3};
               variable c = r[2] : bool;
               variable d2 = r[3] : signed int(1);
               variable e = s, volatile, read trigger : int(8);
               variable f = t, write trigger : int(8);
             }",
        );
    }

    #[test]
    fn canonical_output_shape() {
        let ast = parse(
            "device   d(b:bit[8]   port@{0..0}){register r=b@0:bit[8];variable v=r:int(8);}",
        )
        .unwrap();
        let text = print(&ast);
        assert_eq!(
            text,
            "device d (b : bit[8] port @ {0..0})\n{\n  register r = b @ 0 : bit[8];\n  variable v = r : int(8);\n}\n"
        );
    }
}
