//! Executable Devil stubs.
//!
//! The Devil compiler's C backend ([`crate::codegen`]) emits textual stubs
//! for a C driver; this module executes the *same semantics* natively
//! against any [`IoBus`] — pre-actions, register caching, mask application,
//! fragment concatenation, and (in [`StubMode::Debug`]) the run-time
//! assertions of §2.3: type-tag checks, value-range checks after reads, and
//! fixed-mask-bit verification.
//!
//! Rust examples, property tests and benches use this runtime; the mutation
//! experiments use the generated C interpreted by `devil-minic`. A
//! differential test in the facade crate checks the two agree access for
//! access.
//!
//! # The compiled access-plan layer
//!
//! The paper's central performance claim is that checked register access
//! is cheap enough to leave enabled in production drivers. To honour that,
//! [`DeviceInstance::new`] *compiles* the bound specification once:
//!
//! * every register gets a [`RegPlan`] — its resolved port address and
//!   width (base + offset folded together) and its mask pre-split into
//!   `relevant` / `fixed_ones` / `fixed_zeros` bit words;
//! * variable and register names are interned into index tables sorted by
//!   name, so the string-keyed API resolves a name with a binary search
//!   over dense IDs instead of a linear scan over `String`s.
//!
//! After construction, the hot paths — [`DeviceInstance::get_by_id`],
//! [`DeviceInstance::set_by_id`], [`DeviceInstance::read_register`] and
//! [`DeviceInstance::write_register`] — operate entirely on borrowed spec
//! data and `Copy` plans: no `clone()`, no `String`, zero heap allocation
//! on success (error paths may allocate; they are off the fast path by
//! definition). The string-keyed [`DeviceInstance::get`] /
//! [`DeviceInstance::set`] remain as thin resolve-then-dispatch wrappers.

use crate::ast::MappingDir;
use crate::ir::{CheckedSpec, RegId, VarId, VarType, VariableDef};
use devil_hwsim::{BusFault, IoBus};
use std::borrow::Cow;
use std::fmt;

/// Whether stubs carry the debug machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StubMode {
    /// Fast path: no run-time checks, values are raw integers.
    Production,
    /// Development path: typed values with tags, assertions on every access.
    #[default]
    Debug,
}

/// A value tagged with its Devil type, mirroring the `{filename, type, val}`
/// struct the debug C backend generates (Figure 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypedValue {
    /// Specification-unique type identifier.
    pub type_id: u32,
    /// Raw bits, zero-extended.
    pub raw: u64,
}

impl TypedValue {
    /// Interpret the raw bits as a signed integer of `width` bits.
    pub fn as_signed(&self, width: u32) -> i64 {
        if width == 0 || width >= 64 {
            return self.raw as i64;
        }
        let sign = 1u64 << (width - 1);
        if self.raw & sign != 0 {
            (self.raw | !((1u64 << width) - 1)) as i64
        } else {
            self.raw as i64
        }
    }
}

impl fmt::Display for TypedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x} (type #{})", self.raw, self.type_id)
    }
}

/// Errors raised by stub execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StubError {
    /// The variable does not exist in the specification.
    UnknownVariable(String),
    /// The register does not exist in the specification.
    UnknownRegister(String),
    /// The symbol does not exist in the variable's enumerated type.
    UnknownSymbol {
        /// Variable name.
        variable: String,
        /// Requested symbol.
        symbol: String,
    },
    /// Attempt to access a private variable from driver code.
    PrivateVariable(String),
    /// Read of a variable that is not readable (or write of a non-writable
    /// one).
    DirectionViolation {
        /// Variable name.
        variable: String,
        /// `"read"` or `"write"`.
        attempted: &'static str,
    },
    /// A debug-mode run-time assertion failed — the paper's
    /// `dil_assert`/panic path.
    Assertion {
        /// Variable or register involved.
        subject: String,
        /// What went wrong.
        message: String,
    },
    /// The underlying bus faulted.
    Bus(BusFault),
}

impl fmt::Display for StubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StubError::UnknownVariable(v) => write!(f, "unknown device variable `{v}`"),
            StubError::UnknownRegister(r) => write!(f, "unknown device register `{r}`"),
            StubError::UnknownSymbol { variable, symbol } => {
                write!(f, "`{symbol}` is not a symbol of variable `{variable}`")
            }
            StubError::PrivateVariable(v) => {
                write!(f, "variable `{v}` is private to the specification")
            }
            StubError::DirectionViolation { variable, attempted } => {
                write!(f, "variable `{variable}` does not support {attempted} access")
            }
            StubError::Assertion { subject, message } => {
                write!(f, "Devil assertion failed on `{subject}`: {message}")
            }
            StubError::Bus(fault) => write!(f, "bus fault: {fault}"),
        }
    }
}

impl std::error::Error for StubError {}

impl From<BusFault> for StubError {
    fn from(fault: BusFault) -> Self {
        StubError::Bus(fault)
    }
}

/// One resolved port endpoint of a register: absolute address and width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PortAccess {
    /// Absolute port address (base + offset, folded at bind time).
    addr: u16,
    /// Data width in bits (8, 16 or 32).
    width: u8,
}

/// A register's compiled access plan: everything the hot path needs,
/// precomputed at [`DeviceInstance::new`] time into `Copy` scalars.
#[derive(Debug, Clone, Copy)]
struct RegPlan {
    /// Resolved read endpoint, if readable.
    read: Option<PortAccess>,
    /// Resolved write endpoint, if writable.
    write: Option<PortAccess>,
    /// Mask bits carrying information (`.`).
    relevant: u64,
    /// Mask bits forced to one on writes / asserted on reads.
    fixed_ones: u64,
    /// Mask bits forced to zero on writes / asserted on reads.
    fixed_zeros: u64,
    /// Whether the register has pre-actions (cheap skip when not).
    has_pre: bool,
}

/// Per-specification name-interning tables, computed once and shared by
/// every [`DeviceInstance`] bound to the same spec.
///
/// Binding an instance sorts the variable and register names so the
/// string-keyed API can binary-search instead of scanning; for campaign
/// workloads that bind thousands of instances of one spec, that sort is
/// most of the bind cost. Compute a `SpecTables` once per spec and hand it
/// to [`DeviceInstance::with_tables`] to pay it exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecTables {
    /// Variable indices sorted by variable name (dense-ID interning).
    vars_by_name: Vec<u32>,
    /// Register indices sorted by register name.
    regs_by_name: Vec<u32>,
}

impl SpecTables {
    /// Sort `spec`'s variable and register names into interning tables.
    pub fn new(spec: &CheckedSpec) -> Self {
        let mut vars_by_name: Vec<u32> = (0..spec.variables.len() as u32).collect();
        vars_by_name.sort_by(|&a, &b| {
            spec.variables[a as usize].name.cmp(&spec.variables[b as usize].name)
        });
        let mut regs_by_name: Vec<u32> = (0..spec.registers.len() as u32).collect();
        regs_by_name.sort_by(|&a, &b| {
            spec.registers[a as usize].name.cmp(&spec.registers[b as usize].name)
        });
        SpecTables { vars_by_name, regs_by_name }
    }
}

/// Captured mutable state of a [`DeviceInstance`]: the per-register write
/// cache. Produced by [`DeviceInstance::state`], consumed by
/// [`DeviceInstance::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceState {
    cache: Vec<u64>,
}

/// An instantiated device interface: a checked specification bound to
/// concrete base ports, with per-register write caches and compiled
/// access plans (see the module docs).
#[derive(Debug, Clone)]
pub struct DeviceInstance<'s> {
    spec: &'s CheckedSpec,
    mode: StubMode,
    cache: Vec<u64>,
    plans: Vec<RegPlan>,
    /// Variable indices sorted by variable name (dense-ID interning);
    /// owned when bound with [`DeviceInstance::new`], borrowed when the
    /// tables are shared via [`DeviceInstance::with_tables`].
    vars_by_name: Cow<'s, [u32]>,
    /// Register indices sorted by register name.
    regs_by_name: Cow<'s, [u32]>,
}

impl<'s> DeviceInstance<'s> {
    /// Bind `spec` to one base port per port parameter, compiling the
    /// per-register access plans and the name-interning tables.
    ///
    /// # Panics
    ///
    /// Panics if `bases` does not provide exactly one base per parameter —
    /// that is a harness bug, not a runtime condition.
    pub fn new(spec: &'s CheckedSpec, bases: &[u16], mode: StubMode) -> Self {
        let tables = SpecTables::new(spec);
        Self::bind(
            spec,
            Cow::Owned(tables.vars_by_name),
            Cow::Owned(tables.regs_by_name),
            bases,
            mode,
        )
    }

    /// Bind `spec` like [`DeviceInstance::new`], but reuse precomputed
    /// interning `tables` instead of re-sorting the names — the cheap bind
    /// path for campaigns instantiating one spec thousands of times.
    ///
    /// # Panics
    ///
    /// Panics if `bases` does not provide exactly one base per parameter,
    /// or if `tables` was computed from a spec with different variable or
    /// register counts.
    pub fn with_tables(
        spec: &'s CheckedSpec,
        tables: &'s SpecTables,
        bases: &[u16],
        mode: StubMode,
    ) -> Self {
        assert_eq!(
            tables.vars_by_name.len(),
            spec.variables.len(),
            "interning tables belong to a different specification"
        );
        assert_eq!(
            tables.regs_by_name.len(),
            spec.registers.len(),
            "interning tables belong to a different specification"
        );
        // Same counts can still hide tables from another spec; a wrong
        // permutation would silently break binary-search name resolution,
        // so verify the sort order where binds are not perf-critical.
        debug_assert!(
            tables
                .vars_by_name
                .windows(2)
                .all(|w| spec.variables[w[0] as usize].name <= spec.variables[w[1] as usize].name)
                && tables
                    .regs_by_name
                    .windows(2)
                    .all(|w| spec.registers[w[0] as usize].name <= spec.registers[w[1] as usize].name),
            "interning tables are not sorted for this specification's names"
        );
        Self::bind(
            spec,
            Cow::Borrowed(tables.vars_by_name.as_slice()),
            Cow::Borrowed(tables.regs_by_name.as_slice()),
            bases,
            mode,
        )
    }

    fn bind(
        spec: &'s CheckedSpec,
        vars_by_name: Cow<'s, [u32]>,
        regs_by_name: Cow<'s, [u32]>,
        bases: &[u16],
        mode: StubMode,
    ) -> Self {
        assert_eq!(
            bases.len(),
            spec.ports.len(),
            "expected one base port per port parameter"
        );
        let resolve = |end: Option<(crate::ir::PortId, u64)>| {
            end.map(|(pid, off)| PortAccess {
                addr: bases[pid.0].wrapping_add(off as u16),
                width: spec.ports[pid.0].width as u8,
            })
        };
        let plans = spec
            .registers
            .iter()
            .map(|r| RegPlan {
                read: resolve(r.read_port),
                write: resolve(r.write_port),
                relevant: r.mask.relevant(),
                fixed_ones: r.mask.fixed_ones(),
                fixed_zeros: r.mask.fixed_zeros(),
                has_pre: !r.pre.is_empty(),
            })
            .collect();
        DeviceInstance {
            spec,
            mode,
            cache: vec![0; spec.registers.len()],
            plans,
            vars_by_name,
            regs_by_name,
        }
    }

    /// The specification this instance executes.
    pub fn spec(&self) -> &CheckedSpec {
        self.spec
    }

    /// The stub mode.
    pub fn mode(&self) -> StubMode {
        self.mode
    }

    /// Forget all cached register state, as if the instance had just been
    /// bound. Allocation-free; the campaign engine calls this when reusing
    /// one bound instance across mutants.
    pub fn reset(&mut self) {
        self.cache.fill(0);
    }

    /// Capture the instance's mutable state (the register write cache).
    pub fn state(&self) -> InstanceState {
        InstanceState { cache: self.cache.clone() }
    }

    /// Restore state captured by [`DeviceInstance::state`] from an
    /// identically shaped instance. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `state` was captured from an instance of a different
    /// specification (register counts differ).
    pub fn restore(&mut self, state: &InstanceState) {
        self.cache.copy_from_slice(&state.cache);
    }

    /// Resolve a variable name to its dense ID without allocating.
    ///
    /// # Errors
    ///
    /// [`StubError::UnknownVariable`] when no variable has this name.
    pub fn var_id(&self, name: &str) -> Result<VarId, StubError> {
        let spec = self.spec;
        self.vars_by_name
            .binary_search_by(|&i| spec.variables[i as usize].name.as_str().cmp(name))
            .map(|pos| VarId(self.vars_by_name[pos] as usize))
            .map_err(|_| StubError::UnknownVariable(name.into()))
    }

    /// Resolve a register name to its dense ID without allocating.
    ///
    /// # Errors
    ///
    /// [`StubError::UnknownRegister`] when no register has this name.
    pub fn register_id(&self, name: &str) -> Result<RegId, StubError> {
        let spec = self.spec;
        self.regs_by_name
            .binary_search_by(|&i| spec.registers[i as usize].name.as_str().cmp(name))
            .map(|pos| RegId(self.regs_by_name[pos] as usize))
            .map_err(|_| StubError::UnknownRegister(name.into()))
    }

    /// Construct the typed value for an enumerated symbol, e.g.
    /// `value_of("Drive", "MASTER")`.
    ///
    /// # Errors
    ///
    /// Fails when the variable or symbol does not exist.
    pub fn value_of(&self, variable: &str, symbol: &str) -> Result<TypedValue, StubError> {
        let v = &self.spec.variables[self.var_id(variable)?.0];
        match &v.ty {
            VarType::Enum { arms } => arms
                .iter()
                .find(|(name, _, _)| name == symbol)
                .map(|(_, _, val)| TypedValue { type_id: v.type_id, raw: *val })
                .ok_or_else(|| StubError::UnknownSymbol {
                    variable: variable.into(),
                    symbol: symbol.into(),
                }),
            _ => Err(StubError::UnknownSymbol {
                variable: variable.into(),
                symbol: symbol.into(),
            }),
        }
    }

    /// Construct a typed integer value for `variable` (the `mk_<var>`
    /// constructor of the generated C).
    ///
    /// # Errors
    ///
    /// Fails when the variable does not exist.
    pub fn int_value(&self, variable: &str, value: u64) -> Result<TypedValue, StubError> {
        let v = &self.spec.variables[self.var_id(variable)?.0];
        Ok(TypedValue { type_id: v.type_id, raw: value })
    }

    /// Read a public device variable — the `get_<var>` stub.
    ///
    /// Thin wrapper over [`DeviceInstance::get_by_id`]: resolve, dispatch.
    ///
    /// # Errors
    ///
    /// Propagates bus faults and, in debug mode, raises
    /// [`StubError::Assertion`] when the value read violates the variable's
    /// type or a register's fixed mask bits.
    pub fn get<B: IoBus>(&mut self, bus: &mut B, variable: &str) -> Result<TypedValue, StubError> {
        let vid = self.var_id(variable)?;
        self.get_by_id(bus, vid)
    }

    /// Write a public device variable — the `set_<var>` stub.
    ///
    /// Thin wrapper over [`DeviceInstance::set_by_id`]: resolve, dispatch.
    ///
    /// # Errors
    ///
    /// Propagates bus faults; in debug mode raises [`StubError::Assertion`]
    /// on a type-tag mismatch (the `dil_eq`-style check) or an illegal value.
    pub fn set<B: IoBus>(
        &mut self,
        bus: &mut B,
        variable: &str,
        value: TypedValue,
    ) -> Result<(), StubError> {
        let vid = self.var_id(variable)?;
        self.set_by_id(bus, vid, value)
    }

    fn variable_def(&self, vid: VarId) -> &'s VariableDef {
        &self.spec.variables[vid.0]
    }

    /// Read a public device variable by dense ID — the allocation-free
    /// fast path behind [`DeviceInstance::get`].
    ///
    /// # Errors
    ///
    /// Rejects private or non-readable variables; propagates bus faults;
    /// in debug mode raises [`StubError::Assertion`] on illegal values.
    pub fn get_by_id<B: IoBus>(&mut self, bus: &mut B, vid: VarId) -> Result<TypedValue, StubError> {
        let v = self.variable_def(vid);
        if v.private {
            return Err(StubError::PrivateVariable(v.name.clone()));
        }
        if !v.readable {
            return Err(StubError::DirectionViolation {
                variable: v.name.clone(),
                attempted: "read",
            });
        }
        self.read_var(bus, vid)
    }

    /// Write a public device variable by dense ID — the allocation-free
    /// fast path behind [`DeviceInstance::set`].
    ///
    /// # Errors
    ///
    /// Rejects private or non-writable variables and (in debug mode) type
    /// tag or value violations; propagates bus faults.
    pub fn set_by_id<B: IoBus>(
        &mut self,
        bus: &mut B,
        vid: VarId,
        value: TypedValue,
    ) -> Result<(), StubError> {
        let v = self.variable_def(vid);
        if v.private {
            return Err(StubError::PrivateVariable(v.name.clone()));
        }
        if !v.writable {
            return Err(StubError::DirectionViolation {
                variable: v.name.clone(),
                attempted: "write",
            });
        }
        if self.mode == StubMode::Debug {
            if value.type_id != v.type_id {
                return Err(StubError::Assertion {
                    subject: v.name.clone(),
                    message: format!(
                        "type tag mismatch: value has type #{}, variable has type #{}",
                        value.type_id, v.type_id
                    ),
                });
            }
            self.assert_value_legal(v.name.as_str(), &v.ty, v.width, value.raw, false)?;
        }
        self.write_var(bus, vid, value.raw)
    }

    /// Fragment-concatenating read, shared by the public paths and the
    /// pre-action machinery (which may touch private variables).
    fn read_var<B: IoBus>(&mut self, bus: &mut B, vid: VarId) -> Result<TypedValue, StubError> {
        let v = self.variable_def(vid);
        let mut raw = 0u64;
        for frag in &v.frags {
            let reg_val = self.read_register(bus, frag.reg)?;
            let w = frag.width();
            let bits = (reg_val >> frag.lsb) & mask_of(w);
            raw = (raw << w) | bits;
        }
        if self.mode == StubMode::Debug {
            self.assert_value_legal(&v.name, &v.ty, v.width, raw, true)?;
        }
        Ok(TypedValue { type_id: v.type_id, raw })
    }

    /// Fragment-scattering write, shared by the public paths and the
    /// pre-action machinery (which may touch private variables).
    fn write_var<B: IoBus>(&mut self, bus: &mut B, vid: VarId, raw: u64) -> Result<(), StubError> {
        let v = self.variable_def(vid);
        let mut remaining = v.width;
        for frag in &v.frags {
            let w = frag.width();
            remaining -= w;
            let bits = (raw >> remaining) & mask_of(w);
            self.write_register_bits(bus, frag.reg, frag.lsb, w, bits)?;
        }
        Ok(())
    }

    /// Read a register through its read port, honouring pre-actions and
    /// debug-mode fixed-bit assertions — the `reg_get_<r>` stub.
    ///
    /// Operates on the compiled [`RegPlan`]: no clones, no allocation on
    /// success.
    ///
    /// # Errors
    ///
    /// Fails when the register is not readable, on bus faults, or on a
    /// debug-mode mask violation.
    pub fn read_register<B: IoBus>(&mut self, bus: &mut B, reg: RegId) -> Result<u64, StubError> {
        let plan = self.plans[reg.0];
        let Some(pa) = plan.read else {
            return Err(StubError::DirectionViolation {
                variable: self.spec.registers[reg.0].name.clone(),
                attempted: "read",
            });
        };
        if plan.has_pre {
            self.run_pre_actions(bus, reg)?;
        }
        let value = match pa.width {
            8 => bus.inb(pa.addr)? as u64,
            16 => bus.inw(pa.addr)? as u64,
            _ => bus.inl(pa.addr)? as u64,
        };
        if self.mode == StubMode::Debug
            && ((value & plan.fixed_ones) != plan.fixed_ones || (value & plan.fixed_zeros) != 0)
        {
            let r = &self.spec.registers[reg.0];
            return Err(StubError::Assertion {
                subject: r.name.clone(),
                message: format!(
                    "read value {value:#x} violates mask '{}' — specification or device is wrong",
                    r.mask
                ),
            });
        }
        Ok(value)
    }

    /// Write a whole register through its write port (mask applied) — the
    /// `reg_set_<r>` stub.
    ///
    /// Operates on the compiled [`RegPlan`]: no clones, no allocation on
    /// success.
    ///
    /// # Errors
    ///
    /// Fails when the register is not writable or on bus faults.
    pub fn write_register<B: IoBus>(
        &mut self,
        bus: &mut B,
        reg: RegId,
        value: u64,
    ) -> Result<(), StubError> {
        let plan = self.plans[reg.0];
        let Some(pa) = plan.write else {
            return Err(StubError::DirectionViolation {
                variable: self.spec.registers[reg.0].name.clone(),
                attempted: "write",
            });
        };
        if plan.has_pre {
            self.run_pre_actions(bus, reg)?;
        }
        let wire = (value & plan.relevant) | plan.fixed_ones;
        match pa.width {
            8 => bus.outb(pa.addr, wire as u8)?,
            16 => bus.outw(pa.addr, wire as u16)?,
            _ => bus.outl(pa.addr, wire as u32)?,
        }
        self.cache[reg.0] = value & plan.relevant;
        Ok(())
    }

    fn write_register_bits<B: IoBus>(
        &mut self,
        bus: &mut B,
        reg: RegId,
        lsb: u32,
        width: u32,
        bits: u64,
    ) -> Result<(), StubError> {
        let frag_mask = mask_of(width) << lsb;
        let full = frag_mask == self.plans[reg.0].relevant;
        let value = if full {
            bits << lsb
        } else {
            // Partial update: merge with the cached relevant bits, exactly
            // like the generated `cache.cache_<reg>` dance of Figure 4.
            (self.cache[reg.0] & !frag_mask) | (bits << lsb)
        };
        self.write_register(bus, reg, value)
    }

    fn run_pre_actions<B: IoBus>(&mut self, bus: &mut B, reg: RegId) -> Result<(), StubError> {
        let spec = self.spec;
        for &(vid, value) in &spec.registers[reg.0].pre {
            self.write_var(bus, vid, value)?;
        }
        Ok(())
    }

    fn assert_value_legal(
        &self,
        name: &str,
        ty: &VarType,
        width: u32,
        raw: u64,
        reading: bool,
    ) -> Result<(), StubError> {
        let legal = match ty {
            VarType::Enum { arms } => arms.iter().any(|(_, dir, v)| {
                *v == raw
                    && match dir {
                        MappingDir::Both => true,
                        MappingDir::Read => reading,
                        MappingDir::Write => !reading,
                    }
            }),
            other => other.admits(raw, width),
        };
        if legal {
            Ok(())
        } else {
            Err(StubError::Assertion {
                subject: name.into(),
                message: format!(
                    "{} value {raw:#x} is not a legal {} value",
                    if reading { "read" } else { "written" },
                    ty.describe()
                ),
            })
        }
    }
}

fn mask_of(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use devil_hwsim::devices::Busmouse;
    use devil_hwsim::IoSpace;

    const BUSMOUSE: &str = r#"
device logitech_busmouse (base : bit[8] port @ {0..3})
{
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);
  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];
  variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
  variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
  variable buttons = y_high[7..5], volatile : int(3);
}
"#;

    const BASE: u16 = 0x23C;

    fn setup(_mode: StubMode) -> (IoSpace, devil_hwsim::DeviceId, CheckedSpec) {
        let mut io = IoSpace::new();
        let id = io.map(BASE, 4, Box::new(Busmouse::new())).unwrap();
        let spec = crate::check::check(&parse(BUSMOUSE).unwrap()).unwrap();
        (io, id, spec)
    }

    #[test]
    fn signature_round_trip() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let v = dev.int_value("signature", 0xA5).unwrap();
        dev.set(&mut io, "signature", v).unwrap();
        let back = dev.get(&mut io, "signature").unwrap();
        assert_eq!(back.raw, 0xA5);
    }

    #[test]
    fn motion_read_concatenates_and_signs() {
        let (mut io, id, spec) = setup(StubMode::Debug);
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(-5, 18, 0b011);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let dx = dev.get(&mut io, "dx").unwrap();
        assert_eq!(dx.as_signed(8), -5);
        let (_, vdy) = spec.variable("dy").unwrap();
        assert!(vdy.readable);
        // A fresh frame: inject again because reading dx consumed nothing
        // (only y_high reads latch the frame in the model).
        let dy = dev.get(&mut io, "dy").unwrap();
        assert_eq!(dy.as_signed(8), 18);
        let b = dev.get(&mut io, "buttons").unwrap();
        assert_eq!(b.raw, 0b011);
    }

    #[test]
    fn pre_actions_program_the_index() {
        let (mut io, id, spec) = setup(StubMode::Debug);
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(0x35u8 as i8, 0, 0);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let dx = dev.get(&mut io, "dx").unwrap();
        assert_eq!(dx.raw, 0x35);
        // The index latch must have been driven through index_reg with its
        // fixed bit 7 set; the mouse model only honours index writes when
        // bit 7 is present, so a correct read proves the mask was applied.
    }

    #[test]
    fn enum_set_uses_symbol_values() {
        let (mut io, id, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let enable = dev.value_of("interrupt", "ENABLE").unwrap();
        dev.set(&mut io, "interrupt", enable).unwrap();
        assert!(io.device::<Busmouse>(id).unwrap().interrupts_enabled());
        let disable = dev.value_of("interrupt", "DISABLE").unwrap();
        dev.set(&mut io, "interrupt", disable).unwrap();
        assert!(!io.device::<Busmouse>(id).unwrap().interrupts_enabled());
    }

    #[test]
    fn debug_mode_catches_type_confusion() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        // The classic inattention error: passing interrupt's value to config.
        let wrong = dev.value_of("interrupt", "DISABLE").unwrap();
        let err = dev.set(&mut io, "config", wrong).unwrap_err();
        assert!(matches!(err, StubError::Assertion { .. }), "{err}");
    }

    #[test]
    fn production_mode_misses_type_confusion() {
        let (mut io, _, spec) = setup(StubMode::Production);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Production);
        let wrong = dev.value_of("interrupt", "DISABLE").unwrap();
        // Silently writes the raw bit — the undetectable "Boot" outcome.
        dev.set(&mut io, "config", wrong).unwrap();
    }

    #[test]
    fn debug_mode_checks_value_range() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let too_big = dev.int_value("buttons", 0x9).unwrap(); // 3-bit variable
        let err = dev.set(&mut io, "buttons", too_big);
        // buttons is read-only, so direction fires first; use signature.
        assert!(err.is_err());
        let too_big = dev.int_value("signature", 0x1FF).unwrap();
        let err = dev.set(&mut io, "signature", too_big).unwrap_err();
        assert!(matches!(err, StubError::Assertion { .. }), "{err}");
    }

    #[test]
    fn private_variables_are_fenced() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let err = dev.get(&mut io, "index").unwrap_err();
        assert!(matches!(err, StubError::PrivateVariable(_)));
        let v = TypedValue { type_id: 0, raw: 0 };
        let err = dev.set(&mut io, "index", v).unwrap_err();
        assert!(matches!(err, StubError::PrivateVariable(_)));
    }

    #[test]
    fn direction_violations_reported() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let err = dev.get(&mut io, "config").unwrap_err();
        assert!(matches!(err, StubError::DirectionViolation { attempted: "read", .. }));
        let v = dev.int_value("dx", 1).unwrap();
        let err = dev.set(&mut io, "dx", v).unwrap_err();
        assert!(matches!(err, StubError::DirectionViolation { attempted: "write", .. }));
    }

    #[test]
    fn unknown_names_reported() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        assert!(matches!(
            dev.get(&mut io, "dz").unwrap_err(),
            StubError::UnknownVariable(_)
        ));
        assert!(matches!(
            dev.value_of("interrupt", "NOPE").unwrap_err(),
            StubError::UnknownSymbol { .. }
        ));
    }

    #[test]
    fn signed_extension() {
        let v = TypedValue { type_id: 1, raw: 0xFB };
        assert_eq!(v.as_signed(8), -5);
        let v = TypedValue { type_id: 1, raw: 0x7F };
        assert_eq!(v.as_signed(8), 127);
        let v = TypedValue { type_id: 1, raw: 0x3 };
        assert_eq!(v.as_signed(2), -1);
    }

    #[test]
    fn write_trigger_variable_writes_through() {
        let (mut io, id, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let v = dev.int_value("signature", 0x5A).unwrap();
        dev.set(&mut io, "signature", v).unwrap();
        // Value visible in the device model (port write happened).
        let m = io.device::<Busmouse>(id).unwrap();
        let _ = m; // signature latch asserted via get above in other test
        let back = dev.get(&mut io, "signature").unwrap();
        assert_eq!(back.raw, 0x5A);
    }

    #[test]
    fn shared_tables_resolve_names_identically() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let tables = SpecTables::new(&spec);
        let mut owned = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let mut shared = DeviceInstance::with_tables(&spec, &tables, &[BASE], StubMode::Debug);
        for name in ["signature", "dx", "dy", "buttons", "config", "interrupt", "index"] {
            assert_eq!(owned.var_id(name).ok(), shared.var_id(name).ok(), "{name}");
        }
        assert!(shared.var_id("nope").is_err());
        // Same behaviour end to end.
        let v = shared.int_value("signature", 0x3C).unwrap();
        shared.set(&mut io, "signature", v).unwrap();
        assert_eq!(owned.get(&mut io, "signature").unwrap().raw, 0x3C);
    }

    #[test]
    #[should_panic(expected = "different specification")]
    fn foreign_tables_are_rejected() {
        let (_, _, spec) = setup(StubMode::Debug);
        let other = crate::check::check(
            &parse("device d (b : bit[8] port @ {0..0}) { register r = b @ 0 : bit[8]; variable v = r : int(8); }")
                .unwrap(),
        )
        .unwrap();
        let tables = SpecTables::new(&other);
        let _ = DeviceInstance::with_tables(&spec, &tables, &[BASE], StubMode::Debug);
    }

    #[test]
    fn state_capture_restores_the_write_cache() {
        let (mut io, _, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let dis = dev.value_of("interrupt", "DISABLE").unwrap();
        dev.set(&mut io, "interrupt", dis).unwrap();
        let saved = dev.state();
        // Diverge the cache, then rewind it.
        let ena = dev.value_of("interrupt", "ENABLE").unwrap();
        dev.set(&mut io, "interrupt", ena).unwrap();
        assert_ne!(dev.state(), saved);
        dev.restore(&saved);
        assert_eq!(dev.state(), saved);
        // And reset() forgets everything, like a fresh bind.
        dev.reset();
        assert_eq!(dev.state(), DeviceInstance::new(&spec, &[BASE], StubMode::Debug).state());
    }

    #[test]
    fn partial_write_merges_with_cache() {
        // config is cr[0]; cr has fixed bits. Writing config must not
        // disturb other relevant bits (there are none here, but the cache
        // path is exercised via interrupt/index sharing base@2).
        let (mut io, id, spec) = setup(StubMode::Debug);
        let mut dev = DeviceInstance::new(&spec, &[BASE], StubMode::Debug);
        let dis = dev.value_of("interrupt", "DISABLE").unwrap();
        dev.set(&mut io, "interrupt", dis).unwrap();
        assert!(!io.device::<Busmouse>(id).unwrap().interrupts_enabled());
        // Now reading dx programs the index register (same port base@2)
        // without touching the interrupt gate, because they are distinct
        // registers with disjoint masks.
        let _ = dev.get(&mut io, "dx").unwrap();
        assert!(!io.device::<Busmouse>(id).unwrap().interrupts_enabled());
    }
}
