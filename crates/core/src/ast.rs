//! Abstract syntax tree for Devil specifications.
//!
//! The tree mirrors the three-layer structure of the language (§2.1 of the
//! paper): a device is declared over **port** parameters, **registers** are
//! built from ports, and **device variables** are built from register bits.
//! Every node keeps its [`Span`] so the checker can point at the offending
//! character.

use crate::span::Span;

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The name as written.
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

impl Ident {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident { name: name.into(), span }
    }
}

/// An integer literal with its source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntLit {
    /// Parsed value.
    pub value: u64,
    /// Where it was written.
    pub span: Span,
}

/// A complete device specification (the single top-level construct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Device name (e.g. `logitech_busmouse`).
    pub name: Ident,
    /// Port parameters of the device declaration.
    pub params: Vec<PortParam>,
    /// Register and variable declarations, in source order.
    pub items: Vec<Item>,
    /// Span of the whole declaration.
    pub span: Span,
}

impl DeviceSpec {
    /// Iterate over the register declarations.
    pub fn registers(&self) -> impl Iterator<Item = &RegisterDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Register(r) => Some(r),
            Item::Variable(_) => None,
        })
    }

    /// Iterate over the variable declarations.
    pub fn variables(&self) -> impl Iterator<Item = &VariableDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Variable(v) => Some(v),
            Item::Register(_) => None,
        })
    }
}

/// A port parameter: `base : bit[8] port @ {0..3}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortParam {
    /// Parameter name (`base`).
    pub name: Ident,
    /// Data width in bits (`bit[8]`).
    pub width: IntLit,
    /// Valid offset range (`{0..3}`), inclusive.
    pub range: (IntLit, IntLit),
    /// Span of the whole parameter.
    pub span: Span,
}

/// One item in the device body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A register declaration.
    Register(RegisterDecl),
    /// A device-variable declaration.
    Variable(VariableDecl),
}

/// Access direction of a port clause or value mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Read-only.
    Read,
    /// Write-only.
    Write,
}

/// `register name = [read|write] port @ offset (, attrs)* [: bit[n]] ;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDecl {
    /// Register name.
    pub name: Ident,
    /// Port clauses (one, or one per direction).
    pub ports: Vec<PortClause>,
    /// Optional bit-constraint mask (`mask '1001000.'`).
    pub mask: Option<MaskLit>,
    /// Pre-actions required before each access (`pre {index = 0}`).
    pub pre: Vec<PreAction>,
    /// Declared size (`: bit[8]`); defaults to the port width when omitted.
    pub size: Option<IntLit>,
    /// Span of the whole declaration.
    pub span: Span,
}

/// `[read|write] base @ 3`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortClause {
    /// Direction restriction; `None` means read/write.
    pub direction: Option<Direction>,
    /// Port parameter name.
    pub port: Ident,
    /// Constant offset from the port base.
    pub offset: IntLit,
    /// Span of the clause.
    pub span: Span,
}

/// A quoted mask literal over `{0, 1, *, .}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskLit {
    /// The pattern text, most-significant bit first.
    pub pattern: String,
    /// Where it was written.
    pub span: Span,
}

/// One pre-action: `index = 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreAction {
    /// The (private) variable assigned before the access.
    pub var: Ident,
    /// The value it must hold.
    pub value: IntLit,
    /// Span of the assignment.
    pub span: Span,
}

/// `[private] variable name = frag (# frag)* (, attrs)* : type ;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableDecl {
    /// Whether the variable is private (not exported to the driver API).
    pub private: bool,
    /// Variable name.
    pub name: Ident,
    /// Register fragments, most-significant first (`x_high[3..0] # x_low[3..0]`).
    pub frags: Vec<Fragment>,
    /// Whether the value can change under device control.
    pub volatile: bool,
    /// Access-trigger attribute (`write trigger` / `read trigger`).
    pub trigger: Option<(Direction, Span)>,
    /// The variable's Devil type.
    pub ty: TypeExpr,
    /// Span of the whole declaration.
    pub span: Span,
}

/// A register fragment: `x_high[3..0]`, `index_reg[4]`, or a bare register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Source register.
    pub register: Ident,
    /// Selected bits; `None` selects the whole register.
    pub bits: Option<BitRange>,
    /// Span of the fragment.
    pub span: Span,
}

/// An inclusive bit range `[msb..lsb]` (or a single bit `[n]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRange {
    /// Most significant selected bit.
    pub msb: IntLit,
    /// Least significant selected bit.
    pub lsb: IntLit,
    /// Span including the brackets.
    pub span: Span,
}

impl BitRange {
    /// Number of bits selected (0 when the range is inverted — caught by the
    /// checker).
    pub fn width(&self) -> u64 {
        if self.msb.value >= self.lsb.value {
            self.msb.value - self.lsb.value + 1
        } else {
            0
        }
    }
}

/// A Devil variable type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int(n)` or `signed int(n)`.
    Int {
        /// Whether the value is sign-extended.
        signed: bool,
        /// Width in bits.
        bits: IntLit,
        /// Span of the type expression.
        span: Span,
    },
    /// `bool` — a single bit.
    Bool {
        /// Span of the keyword.
        span: Span,
    },
    /// `{ NAME => '1', ... }` — symbolic value mapping.
    Enum {
        /// The mapping arms.
        arms: Vec<EnumArm>,
        /// Span of the whole block.
        span: Span,
    },
    /// `int { 0, 2..3, 7 }` — a fixed set of allowed integers.
    IntSet {
        /// Set items (values and ranges).
        items: Vec<SetItem>,
        /// Span of the whole type.
        span: Span,
    },
}

impl TypeExpr {
    /// The span of the type expression.
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Int { span, .. }
            | TypeExpr::Bool { span }
            | TypeExpr::Enum { span, .. }
            | TypeExpr::IntSet { span, .. } => *span,
        }
    }
}

/// One arm of an enumerated mapping: `SLAVE <=> '1'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumArm {
    /// Symbolic name.
    pub name: Ident,
    /// Mapping direction (`=>` write, `<=` read, `<=>` both).
    pub mapping: MappingDir,
    /// Bit pattern (over `{0, 1}`), most-significant first.
    pub pattern: MaskLit,
    /// Span of the arm.
    pub span: Span,
}

/// Direction of an enumerated mapping arrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingDir {
    /// `=>` — usable when writing only.
    Write,
    /// `<=` — usable when reading only.
    Read,
    /// `<=>` — usable in both directions.
    Both,
}

/// An item of an integer-set type: a single value or an inclusive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetItem {
    /// A single allowed value.
    Value(IntLit),
    /// An inclusive range of allowed values.
    Range(IntLit, IntLit),
}

impl SetItem {
    /// Enumerate the concrete values of this item (empty when inverted).
    pub fn values(&self) -> Vec<u64> {
        match self {
            SetItem::Value(v) => vec![v.value],
            SetItem::Range(lo, hi) => {
                if lo.value <= hi.value {
                    (lo.value..=hi.value).collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Span of the item.
    pub fn span(&self) -> Span {
        match self {
            SetItem::Value(v) => v.span,
            SetItem::Range(lo, hi) => lo.span.merge(hi.span),
        }
    }
}
