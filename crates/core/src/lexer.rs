//! Tokeniser for the Devil language.
//!
//! Comments use the C++ styles the paper's specifications use (`//` to end
//! of line, `/* ... */`). Integer literals may be decimal or hexadecimal
//! (`0x...`); bit literals are single-quoted strings over `{0, 1, *, .}`.

use crate::error::{DevilError, Stage};
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenise `source` into a vector ending with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`DevilError`] with [`Stage::Lex`] for stray characters,
/// malformed numbers, or unterminated literals/comments.
pub fn lex(source: &str) -> Result<Vec<Token>, DevilError> {
    Lexer { src: source.as_bytes(), pos: 0, tokens: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, DevilError> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.src.len() {
                            return Err(self.error(start, "unterminated block comment"));
                        }
                        if self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                b'\'' => self.bit_literal(start)?,
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'@' => self.single(TokenKind::At),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b':' => self.single(TokenKind::Colon),
                b';' => self.single(TokenKind::Semi),
                b',' => self.single(TokenKind::Comma),
                b'#' => self.single(TokenKind::Hash),
                b'.' if self.peek(1) == Some(b'.') => {
                    self.pos += 2;
                    self.push(start, TokenKind::DotDot);
                }
                b'=' if self.peek(1) == Some(b'>') => {
                    self.pos += 2;
                    self.push(start, TokenKind::FatArrow);
                }
                b'<' if self.peek(1) == Some(b'=') && self.peek(2) == Some(b'>') => {
                    self.pos += 3;
                    self.push(start, TokenKind::BothArrow);
                }
                b'<' if self.peek(1) == Some(b'=') => {
                    self.pos += 2;
                    self.push(start, TokenKind::ReadArrow);
                }
                b'=' => self.single(TokenKind::Eq),
                other => {
                    return Err(self.error(
                        start,
                        format!("unexpected character `{}`", other as char),
                    ));
                }
            }
        }
        let end = self.src.len();
        self.tokens.push(Token { kind: TokenKind::Eof, span: Span::new(end, end) });
        Ok(self.tokens)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn single(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        self.push(start, kind);
    }

    fn push(&mut self, start: usize, kind: TokenKind) {
        self.tokens.push(Token { kind, span: Span::new(start, self.pos) });
    }

    fn error(&self, start: usize, message: impl Into<String>) -> DevilError {
        DevilError::new(Stage::Lex, Span::new(start, (start + 1).min(self.src.len())), message)
    }

    fn bit_literal(&mut self, start: usize) -> Result<(), DevilError> {
        self.pos += 1; // opening quote
        let content_start = self.pos;
        while let Some(c) = self.peek(0) {
            match c {
                b'0' | b'1' | b'*' | b'.' => self.pos += 1,
                b'\'' => {
                    let content =
                        String::from_utf8_lossy(&self.src[content_start..self.pos]).into_owned();
                    self.pos += 1; // closing quote
                    if content.is_empty() {
                        return Err(self.error(start, "empty bit literal"));
                    }
                    self.push(start, TokenKind::BitLiteral(content));
                    return Ok(());
                }
                other => {
                    return Err(self.error(
                        self.pos,
                        format!(
                            "invalid character `{}` in bit literal (expected 0, 1, * or .)",
                            other as char
                        ),
                    ));
                }
            }
        }
        Err(self.error(start, "unterminated bit literal"))
    }

    fn number(&mut self, start: usize) -> Result<(), DevilError> {
        let hex = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x') | Some(b'X'))
            && self.peek(2).is_some_and(|c| c.is_ascii_hexdigit());
        if hex {
            self.pos += 2;
            while self.peek(0).is_some_and(|c| c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // A letter glued to a number is a malformed token, not two tokens.
        if self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            return Err(self.error(start, "malformed integer literal"));
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let value = if hex {
            u64::from_str_radix(&text[2..], 16)
        } else {
            text.parse::<u64>()
        }
        .map_err(|_| self.error(start, "integer literal out of range"))?;
        self.push(start, TokenKind::Int { value, text });
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let kind = match Keyword::from_str(&text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text),
        };
        self.push(start, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_device_header() {
        let ks = kinds("device logitech_busmouse (base : bit[8] port @ {0..3})");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Device));
        assert_eq!(ks[1], TokenKind::Ident("logitech_busmouse".into()));
        assert_eq!(ks[2], TokenKind::LParen);
        assert!(matches!(&ks[7], TokenKind::Int { value: 8, .. }));
        assert_eq!(ks[9], TokenKind::Keyword(Keyword::Port));
        assert_eq!(ks[10], TokenKind::At);
        assert!(ks.contains(&TokenKind::DotDot));
    }

    #[test]
    fn lexes_bit_literals() {
        let ks = kinds("mask '1001000.'");
        assert_eq!(ks[1], TokenKind::BitLiteral("1001000.".into()));
        let ks = kinds("'****....'");
        assert_eq!(ks[0], TokenKind::BitLiteral("****....".into()));
    }

    #[test]
    fn lexes_hex_and_decimal() {
        let ks = kinds("0x1F0 496 0");
        assert!(matches!(&ks[0], TokenKind::Int { value: 0x1F0, text } if text == "0x1F0"));
        assert!(matches!(&ks[1], TokenKind::Int { value: 496, text } if text == "496"));
        assert!(matches!(&ks[2], TokenKind::Int { value: 0, .. }));
    }

    #[test]
    fn lexes_arrows_distinctly() {
        let ks = kinds("a => '1', b <=> '0', c <= '1'");
        assert!(ks.contains(&TokenKind::FatArrow));
        assert!(ks.contains(&TokenKind::BothArrow));
        assert!(ks.contains(&TokenKind::ReadArrow));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("// header comment\nregister /* inline */ r");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Register));
        assert_eq!(ks[1], TokenKind::Ident("r".into()));
    }

    #[test]
    fn keywords_vs_identifiers() {
        let ks = kinds("register registers int ints");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Register));
        assert_eq!(ks[1], TokenKind::Ident("registers".into()));
        assert_eq!(ks[2], TokenKind::Keyword(Keyword::Int));
        assert_eq!(ks[3], TokenKind::Ident("ints".into()));
    }

    #[test]
    fn error_on_stray_character() {
        let err = lex("register $").unwrap_err();
        assert_eq!(err.stage, Stage::Lex);
        assert!(err.message.contains('$'));
    }

    #[test]
    fn error_on_bad_bit_literal_char() {
        let err = lex("'10x1'").unwrap_err();
        assert_eq!(err.stage, Stage::Lex);
    }

    #[test]
    fn error_on_unterminated_literal_and_comment() {
        assert!(lex("'101").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("''").is_err());
    }

    #[test]
    fn error_on_malformed_number() {
        assert!(lex("0xZZ").is_err());
        assert!(lex("12ab").is_err());
    }

    #[test]
    fn spans_are_exact() {
        let toks = lex("ab 0x10").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 7));
        assert_eq!(toks[2].kind, TokenKind::Eof);
    }

    #[test]
    fn dotdot_inside_brackets() {
        let ks = kinds("x_high[3..0]");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x_high".into()),
                TokenKind::LBracket,
                TokenKind::Int { value: 3, text: "3".into() },
                TokenKind::DotDot,
                TokenKind::Int { value: 0, text: "0".into() },
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }
}
