//! Token definitions for the Devil language.

use crate::span::Span;
use std::fmt;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// Keywords of the Devil language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    /// `device` — entry point declaration.
    Device,
    /// `register`.
    Register,
    /// `variable`.
    Variable,
    /// `private` — variable not exported in the functional interface.
    Private,
    /// `volatile` — value changes under the device's control.
    Volatile,
    /// `read` — read direction attribute.
    Read,
    /// `write` — write direction attribute.
    Write,
    /// `mask` — register bit-constraint pattern.
    Mask,
    /// `pre` — access pre-actions.
    Pre,
    /// `trigger` — access-triggering attribute.
    Trigger,
    /// `bit` — bit-vector type constructor.
    Bit,
    /// `int` — integer type constructor.
    Int,
    /// `signed` — signedness modifier.
    Signed,
    /// `bool` — boolean type.
    Bool,
    /// `port` — port parameter marker.
    Port,
}

impl Keyword {
    /// The keyword's source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Device => "device",
            Keyword::Register => "register",
            Keyword::Variable => "variable",
            Keyword::Private => "private",
            Keyword::Volatile => "volatile",
            Keyword::Read => "read",
            Keyword::Write => "write",
            Keyword::Mask => "mask",
            Keyword::Pre => "pre",
            Keyword::Trigger => "trigger",
            Keyword::Bit => "bit",
            Keyword::Int => "int",
            Keyword::Signed => "signed",
            Keyword::Bool => "bool",
            Keyword::Port => "port",
        }
    }

    /// Parse a keyword from its spelling.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not FromStr
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "device" => Keyword::Device,
            "register" => Keyword::Register,
            "variable" => Keyword::Variable,
            "private" => Keyword::Private,
            "volatile" => Keyword::Volatile,
            "read" => Keyword::Read,
            "write" => Keyword::Write,
            "mask" => Keyword::Mask,
            "pre" => Keyword::Pre,
            "trigger" => Keyword::Trigger,
            "bit" => Keyword::Bit,
            "int" => Keyword::Int,
            "signed" => Keyword::Signed,
            "bool" => Keyword::Bool,
            "port" => Keyword::Port,
            _ => return None,
        })
    }
}

/// The different kinds of Devil tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A language keyword.
    Keyword(Keyword),
    /// An identifier (register, variable, type or symbolic name).
    Ident(String),
    /// An integer literal; `text` preserves the exact spelling
    /// (`0x1F0` vs `496`), which the mutation engine needs.
    Int {
        /// Parsed value.
        value: u64,
        /// Original spelling.
        text: String,
    },
    /// A quoted bit literal such as `'1001000.'` — characters from
    /// `{0, 1, *, .}` (masks) or `{0, 1, *}` (bit strings).
    BitLiteral(String),
    /// `@`
    At,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `#` — register concatenation.
    Hash,
    /// `..` — integer range.
    DotDot,
    /// `=>` — write-only value mapping.
    FatArrow,
    /// `<=` — read-only value mapping.
    ReadArrow,
    /// `<=>` — read/write value mapping.
    BothArrow,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int { text, .. } => write!(f, "integer `{text}`"),
            TokenKind::BitLiteral(s) => write!(f, "bit literal '{s}'"),
            TokenKind::At => f.write_str("`@`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Hash => f.write_str("`#`"),
            TokenKind::DotDot => f.write_str("`..`"),
            TokenKind::FatArrow => f.write_str("`=>`"),
            TokenKind::ReadArrow => f.write_str("`<=`"),
            TokenKind::BothArrow => f.write_str("`<=>`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

impl TokenKind {
    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self, TokenKind::Keyword(k) if *k == kw)
    }
}
