//! The NE2000 (DP8390) Ethernet driver — the corpus subject of the
//! packet TX/RX stress scenario.
//!
//! A classic polled `ne.c`-style driver for the simulated NE2000 at
//! `0x300`. It exports the scenario contract of
//! `devil_kernel::scenarios::Ne2000StressScenario`:
//!
//! * `int ne_probe(void)` — pulse the reset port, remote-DMA the 32-byte
//!   station PROM (each byte doubled on word-wide cards) into `ne_mac`,
//!   check the `0x57` signature bytes;
//! * `int ne_start(void)` — program the receive ring (`PSTART`/`PSTOP`/
//!   `BNRY`), copy `ne_mac` into the page-1 `PAR` registers, set `CURR`,
//!   and start the NIC;
//! * `int ne_send(int len)` — remote-write `len` bytes of `net_buf` into
//!   the transmit page and fire `CR.TXP`;
//! * `int ne_recv(void)` — drain one frame from the receive ring into
//!   `net_buf` (splitting the read at the ring wrap), advance `BNRY`,
//!   and return the payload length (`-1` when the ring is empty);
//! * globals: `unsigned char ne_mac[6]`, `unsigned short net_buf[512]`,
//!   `int ne_rx_len`.
//!
//! The hardware-operating code sits between the mutation markers; the
//! ring-wrap arithmetic, the doubled-PROM decode and the little-endian
//! ring-header parsing are exactly the kind of byte-order/pointer
//! manipulation the Devil evaluation mutates.
//!
//! Since the VM grew block-transfer builtins, the driver moves its DMA
//! streams with the string-I/O forms (`insb` for the PROM dump, `insw`
//! for ring reads, `outsw` for TX uploads) exactly like the real `ne.c`
//! does — and rides the `hwsim` bulk-access device hook. The previous
//! word-at-a-time form survives as [`NE2000_C_DRIVER_WORDS`], the A/B
//! baseline for the `vm_exec` bench and the outcome-count regression
//! test in `tests/scenario_differential.rs`.

/// File name used for the NE2000 driver in diagnostics and coverage.
pub const NE2000_C_FILE: &str = "ne2000_c.c";

/// The polled C driver (see the module docs for the exported contract).
pub const NE2000_C_DRIVER: &str = r#"/* ne.c-style polled driver for the simulated NE2000 at 0x300. */
typedef unsigned char u8;
typedef unsigned short u16;

unsigned char ne_mac[6];
unsigned short net_buf[512];
int ne_rx_len;

static int ne_next;

#define NE_CMD    0x300
#define NE_PSTART 0x301
#define NE_PSTOP  0x302
#define NE_BNRY   0x303
#define NE_TPSR   0x304
#define NE_TBCR0  0x305
#define NE_TBCR1  0x306
#define NE_ISR    0x307
#define NE_RSAR0  0x308
#define NE_RSAR1  0x309
#define NE_RBCR0  0x30a
#define NE_RBCR1  0x30b
#define NE_RCR    0x30c
#define NE_TCR    0x30d
#define NE_DCR    0x30e
#define NE_PAR0   0x301
#define NE_CURR   0x307
#define NE_DATA   0x310
#define NE_RESET  0x31f

#define E8390_STOP   0x21
#define E8390_START  0x22
#define E8390_TRANS  0x26
#define E8390_RREAD  0x0a
#define E8390_RWRITE 0x12
#define E8390_PAGE1  0x62
#define E8390_P1STOP 0x61

#define ISR_PRX 0x01
#define ISR_PTX 0x02
#define ISR_RDC 0x40
#define ISR_RST 0x80

#define RX_START 0x46
#define RX_STOP  0x80
#define TX_PAGE  0x40

/* DEVIL_MUT_BEGIN */
static void ne_dma_setup(int addr, int len)
{
    outb(len & 0xff, NE_RBCR0);
    outb((len >> 8) & 0xff, NE_RBCR1);
    outb(addr & 0xff, NE_RSAR0);
    outb((addr >> 8) & 0xff, NE_RSAR1);
}

static void ne_block_read(int addr, int len, int dst)
{
    ne_dma_setup(addr, len);
    outb(E8390_RREAD, NE_CMD);
    insw(NE_DATA, net_buf + dst, (len + 1) / 2);
    outb(ISR_RDC, NE_ISR);
}

int ne_probe(void)
{
    int i;
    u8 prom[32];

    inb(NE_RESET);
    if ((inb(NE_ISR) & ISR_RST) == 0) {
        printk("ne2000: reset did not take");
        return -1;
    }
    outb(E8390_STOP, NE_CMD);
    ne_dma_setup(0, 32);
    outb(E8390_RREAD, NE_CMD);
    insb(NE_DATA, prom, 32);
    outb(ISR_RDC, NE_ISR);
    for (i = 0; i < 6; i++)
        ne_mac[i] = prom[2 * i];
    if (prom[28] != 0x57 || prom[29] != 0x57) {
        printk("ne2000: bad PROM signature");
        return -1;
    }
    printk("ne2000: NE2000 found at 0x300");
    return 0;
}

int ne_start(void)
{
    int i;

    outb(E8390_STOP, NE_CMD);
    outb(0x48, NE_DCR);
    outb(RX_START, NE_PSTART);
    outb(RX_STOP, NE_PSTOP);
    outb(RX_START, NE_BNRY);
    outb(0x00, NE_TCR);
    outb(0x04, NE_RCR);
    outb(E8390_P1STOP, NE_CMD);
    for (i = 0; i < 6; i++)
        outb(ne_mac[i], NE_PAR0 + i);
    outb(RX_START + 1, NE_CURR);
    outb(E8390_STOP, NE_CMD);
    outb(0xff, NE_ISR);
    outb(E8390_START, NE_CMD);
    ne_next = RX_START + 1;
    return 0;
}

int ne_send(int len)
{
    ne_dma_setup(TX_PAGE << 8, len);
    outb(E8390_RWRITE, NE_CMD);
    outsw(NE_DATA, net_buf, (len + 1) / 2);
    outb(ISR_RDC, NE_ISR);
    outb(TX_PAGE, NE_TPSR);
    outb(len & 0xff, NE_TBCR0);
    outb((len >> 8) & 0xff, NE_TBCR1);
    outb(E8390_TRANS, NE_CMD);
    if ((inb(NE_ISR) & ISR_PTX) == 0) {
        printk("ne2000: transmit did not complete");
        return -1;
    }
    outb(ISR_PTX, NE_ISR);
    return 0;
}

int ne_recv(void)
{
    int curr;
    int hdr;
    int status;
    int next_page;
    int total;
    int len;
    int addr;
    int tail;

    outb(E8390_PAGE1, NE_CMD);
    curr = inb(NE_CURR);
    outb(E8390_START, NE_CMD);
    if (curr == ne_next)
        return -1;
    ne_dma_setup(ne_next << 8, 4);
    outb(E8390_RREAD, NE_CMD);
    hdr = inw(NE_DATA);
    total = inw(NE_DATA);
    outb(ISR_RDC, NE_ISR);
    status = hdr & 0xff;
    next_page = (hdr >> 8) & 0xff;
    if ((status & 0x01) == 0)
        return (printk("ne2000: bad receive status %x", status), -1);
    len = total - 4;
    if (len < 0 || len > 1024)
        return (printk("ne2000: bogus packet length %d", total), -1);
    addr = (ne_next << 8) + 4;
    tail = (RX_STOP << 8) - addr;
    if (tail >= len) {
        ne_block_read(addr, len, 0);
    } else {
        ne_block_read(addr, tail, 0);
        ne_block_read(RX_START << 8, len - tail, tail / 2);
    }
    ne_rx_len = len;
    ne_next = next_page;
    if (ne_next == RX_START)
        outb(RX_STOP - 1, NE_BNRY);
    else
        outb(ne_next - 1, NE_BNRY);
    outb(ISR_PRX, NE_ISR);
    return len;
}
/* DEVIL_MUT_END */
"#;

/// The PR-4 word-at-a-time form of the same driver (one `inw`/`outw`
/// per word of DMA traffic) — kept verbatim as the A/B baseline: the
/// `vm_exec` bench measures the block-transfer speedup against it, and
/// the scenario differential test pins its mutant outcome counts
/// against `tests/golden/scenario_ne2000_stress_words.txt`.
pub const NE2000_C_DRIVER_WORDS: &str = r#"/* ne.c-style polled driver for the simulated NE2000 at 0x300. */
typedef unsigned char u8;
typedef unsigned short u16;

unsigned char ne_mac[6];
unsigned short net_buf[512];
int ne_rx_len;

static int ne_next;

#define NE_CMD    0x300
#define NE_PSTART 0x301
#define NE_PSTOP  0x302
#define NE_BNRY   0x303
#define NE_TPSR   0x304
#define NE_TBCR0  0x305
#define NE_TBCR1  0x306
#define NE_ISR    0x307
#define NE_RSAR0  0x308
#define NE_RSAR1  0x309
#define NE_RBCR0  0x30a
#define NE_RBCR1  0x30b
#define NE_RCR    0x30c
#define NE_TCR    0x30d
#define NE_DCR    0x30e
#define NE_PAR0   0x301
#define NE_CURR   0x307
#define NE_DATA   0x310
#define NE_RESET  0x31f

#define E8390_STOP   0x21
#define E8390_START  0x22
#define E8390_TRANS  0x26
#define E8390_RREAD  0x0a
#define E8390_RWRITE 0x12
#define E8390_PAGE1  0x62
#define E8390_P1STOP 0x61

#define ISR_PRX 0x01
#define ISR_PTX 0x02
#define ISR_RDC 0x40
#define ISR_RST 0x80

#define RX_START 0x46
#define RX_STOP  0x80
#define TX_PAGE  0x40

/* DEVIL_MUT_BEGIN */
static void ne_dma_setup(int addr, int len)
{
    outb(len & 0xff, NE_RBCR0);
    outb((len >> 8) & 0xff, NE_RBCR1);
    outb(addr & 0xff, NE_RSAR0);
    outb((addr >> 8) & 0xff, NE_RSAR1);
}

static void ne_block_read(int addr, int len, int dst)
{
    int i;

    ne_dma_setup(addr, len);
    outb(E8390_RREAD, NE_CMD);
    for (i = 0; i < len; i = i + 2)
        net_buf[dst + i / 2] = inw(NE_DATA);
    outb(ISR_RDC, NE_ISR);
}

int ne_probe(void)
{
    int i;

    inb(NE_RESET);
    if ((inb(NE_ISR) & ISR_RST) == 0) {
        printk("ne2000: reset did not take");
        return -1;
    }
    outb(E8390_STOP, NE_CMD);
    ne_dma_setup(0, 32);
    outb(E8390_RREAD, NE_CMD);
    for (i = 0; i < 6; i++) {
        ne_mac[i] = inb(NE_DATA);
        inb(NE_DATA);
    }
    for (i = 12; i < 28; i++)
        inb(NE_DATA);
    if (inb(NE_DATA) != 0x57 || inb(NE_DATA) != 0x57) {
        printk("ne2000: bad PROM signature");
        return -1;
    }
    inb(NE_DATA);
    inb(NE_DATA);
    outb(ISR_RDC, NE_ISR);
    printk("ne2000: NE2000 found at 0x300");
    return 0;
}

int ne_start(void)
{
    int i;

    outb(E8390_STOP, NE_CMD);
    outb(0x48, NE_DCR);
    outb(RX_START, NE_PSTART);
    outb(RX_STOP, NE_PSTOP);
    outb(RX_START, NE_BNRY);
    outb(0x00, NE_TCR);
    outb(0x04, NE_RCR);
    outb(E8390_P1STOP, NE_CMD);
    for (i = 0; i < 6; i++)
        outb(ne_mac[i], NE_PAR0 + i);
    outb(RX_START + 1, NE_CURR);
    outb(E8390_STOP, NE_CMD);
    outb(0xff, NE_ISR);
    outb(E8390_START, NE_CMD);
    ne_next = RX_START + 1;
    return 0;
}

int ne_send(int len)
{
    int i;

    ne_dma_setup(TX_PAGE << 8, len);
    outb(E8390_RWRITE, NE_CMD);
    for (i = 0; i < len; i = i + 2)
        outw(net_buf[i / 2], NE_DATA);
    outb(ISR_RDC, NE_ISR);
    outb(TX_PAGE, NE_TPSR);
    outb(len & 0xff, NE_TBCR0);
    outb((len >> 8) & 0xff, NE_TBCR1);
    outb(E8390_TRANS, NE_CMD);
    if ((inb(NE_ISR) & ISR_PTX) == 0) {
        printk("ne2000: transmit did not complete");
        return -1;
    }
    outb(ISR_PTX, NE_ISR);
    return 0;
}

int ne_recv(void)
{
    int curr;
    int hdr;
    int status;
    int next_page;
    int total;
    int len;
    int addr;
    int tail;

    outb(E8390_PAGE1, NE_CMD);
    curr = inb(NE_CURR);
    outb(E8390_START, NE_CMD);
    if (curr == ne_next)
        return -1;
    ne_dma_setup(ne_next << 8, 4);
    outb(E8390_RREAD, NE_CMD);
    hdr = inw(NE_DATA);
    total = inw(NE_DATA);
    outb(ISR_RDC, NE_ISR);
    status = hdr & 0xff;
    next_page = (hdr >> 8) & 0xff;
    if ((status & 0x01) == 0)
        return (printk("ne2000: bad receive status %x", status), -1);
    len = total - 4;
    if (len < 0 || len > 1024)
        return (printk("ne2000: bogus packet length %d", total), -1);
    addr = (ne_next << 8) + 4;
    tail = (RX_STOP << 8) - addr;
    if (tail >= len) {
        ne_block_read(addr, len, 0);
    } else {
        ne_block_read(addr, tail, 0);
        ne_block_read(RX_START << 8, len - tail, tail / 2);
    }
    ne_rx_len = len;
    ne_next = next_page;
    if (ne_next == RX_START)
        outb(RX_STOP - 1, NE_BNRY);
    else
        outb(ne_next - 1, NE_BNRY);
    outb(ISR_PRX, NE_ISR);
    return len;
}
/* DEVIL_MUT_END */
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use devil_kernel::scenario::{run_compiled, run_interp, ScenarioMachine};
    use devil_kernel::scenarios::Ne2000StressScenario;
    use devil_kernel::{Outcome, Scenario};

    #[test]
    fn ne2000_driver_compiles() {
        devil_minic::compile(NE2000_C_FILE, NE2000_C_DRIVER).expect("NE2000 driver compiles");
    }

    #[test]
    fn ne2000_driver_survives_the_stress_scenario() {
        let program = devil_minic::compile(NE2000_C_FILE, NE2000_C_DRIVER).unwrap();
        let mut scenario = Ne2000StressScenario::new();
        let mut io = scenario.build();
        let report = run_compiled(
            &scenario,
            &program.to_bytecode(),
            &mut io,
            devil_kernel::boot::DEFAULT_FUEL,
        );
        assert_eq!(report.outcome, Outcome::Boot, "{}: {:?}", report.detail, report.console);
        assert!(report.console.iter().any(|l| l.contains("NE2000 found")));
    }

    #[test]
    fn ne2000_scenario_is_engine_identical_on_the_clean_driver() {
        let program = devil_minic::compile(NE2000_C_FILE, NE2000_C_DRIVER).unwrap();
        let mut s1 = Ne2000StressScenario::new();
        let mut io1 = s1.build();
        let vm = run_compiled(&s1, &program.to_bytecode(), &mut io1, 1_500_000);
        let mut s2 = Ne2000StressScenario::new();
        let mut io2 = s2.build();
        let tw = run_interp(&s2, &program, &mut io2, 1_500_000);
        assert_eq!(vm.outcome, tw.outcome);
        assert_eq!(vm.detail, tw.detail);
        assert_eq!(vm.console, tw.console);
        assert_eq!(vm.coverage, tw.coverage);
    }

    #[test]
    fn ne2000_scenario_machine_resets_between_runs() {
        let mut machine =
            ScenarioMachine::with_scenario(Ne2000StressScenario::new(), 1_500_000);
        // A clean run, a mutant that duplicates every transmitted frame
        // (caught by the wire-log length check), a clean run.
        let broken = NE2000_C_DRIVER.replace(
            "    outb(E8390_TRANS, NE_CMD);\n    if ((inb(NE_ISR) & ISR_PTX) == 0) {",
            "    outb(E8390_TRANS, NE_CMD);\n    outb(E8390_TRANS, NE_CMD);\n    if ((inb(NE_ISR) & ISR_PTX) == 0) {",
        );
        assert_ne!(broken, NE2000_C_DRIVER);
        let clean1 = machine.run(NE2000_C_FILE, NE2000_C_DRIVER, &[], None);
        let bad = machine.run(NE2000_C_FILE, &broken, &[], None);
        let clean2 = machine.run(NE2000_C_FILE, NE2000_C_DRIVER, &[], None);
        assert_eq!(clean1.0, Outcome::Boot, "{}", clean1.1);
        assert_eq!(bad.0, Outcome::DamagedBoot, "{}", bad.1);
        assert_eq!(clean1, clean2, "reset must erase the mutant's mess");
    }
}
