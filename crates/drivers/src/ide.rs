//! The IDE disk driver, written twice (§4.2):
//!
//! * [`IDE_C_DRIVER`] — classic Linux `hd.c` style: `#define`d port
//!   numbers, raw `inb`/`outb`, hand-rolled bit manipulation. The
//!   hardware-operating code sits between the mutation markers and is the
//!   subject of **Table 3**.
//! * [`IDE_CDEVIL_DRIVER`] — the re-engineered driver: a thin glue layer
//!   (`CDevil`) over the stubs generated from `specs/ide_piix4.dil` in
//!   debug mode. The glue is the subject of **Table 4**.
//!
//! Both export the boot-harness contract: `int ide_probe(void)`,
//! `int ide_read(int lba, int count)`, `int ide_write(int lba)` and the
//! sector buffer `unsigned short io_buf[256]`.

use devil_core::codegen::{generate, CodegenMode};

/// Name under which the generated header is included.
pub const IDE_HEADER_NAME: &str = "ide_piix4.dil.h";

/// File name used for the C driver in diagnostics and coverage.
pub const IDE_C_FILE: &str = "ide_c.c";
/// File name used for the CDevil driver in diagnostics and coverage.
pub const IDE_CDEVIL_FILE: &str = "ide_cdevil.c";

/// The original-style C driver (Table 3 subject).
pub const IDE_C_DRIVER: &str = r#"/* hd.c-style PIO driver for the simulated PIIX4 IDE primary channel. */
typedef unsigned char u8;
typedef unsigned short u16;

unsigned short io_buf[256];

#define HD_DATA      0x1f0
#define HD_ERROR     0x1f1
#define HD_NSECTOR   0x1f2
#define HD_SECTOR    0x1f3
#define HD_LCYL      0x1f4
#define HD_HCYL      0x1f5
#define HD_CURRENT   0x1f6
#define HD_STATUS    0x1f7
#define HD_COMMAND   0x1f7
#define HD_CMD       0x1f8

#define ERR_STAT     0x01
#define INDEX_STAT   0x02
#define ECC_STAT     0x04
#define DRQ_STAT     0x08
#define SEEK_STAT    0x10
#define WRERR_STAT   0x20
#define READY_STAT   0x40
#define BUSY_STAT    0x80

#define WIN_RESTORE  0x10
#define WIN_READ     0x20
#define WIN_WRITE    0x30
#define WIN_IDENTIFY 0xec

/* The classic contorted one-liner: report and yield a value, always
 * executed as part of the surrounding line. */
#define HD_FAIL(msg, v) (printk(msg), (v))

/* DEVIL_MUT_BEGIN */
static int controller_busy(void)
{
    int retries = 20000;
    u8 status;

    do { status = inb(HD_STATUS); } while ((status & BUSY_STAT) && --retries > 0);
    return (status & BUSY_STAT) != 0;
}

static int drive_ready(void)
{
    u8 status = inb(HD_STATUS);
    return ((status & (BUSY_STAT | READY_STAT | ERR_STAT)) == READY_STAT) || (status & SEEK_STAT) != 0;
}

static int wait_DRQ(void)
{
    int retries = 20000;
    u8 status = inb(HD_STATUS);

    while (--retries > 0 && !(status & (DRQ_STAT | ERR_STAT))) status = inb(HD_STATUS);
    return (status & DRQ_STAT) ? 0 : HD_FAIL("hd: drive not responding", -1);
}

static void hd_out(int nsect, int sect, int lcyl, int hcyl, int sel, int cmd)
{
    if (controller_busy()) panic("hd: controller still busy");
    outb(nsect, HD_NSECTOR);
    outb(sect, HD_SECTOR);
    outb(lcyl, HD_LCYL);
    outb(hcyl, HD_HCYL);
    outb(0xe0 | sel, HD_CURRENT);
    outb(cmd, HD_COMMAND);
}

static void reset_controller(void)
{
    int i;

    outb(4, HD_CMD);
    for (i = 0; i < 100; i++) udelay(10);
    outb(0, HD_CMD);
    if (controller_busy()) panic("hd: controller did not reset");
    if (inb(HD_ERROR) != 1) printk("hd: reset diagnostics failed");
}

int ide_probe(void)
{
    int capacity;

    reset_controller();
    if (!drive_ready()) printk("hd: drive not ready after reset");
    hd_out(0, 0, 0, 0, 0, WIN_IDENTIFY);
    if (controller_busy()) panic("hd: identify timed out");
    if (wait_DRQ() != 0) return HD_FAIL("hd: no drive found", -1);
    insw(HD_DATA, io_buf, 256);
    capacity = io_buf[60] | (io_buf[61] << 16);
    printk("hd: drive found, %d sectors", capacity);
    return capacity;
}

int ide_read(int lba, int count)
{
    hd_out(count, lba & 0xff, (lba >> 8) & 0xff, (lba >> 16) & 0xff,
           ((lba >> 24) & 0x0f) | 0x40, WIN_READ);
    while (inb(HD_STATUS) & BUSY_STAT) inb(HD_STATUS);
    if (inb(HD_STATUS) & ERR_STAT) return HD_FAIL("hd: read error", -1);
    while (!(inb(HD_STATUS) & DRQ_STAT)) inb(HD_STATUS);
    insw(HD_DATA, io_buf, 256);
    return 0;
}

int ide_write(int lba)
{
    hd_out(1, lba & 0xff, (lba >> 8) & 0xff, (lba >> 16) & 0xff,
           ((lba >> 24) & 0x0f) | 0x40, WIN_WRITE);
    while (inb(HD_STATUS) & BUSY_STAT) inb(HD_STATUS);
    if (inb(HD_STATUS) & ERR_STAT) return HD_FAIL("hd: write refused", -1);
    while (!(inb(HD_STATUS) & DRQ_STAT)) inb(HD_STATUS);
    outsw(HD_DATA, io_buf, 256);
    if (controller_busy()) panic("hd: lost interrupt on write");
    if (inb(HD_STATUS) & ERR_STAT) return HD_FAIL("hd: write error", -1);
    return 0;
}
/* DEVIL_MUT_END */
"#;

/// The CDevil glue driver (Table 4 subject). Compile it together with
/// [`ide_debug_header`] via [`cdevil_includes`].
pub const IDE_CDEVIL_DRIVER: &str = r#"/* CDevil glue over the Devil-generated PIIX4 stubs (debug mode). */
unsigned short io_buf[256];

#include "ide_piix4.dil.h"

/* DEVIL_MUT_BEGIN */
static int wait_not_busy(void)
{
    int retries = 20000;

    while (--retries > 0) {
        if (dil_eq(get_busy(), NOT_BUSY)) return 0;
    }
    return -1;
}

static int check_error(void)
{
    u32 code = dil_val(get_error_code());

    switch (code) {
    case 0x04:
        printk("ide: command aborted");
        return -1;
    case 0x10:
        printk("ide: sector id not found");
        return -2;
    case 0x40:
        printk("ide: uncorrectable data error");
        return -3;
    case 0x80:
        printk("ide: bad block mark");
        return -4;
    default:
        printk("ide: unknown error %x", code);
        return -5;
    }
}

static int command_ok(void)
{
    if (dil_eq(get_busy(), BUSY)) return 0;
    if (dil_eq(get_ready(), RDY_OFF)) return 0;
    if (dil_eq(get_write_fault(), WF_ON)) return 0;
    if (dil_eq(get_error_bit(), ERR_ON)) return 0;
    return 1;
}

static void select_address(int lba, int count)
{
    set_sector_count(mk_sector_count(count & 0xff));
    set_sector_number(mk_sector_number(lba & 0xff));
    set_cyl_low(mk_cyl_low((lba >> 8) & 0xff));
    set_cyl_high(mk_cyl_high((lba >> 16) & 0xff));
    set_Lba_mode(LBA);
    set_Drive(MASTER);
    set_head(mk_head((lba >> 24) & 0x0f));
}

int ide_probe(void)
{
    int capacity;
    int i;

    dil_ensure_init();
    set_soft_reset(SRST_ON);
    udelay(100);
    set_soft_reset(SRST_OFF);
    if (wait_not_busy() != 0)
        panic("ide: controller wedged after reset");
    set_Drive(MASTER);
    if (!dil_eq(get_Drive(), MASTER))
        printk("ide: drive select readback failed");
    if (dil_eq(get_ready(), RDY_OFF))
        printk("ide: drive not ready after reset");
    set_Command(IDENTIFY);
    if (wait_not_busy() != 0)
        panic("ide: identify timed out");
    if (dil_eq(get_error_bit(), ERR_ON))
        return check_error();
    if (dil_eq(get_drq(), DRQ_OFF))
        return (printk("ide: no drive found"), -1);
    for (i = 0; i < 256; i++)
        io_buf[i] = dil_val(get_io_data());
    capacity = io_buf[60] | (io_buf[61] << 16);
    printk("ide: drive found, %d sectors", capacity);
    return capacity;
}

int ide_read(int lba, int count)
{
    int i;

    dil_ensure_init();
    select_address(lba, count);
    set_Command(READ_SECTORS);
    if (wait_not_busy() != 0)
        return -1;
    if (dil_eq(get_error_bit(), ERR_ON))
        return check_error();
    if (dil_eq(get_drq(), DRQ_OFF))
        return -1;
    for (i = 0; i < 256; i++)
        io_buf[i] = dil_val(get_io_data());
    if (!command_ok())
        return check_error();
    return 0;
}

int ide_write(int lba)
{
    int i;

    dil_ensure_init();
    select_address(lba, 1);
    set_Command(WRITE_SECTORS);
    if (wait_not_busy() != 0)
        return -1;
    if (dil_eq(get_drq(), DRQ_OFF))
        return check_error();
    for (i = 0; i < 256; i++)
        set_io_data(mk_io_data(io_buf[i]));
    if (wait_not_busy() != 0)
        return -1;
    if (!command_ok())
        return check_error();
    return 0;
}
/* DEVIL_MUT_END */
"#;

/// Generate the debug-mode stub header for the IDE specification.
///
/// # Panics
///
/// Panics if the bundled specification fails to compile — a corpus bug
/// caught by the crate's tests.
pub fn ide_debug_header() -> String {
    let checked = crate::specs::compile("ide_piix4.dil", crate::specs::IDE_PIIX4)
        .expect("bundled IDE spec compiles");
    let stubs = generate(&checked, CodegenMode::Debug);
    wrap_header(stubs)
}

/// Generate the assertion-stripped debug header (`table4 --no-asserts`):
/// struct-encoded types, no run-time checks.
///
/// # Panics
///
/// Panics if the bundled specification fails to compile.
pub fn ide_no_assert_header() -> String {
    let checked = crate::specs::compile("ide_piix4.dil", crate::specs::IDE_PIIX4)
        .expect("bundled IDE spec compiles");
    let stubs = generate(&checked, CodegenMode::DebugNoAsserts);
    wrap_header(stubs)
}

/// Generate the production-mode stub header (for the ablation benches).
///
/// # Panics
///
/// Panics if the bundled specification fails to compile.
pub fn ide_production_header() -> String {
    let checked = crate::specs::compile("ide_piix4.dil", crate::specs::IDE_PIIX4)
        .expect("bundled IDE spec compiles");
    let stubs = generate(&checked, CodegenMode::Production);
    wrap_header(stubs)
}

/// Append the machine-specific initialisation call the glue layer relies
/// on: bind both channels' base ports and run `ide_piix4_init` the first
/// time any entry point runs. The generated `*_init` takes the port
/// parameters in specification order.
fn wrap_header(mut stubs: String) -> String {
    stubs.push_str(
        "\nstatic int dil_initialized;\n\
         static void dil_ensure_init(void)\n{\n\
         \x20   if (!dil_initialized) {\n\
         \x20       ide_piix4_init(0x1f0, 0x1f0, 0x170, 0x170);\n\
         \x20       dil_initialized = 1;\n\
         \x20   }\n}\n",
    );
    stubs
}

/// The include set for compiling the CDevil driver.
pub fn cdevil_includes() -> Vec<(String, String)> {
    vec![(IDE_HEADER_NAME.to_string(), ide_debug_header())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use devil_kernel::{boot_ide, fs, Outcome};

    fn includes_ref(v: &[(String, String)]) -> Vec<(&str, &str)> {
        v.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect()
    }

    #[test]
    fn c_driver_compiles() {
        devil_minic::compile(IDE_C_FILE, IDE_C_DRIVER).expect("C driver compiles");
    }

    #[test]
    fn cdevil_driver_compiles_against_debug_header() {
        let incs = cdevil_includes();
        devil_minic::compile_with_includes(
            IDE_CDEVIL_FILE,
            IDE_CDEVIL_DRIVER,
            &includes_ref(&incs),
        )
        .expect("CDevil driver compiles");
    }

    #[test]
    fn c_driver_boots_clean() {
        let program = devil_minic::compile(IDE_C_FILE, IDE_C_DRIVER).unwrap();
        let files = fs::standard_files();
        let (mut io, ide) = devil_kernel::boot::standard_ide_machine(&files);
        let report = boot_ide(&program, &mut io, ide, &files, devil_kernel::boot::DEFAULT_FUEL);
        assert_eq!(report.outcome, Outcome::Boot, "{}: {:?}", report.detail, report.console);
    }

    #[test]
    fn cdevil_driver_boots_clean() {
        let incs = cdevil_includes();
        let program = devil_minic::compile_with_includes(
            IDE_CDEVIL_FILE,
            IDE_CDEVIL_DRIVER,
            &includes_ref(&incs),
        )
        .unwrap();
        let files = fs::standard_files();
        let (mut io, ide) = devil_kernel::boot::standard_ide_machine(&files);
        let report = boot_ide(&program, &mut io, ide, &files, devil_kernel::boot::DEFAULT_FUEL);
        assert_eq!(report.outcome, Outcome::Boot, "{}: {:?}", report.detail, report.console);
    }

    #[test]
    fn both_drivers_have_mutation_regions() {
        assert!(IDE_C_DRIVER.contains("DEVIL_MUT_BEGIN"));
        assert!(IDE_C_DRIVER.contains("DEVIL_MUT_END"));
        assert!(IDE_CDEVIL_DRIVER.contains("DEVIL_MUT_BEGIN"));
        assert!(IDE_CDEVIL_DRIVER.contains("DEVIL_MUT_END"));
    }

    #[test]
    fn io_buf_is_outside_the_mutable_region() {
        let begin = IDE_C_DRIVER.find("DEVIL_MUT_BEGIN").unwrap();
        assert!(IDE_C_DRIVER.find("io_buf[256]").unwrap() < begin);
        let begin = IDE_CDEVIL_DRIVER.find("DEVIL_MUT_BEGIN").unwrap();
        assert!(IDE_CDEVIL_DRIVER.find("io_buf[256]").unwrap() < begin);
    }

    #[test]
    fn production_header_also_compiles_the_glue() {
        // The same glue source builds against production stubs (mk_/dil_eq
        // collapse to plain integer forms).
        let hdr = ide_production_header();
        let incs = vec![(IDE_HEADER_NAME.to_string(), hdr)];
        devil_minic::compile_with_includes(
            IDE_CDEVIL_FILE,
            IDE_CDEVIL_DRIVER,
            &includes_ref(&incs),
        )
        .expect("glue compiles against production stubs");
    }
}
