//! Busmouse driver pair — the paper's running example (Figure 1).
//!
//! The C version mirrors Figure 1's left-hand side: `#define`d ports and a
//! `mouse_interrupt`-style state read. The CDevil version is the
//! right-hand side: three stub calls. Both export the same interface:
//! `int bm_probe(void)`, `void bm_read_state(void)`, and the globals
//! `int mouse_dx, mouse_dy, mouse_buttons`.

use devil_core::codegen::{generate, CodegenMode};

/// Name under which the generated busmouse header is included.
pub const BM_HEADER_NAME: &str = "busmouse.dil.h";

/// File name used for the C busmouse driver in diagnostics and coverage.
pub const BM_C_FILE: &str = "busmouse_c.c";
/// File name used for the CDevil busmouse driver in diagnostics and
/// coverage.
pub const BM_CDEVIL_FILE: &str = "busmouse_cdevil.c";

/// The classic C busmouse driver (Figure 1, left).
pub const BM_C_DRIVER: &str = r#"/* Logitech busmouse driver, classic style. */
typedef unsigned char u8;
typedef signed char s8;

int mouse_dx;
int mouse_dy;
int mouse_buttons;

/* DEVIL_MUT_BEGIN */
#define MSE_DATA_PORT       0x23c
#define MSE_SIGNATURE_PORT  0x23d
#define MSE_CONTROL_PORT    0x23e
#define MSE_CONFIG_PORT     0x23f

#define MSE_READ_X_LOW      0x80
#define MSE_READ_X_HIGH     0xa0
#define MSE_READ_Y_LOW      0xc0
#define MSE_READ_Y_HIGH     0xe0

#define MSE_INT_OFF         0x10
#define MSE_INT_ON          0x00

int bm_probe(void)
{
    outb(0xa5, MSE_SIGNATURE_PORT);
    if (inb(MSE_SIGNATURE_PORT) != 0xa5)
        return -1;
    outb(0x5a, MSE_SIGNATURE_PORT);
    if (inb(MSE_SIGNATURE_PORT) != 0x5a)
        return -1;
    return 0;
}

void bm_read_state(void)
{
    int dx, dy, buttons;

    outb(MSE_INT_OFF, MSE_CONTROL_PORT);
    outb(MSE_READ_X_LOW, MSE_CONTROL_PORT);
    dx = inb(MSE_DATA_PORT) & 0xf;
    outb(MSE_READ_X_HIGH, MSE_CONTROL_PORT);
    dx |= (inb(MSE_DATA_PORT) & 0xf) << 4;
    outb(MSE_READ_Y_LOW, MSE_CONTROL_PORT);
    dy = inb(MSE_DATA_PORT) & 0xf;
    outb(MSE_READ_Y_HIGH, MSE_CONTROL_PORT);
    buttons = inb(MSE_DATA_PORT);
    dy |= (buttons & 0xf) << 4;
    buttons = (buttons >> 5) & 0x07;
    mouse_dx = (s8)dx;
    mouse_dy = (s8)dy;
    mouse_buttons = buttons;
    outb(MSE_INT_ON, MSE_CONTROL_PORT);
}
/* DEVIL_MUT_END */
"#;

/// The CDevil busmouse driver (Figure 1, right).
pub const BM_CDEVIL_DRIVER: &str = r#"/* Logitech busmouse driver over Devil stubs. */
int mouse_dx;
int mouse_dy;
int mouse_buttons;

#include "busmouse.dil.h"

/* DEVIL_MUT_BEGIN */
static int bm_initialized;

static void bm_ensure_init(void)
{
    if (!bm_initialized) {
        logitech_busmouse_init(0x23c);
        bm_initialized = 1;
    }
}

int bm_probe(void)
{
    bm_ensure_init();
    set_signature(mk_signature(0xa5));
    if (dil_val(get_signature()) != 0xa5)
        return -1;
    set_signature(mk_signature(0x5a));
    if (dil_val(get_signature()) != 0x5a)
        return -1;
    return 0;
}

void bm_read_state(void)
{
    bm_ensure_init();
    set_interrupt(DISABLE);
    mouse_dx = get_dx_signed();
    mouse_dy = get_dy_signed();
    mouse_buttons = dil_val(get_buttons());
    set_interrupt(ENABLE);
}
/* DEVIL_MUT_END */
"#;

/// Generate the debug-mode stub header for the busmouse specification.
///
/// # Panics
///
/// Panics if the bundled specification fails to compile.
pub fn bm_debug_header() -> String {
    let checked = crate::specs::compile("busmouse.dil", crate::specs::BUSMOUSE)
        .expect("bundled busmouse spec compiles");
    generate(&checked, CodegenMode::Debug)
}

/// The include set for compiling the CDevil busmouse driver.
pub fn bm_includes() -> Vec<(String, String)> {
    vec![(BM_HEADER_NAME.to_string(), bm_debug_header())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use devil_hwsim::devices::Busmouse;
    use devil_hwsim::IoSpace;
    use devil_kernel::MachineHost;
    use devil_minic::interp::Interpreter;
    use devil_minic::value::Value;

    fn machine() -> (IoSpace, devil_hwsim::DeviceId) {
        let mut io = IoSpace::new();
        let id = io.map(0x23C, 4, Box::new(Busmouse::new())).unwrap();
        (io, id)
    }

    fn run_driver(src: &str, includes: &[(String, String)]) -> (i64, i64, i64) {
        let incs: Vec<(&str, &str)> =
            includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let program = devil_minic::compile_with_includes("bm.c", src, &incs).unwrap();
        let (mut io, id) = machine();
        io.device_mut::<Busmouse>(id).unwrap().inject_motion(-7, 11, 0b101);
        let mut host = MachineHost::new(&mut io);
        let mut interp = Interpreter::new(&program, &mut host, 1_000_000);
        assert_eq!(
            interp.call("bm_probe", &[]).unwrap(),
            Value::Int(0),
            "probe must find the mouse"
        );
        interp.call("bm_read_state", &[]).unwrap();
        let dx = interp.global_values("mouse_dx").unwrap()[0].as_int().unwrap();
        let dy = interp.global_values("mouse_dy").unwrap()[0].as_int().unwrap();
        let b = interp.global_values("mouse_buttons").unwrap()[0].as_int().unwrap();
        (dx, dy, b)
    }

    #[test]
    fn c_driver_reads_motion() {
        let (dx, dy, b) = run_driver(BM_C_DRIVER, &[]);
        assert_eq!((dx, dy, b), (-7, 11, 0b101));
    }

    #[test]
    fn cdevil_driver_reads_motion() {
        let (dx, dy, b) = run_driver(BM_CDEVIL_DRIVER, &bm_includes());
        assert_eq!((dx, dy, b), (-7, 11, 0b101));
    }

    #[test]
    fn both_probe_the_same_way() {
        // Probe against a machine with no mouse: both drivers must fail.
        for (src, includes) in [
            (BM_C_DRIVER, vec![]),
            (BM_CDEVIL_DRIVER, bm_includes()),
        ] {
            let incs: Vec<(&str, &str)> =
                includes.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let program = devil_minic::compile_with_includes("bm.c", src, &incs).unwrap();
            let mut io = IoSpace::new(); // nothing mapped: reads float
            let mut host = MachineHost::new(&mut io);
            let mut interp = Interpreter::new(&program, &mut host, 1_000_000);
            let r = interp.call("bm_probe", &[]);
            match r {
                Ok(v) => assert_eq!(v, Value::Int(-1), "probe must fail"),
                Err(e) => {
                    // The CDevil debug stubs may assert on the floating
                    // signature read before the driver can compare it.
                    assert!(
                        e.to_string().contains("Devil assertion"),
                        "unexpected failure: {e}"
                    );
                }
            }
        }
    }
}
