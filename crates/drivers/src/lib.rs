//! # devil-drivers — the experiment corpus
//!
//! Everything the paper's evaluation mutates and runs:
//!
//! * [`specs`] — the five Devil specifications of Table 2 (Logitech
//!   busmouse, 82371FB PCI bus master, PIIX4 IDE, NE2000, Permedia 2);
//! * [`ide`] — the IDE disk driver written twice: classic C
//!   (macros + `inb`/`outb`, the Table 3 subject) and CDevil glue over the
//!   generated debug stubs (the Table 4 subject);
//! * [`busmouse`] — a busmouse driver pair (the paper's Figure 1), the
//!   subject of the mouse event-stream scenario;
//! * [`ne2000`] — a polled DP8390 network driver, the subject of the
//!   NE2000 packet TX/RX stress scenario;
//! * [`corpus`] — the scenario catalog: which driver runs under which
//!   `devil_kernel::scenario` workload, and how it is mutated.
//!
//! All drivers target the simulated machine of `devil_kernel`; drivers
//! that share a scenario export that scenario's entry-point contract
//! (e.g. `ide_probe` / `ide_read` / `ide_write` plus the `io_buf`
//! transfer buffer), so the workload engine treats them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod busmouse;
pub mod corpus;
pub mod ide;
pub mod ne2000;
pub mod specs;
