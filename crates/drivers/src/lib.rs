//! # devil-drivers — the experiment corpus
//!
//! Everything the paper's evaluation mutates and runs:
//!
//! * [`specs`] — the five Devil specifications of Table 2 (Logitech
//!   busmouse, 82371FB PCI bus master, PIIX4 IDE, NE2000, Permedia 2);
//! * [`ide`] — the IDE disk driver written twice: classic C
//!   (macros + `inb`/`outb`, the Table 3 subject) and CDevil glue over the
//!   generated debug stubs (the Table 4 subject);
//! * [`busmouse`] — a busmouse driver pair used by the examples.
//!
//! All drivers target the simulated machine of `devil_kernel` and export
//! the same entry points (`ide_probe` / `ide_read` / `ide_write` plus the
//! `io_buf` transfer buffer), so the boot harness treats them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod busmouse;
pub mod ide;
pub mod specs;
