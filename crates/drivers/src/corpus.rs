//! The scenario catalog: which driver corpus runs under which workload.
//!
//! The scenario engine (`devil_kernel::scenario`) is deliberately
//! driver-agnostic; this module supplies the pairing the experiments
//! actually run — for every scenario name, the drivers that implement its
//! entry-point contract (and the mutation style each is mutated with).
//! The campaign CLI (`examples/mutation_campaign.rs`), the per-scenario
//! golden differential tests and the `scenarios` bench all resolve
//! workloads through this one table.

use crate::{busmouse, ide, ne2000};
use devil_hwsim::{FaultPlan, DEFAULT_FAULT_SEED};
use devil_kernel::fs;
use devil_kernel::scenario::{FaultScenario, Scenario};
use devil_kernel::scenarios::{
    IdeBootScenario, IdeStressScenario, MouseStreamScenario, Ne2000StressScenario,
};
use devil_mutagen::c::CStyle;

/// One driver that runs under a scenario.
pub struct DriverVariant {
    /// Stable label (golden files, table headings).
    pub label: &'static str,
    /// File name used in diagnostics and coverage.
    pub file: &'static str,
    /// Driver source with `DEVIL_MUT_BEGIN`/`END` markers.
    pub source: &'static str,
    /// Generated stub headers the driver compiles against (empty for
    /// plain C).
    pub headers: Vec<(String, String)>,
    /// Mutation style for `CMutationModel`.
    pub style: CStyle,
    /// Sampling fraction used by the golden differential tests — tuned so
    /// every variant contributes a few dozen mutants, not thousands.
    pub golden_fraction: f64,
}

/// One scenario and its driver corpus.
pub struct ScenarioCase {
    /// The scenario name ([`build_scenario`] accepts it).
    pub scenario: &'static str,
    /// The drivers exporting this scenario's entry-point contract.
    pub drivers: Vec<DriverVariant>,
}

/// Construct a scenario by name. Names are the kebab-case
/// `Scenario::name()` values listed by [`scenario_names`], and every one
/// of them also exists as a `<name>+faults` variant: the same workload on
/// deterministically flaky hardware, under the [`default_fault_plan`].
/// For a different plan or seed use [`build_faulted`].
pub fn build_scenario(name: &str) -> Option<Box<dyn Scenario + Send>> {
    if let Some(base) = name.strip_suffix("+faults") {
        return build_faulted(base, default_fault_plan());
    }
    match name {
        "ide-boot" => Some(Box::new(IdeBootScenario::new(fs::standard_files()))),
        "ide-stress" => Some(Box::new(IdeStressScenario::new(fs::standard_files()))),
        "mouse-stream" => Some(Box::new(MouseStreamScenario::new())),
        "ne2000-stress" => Some(Box::new(Ne2000StressScenario::new())),
        _ => None,
    }
}

/// Construct the `<name>+faults` variant of a catalog scenario under an
/// explicit [`FaultPlan`] — the per-plan/per-seed axis of the fault
/// attribution campaigns.
pub fn build_faulted(name: &str, plan: FaultPlan) -> Option<Box<dyn Scenario + Send>> {
    let base = build_scenario(name)?;
    Some(Box::new(FaultScenario::new(base, plan)))
}

/// The fault plan `<name>+faults` scenarios run under when none is given
/// explicitly: the `mixed` plan (a little of every fault kind at gentle
/// rates) at the harness-wide default seed — what the fault golden files
/// pin.
pub fn default_fault_plan() -> FaultPlan {
    FaultPlan::named("mixed", DEFAULT_FAULT_SEED).expect("`mixed` is a bundled plan")
}

/// Spec-revision fingerprint over the five bundled `.dil` specs, the
/// engine version and the `fuel` budget — the `spec_rev` every outcome
/// ledger key in this workspace is stamped with (see
/// `devil_kernel::fingerprint`). Compute it once per campaign or service,
/// never per mutant.
pub fn spec_revision(fuel: u64) -> u64 {
    devil_kernel::fingerprint::spec_revision(
        crate::specs::all().iter().map(|(_, file, src)| (*file, *src)),
        fuel,
    )
}

/// Every scenario name in the catalog, in table order (kept in sync with
/// [`scenario_catalog`] by the crate's tests — no driver corpus is built
/// just to list names).
pub fn scenario_names() -> &'static [&'static str] {
    &["ide-boot", "ide-stress", "mouse-stream", "ne2000-stress"]
}

/// The catalog entry for one scenario, or `None` for names not in the
/// catalog (`+faults` suffixes resolve to their base scenario's corpus:
/// the fault variant runs the same drivers on flakier hardware).
pub fn find_case(scenario: &str) -> Option<ScenarioCase> {
    let base = scenario.strip_suffix("+faults").unwrap_or(scenario);
    scenario_catalog().into_iter().find(|c| c.scenario == base)
}

/// Look up one driver of a scenario's corpus by its stable label — the
/// request-routing path of the campaign service, which keys workloads by
/// `(scenario, driver label)`.
pub fn find_variant(scenario: &str, label: &str) -> Option<DriverVariant> {
    find_case(scenario)?.drivers.into_iter().find(|v| v.label == label)
}

/// The include headers a driver file compiles against, looked up across
/// the whole catalog by file name (`None` for unknown files). Service
/// workers use this to build one shared pre-lexed `IncludeCache` per
/// driver file, whatever scenario a request pairs it with.
pub fn driver_headers(file: &str) -> Option<Vec<(String, String)>> {
    scenario_catalog()
        .into_iter()
        .flat_map(|c| c.drivers)
        .find(|v| v.file == file)
        .map(|v| v.headers)
}

/// The IDE driver pair — shared by every scenario that speaks the
/// `ide_probe`/`ide_read`/`ide_write` contract.
fn ide_drivers() -> Vec<DriverVariant> {
    vec![
        DriverVariant {
            label: "ide_piix4_c",
            file: ide::IDE_C_FILE,
            source: ide::IDE_C_DRIVER,
            headers: Vec::new(),
            style: CStyle::PlainC,
            golden_fraction: 0.008,
        },
        DriverVariant {
            label: "ide_piix4_cdevil",
            file: ide::IDE_CDEVIL_FILE,
            source: ide::IDE_CDEVIL_DRIVER,
            headers: ide::cdevil_includes(),
            style: CStyle::CDevil,
            golden_fraction: 0.008,
        },
    ]
}

/// The full pairing of scenarios and driver corpora.
pub fn scenario_catalog() -> Vec<ScenarioCase> {
    vec![
        ScenarioCase { scenario: "ide-boot", drivers: ide_drivers() },
        ScenarioCase { scenario: "ide-stress", drivers: ide_drivers() },
        ScenarioCase {
            scenario: "mouse-stream",
            drivers: vec![
                DriverVariant {
                    label: "busmouse_c",
                    file: busmouse::BM_C_FILE,
                    source: busmouse::BM_C_DRIVER,
                    headers: Vec::new(),
                    style: CStyle::PlainC,
                    golden_fraction: 0.10,
                },
                DriverVariant {
                    label: "busmouse_cdevil",
                    file: busmouse::BM_CDEVIL_FILE,
                    source: busmouse::BM_CDEVIL_DRIVER,
                    headers: busmouse::bm_includes(),
                    style: CStyle::CDevil,
                    golden_fraction: 0.10,
                },
            ],
        },
        ScenarioCase {
            scenario: "ne2000-stress",
            drivers: vec![DriverVariant {
                label: "ne2000_c",
                file: ne2000::NE2000_C_FILE,
                source: ne2000::NE2000_C_DRIVER,
                headers: Vec::new(),
                style: CStyle::PlainC,
                golden_fraction: 0.05,
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use devil_kernel::boot::DEFAULT_FUEL;
    use devil_kernel::scenario::run_mutant_in;
    use devil_kernel::Outcome;

    #[test]
    fn every_catalog_name_builds() {
        for case in scenario_catalog() {
            let s = build_scenario(case.scenario).expect("catalog names must build");
            assert_eq!(s.name(), case.scenario);
            assert!(!case.drivers.is_empty());
        }
        assert!(build_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn fault_variants_build_for_every_catalog_name() {
        for name in scenario_names() {
            let full = format!("{name}+faults");
            let s = build_scenario(&full).expect("fault variant must build");
            assert_eq!(s.name(), full);
        }
        assert!(build_scenario("no-such-scenario+faults").is_none());
        // Explicit plans work too, and keep the same variant name.
        let s = build_faulted("mouse-stream", FaultPlan::named("bus-noise", 7).unwrap())
            .unwrap();
        assert_eq!(s.name(), "mouse-stream+faults");
    }

    #[test]
    fn scenario_names_match_the_catalog() {
        let from_catalog: Vec<&str> =
            scenario_catalog().iter().map(|c| c.scenario).collect();
        assert_eq!(scenario_names(), from_catalog.as_slice());
    }

    #[test]
    fn catalog_lookups_resolve_names_labels_and_files() {
        for case in scenario_catalog() {
            let found = find_case(case.scenario).expect("catalog case resolves");
            assert_eq!(found.scenario, case.scenario);
            // The fault variant shares the base scenario's corpus.
            let faulted = find_case(&format!("{}+faults", case.scenario))
                .expect("fault variant resolves to the base corpus");
            assert_eq!(faulted.scenario, case.scenario);
            for v in &case.drivers {
                let variant = find_variant(case.scenario, v.label)
                    .expect("driver label resolves");
                assert_eq!(variant.file, v.file);
                let headers = driver_headers(v.file).expect("driver file resolves");
                assert_eq!(headers.len(), v.headers.len());
            }
        }
        assert!(find_case("no-such-scenario").is_none());
        assert!(find_variant("ide-boot", "no-such-driver").is_none());
        assert!(driver_headers("no_such_file.c").is_none());
    }

    #[test]
    fn every_clean_driver_passes_its_scenario() {
        for case in scenario_catalog() {
            for v in &case.drivers {
                let incs: Vec<(&str, &str)> =
                    v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
                let scenario = build_scenario(case.scenario).unwrap();
                let (outcome, detail) =
                    run_mutant_in(scenario, v.file, v.source, &incs, None, DEFAULT_FUEL);
                assert_eq!(
                    outcome,
                    Outcome::Boot,
                    "{}/{}: clean driver must pass clean: {detail}",
                    case.scenario,
                    v.label
                );
            }
        }
    }
}
