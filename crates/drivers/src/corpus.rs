//! The scenario catalog: which driver corpus runs under which workload.
//!
//! The scenario engine (`devil_kernel::scenario`) is deliberately
//! driver-agnostic; this module supplies the pairing the experiments
//! actually run — for every scenario name, the drivers that implement its
//! entry-point contract (and the mutation style each is mutated with).
//! The campaign CLI (`examples/mutation_campaign.rs`), the per-scenario
//! golden differential tests and the `scenarios` bench all resolve
//! workloads through this one table.

use crate::{busmouse, ide, ne2000};
use devil_kernel::fs;
use devil_kernel::scenario::Scenario;
use devil_kernel::scenarios::{
    IdeBootScenario, IdeStressScenario, MouseStreamScenario, Ne2000StressScenario,
};
use devil_mutagen::c::CStyle;

/// One driver that runs under a scenario.
pub struct DriverVariant {
    /// Stable label (golden files, table headings).
    pub label: &'static str,
    /// File name used in diagnostics and coverage.
    pub file: &'static str,
    /// Driver source with `DEVIL_MUT_BEGIN`/`END` markers.
    pub source: &'static str,
    /// Generated stub headers the driver compiles against (empty for
    /// plain C).
    pub headers: Vec<(String, String)>,
    /// Mutation style for `CMutationModel`.
    pub style: CStyle,
    /// Sampling fraction used by the golden differential tests — tuned so
    /// every variant contributes a few dozen mutants, not thousands.
    pub golden_fraction: f64,
}

/// One scenario and its driver corpus.
pub struct ScenarioCase {
    /// The scenario name ([`build_scenario`] accepts it).
    pub scenario: &'static str,
    /// The drivers exporting this scenario's entry-point contract.
    pub drivers: Vec<DriverVariant>,
}

/// Construct a scenario by name. Names are the kebab-case
/// `Scenario::name()` values listed by [`scenario_names`].
pub fn build_scenario(name: &str) -> Option<Box<dyn Scenario + Send>> {
    match name {
        "ide-boot" => Some(Box::new(IdeBootScenario::new(fs::standard_files()))),
        "ide-stress" => Some(Box::new(IdeStressScenario::new(fs::standard_files()))),
        "mouse-stream" => Some(Box::new(MouseStreamScenario::new())),
        "ne2000-stress" => Some(Box::new(Ne2000StressScenario::new())),
        _ => None,
    }
}

/// Every scenario name in the catalog, in table order (kept in sync with
/// [`scenario_catalog`] by the crate's tests — no driver corpus is built
/// just to list names).
pub fn scenario_names() -> &'static [&'static str] {
    &["ide-boot", "ide-stress", "mouse-stream", "ne2000-stress"]
}

/// The IDE driver pair — shared by every scenario that speaks the
/// `ide_probe`/`ide_read`/`ide_write` contract.
fn ide_drivers() -> Vec<DriverVariant> {
    vec![
        DriverVariant {
            label: "ide_piix4_c",
            file: ide::IDE_C_FILE,
            source: ide::IDE_C_DRIVER,
            headers: Vec::new(),
            style: CStyle::PlainC,
            golden_fraction: 0.008,
        },
        DriverVariant {
            label: "ide_piix4_cdevil",
            file: ide::IDE_CDEVIL_FILE,
            source: ide::IDE_CDEVIL_DRIVER,
            headers: ide::cdevil_includes(),
            style: CStyle::CDevil,
            golden_fraction: 0.008,
        },
    ]
}

/// The full pairing of scenarios and driver corpora.
pub fn scenario_catalog() -> Vec<ScenarioCase> {
    vec![
        ScenarioCase { scenario: "ide-boot", drivers: ide_drivers() },
        ScenarioCase { scenario: "ide-stress", drivers: ide_drivers() },
        ScenarioCase {
            scenario: "mouse-stream",
            drivers: vec![
                DriverVariant {
                    label: "busmouse_c",
                    file: busmouse::BM_C_FILE,
                    source: busmouse::BM_C_DRIVER,
                    headers: Vec::new(),
                    style: CStyle::PlainC,
                    golden_fraction: 0.10,
                },
                DriverVariant {
                    label: "busmouse_cdevil",
                    file: busmouse::BM_CDEVIL_FILE,
                    source: busmouse::BM_CDEVIL_DRIVER,
                    headers: busmouse::bm_includes(),
                    style: CStyle::CDevil,
                    golden_fraction: 0.10,
                },
            ],
        },
        ScenarioCase {
            scenario: "ne2000-stress",
            drivers: vec![DriverVariant {
                label: "ne2000_c",
                file: ne2000::NE2000_C_FILE,
                source: ne2000::NE2000_C_DRIVER,
                headers: Vec::new(),
                style: CStyle::PlainC,
                golden_fraction: 0.05,
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use devil_kernel::boot::DEFAULT_FUEL;
    use devil_kernel::scenario::run_mutant_in;
    use devil_kernel::Outcome;

    #[test]
    fn every_catalog_name_builds() {
        for case in scenario_catalog() {
            let s = build_scenario(case.scenario).expect("catalog names must build");
            assert_eq!(s.name(), case.scenario);
            assert!(!case.drivers.is_empty());
        }
        assert!(build_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn scenario_names_match_the_catalog() {
        let from_catalog: Vec<&str> =
            scenario_catalog().iter().map(|c| c.scenario).collect();
        assert_eq!(scenario_names(), from_catalog.as_slice());
    }

    #[test]
    fn every_clean_driver_passes_its_scenario() {
        for case in scenario_catalog() {
            for v in &case.drivers {
                let incs: Vec<(&str, &str)> =
                    v.headers.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
                let scenario = build_scenario(case.scenario).unwrap();
                let (outcome, detail) =
                    run_mutant_in(scenario, v.file, v.source, &incs, None, DEFAULT_FUEL);
                assert_eq!(
                    outcome,
                    Outcome::Boot,
                    "{}/{}: clean driver must pass clean: {detail}",
                    case.scenario,
                    v.label
                );
            }
        }
    }
}
