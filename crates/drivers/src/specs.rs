//! The five Devil specifications of the paper's Table 2.

use devil_core::{CheckedSpec, CompileError, Spec};

/// Logitech busmouse — Figure 3 of the paper, verbatim.
pub const BUSMOUSE: &str = include_str!("../specs/busmouse.dil");
/// Intel 82371FB PCI bus-master IDE function.
pub const PCI82371: &str = include_str!("../specs/pci82371.dil");
/// Intel PIIX4 IDE interface (both channels).
pub const IDE_PIIX4: &str = include_str!("../specs/ide_piix4.dil");
/// NE2000 (DP8390) Ethernet controller.
pub const NE2000: &str = include_str!("../specs/ne2000.dil");
/// 3Dlabs Permedia 2 graphics controller.
pub const PERMEDIA2: &str = include_str!("../specs/permedia2.dil");

/// `(display name, file name, source)` for all five specifications, in
/// Table 2 order.
pub fn all() -> [(&'static str, &'static str, &'static str); 5] {
    [
        ("Logitech Busmouse", "busmouse.dil", BUSMOUSE),
        ("PCI Bus Master (Intel 82371FB)", "pci82371.dil", PCI82371),
        ("IDE (Intel PIIX4)", "ide_piix4.dil", IDE_PIIX4),
        ("Ethernet NE2000 (ns8390)", "ne2000.dil", NE2000),
        ("Graphic card (Permedia 2)", "permedia2.dil", PERMEDIA2),
    ]
}

/// Parse and check one of the bundled specifications.
///
/// # Errors
///
/// Propagates compiler errors — the bundled specs are tested to be clean,
/// so an error here means the caller passed a mutated source.
pub fn compile(file: &str, source: &str) -> Result<CheckedSpec, CompileError> {
    Spec::parse(file, source)?.check()
}

/// Count the non-blank, non-comment-only lines of a specification (the
/// "Number of lines" column of Table 2).
pub fn effective_lines(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_specs_compile_clean() {
        for (name, file, src) in all() {
            match compile(file, src) {
                Ok(checked) => {
                    assert!(!checked.variables.is_empty(), "{name} has no variables");
                }
                Err(e) => panic!("{name} failed to check:\n{e}"),
            }
        }
    }

    #[test]
    fn busmouse_matches_figure3_structure() {
        let c = compile("busmouse.dil", BUSMOUSE).unwrap();
        assert_eq!(c.device_name(), "logitech_busmouse");
        assert_eq!(c.registers.len(), 8);
        assert_eq!(c.variables.len(), 7);
        assert!(c.variable("dx").unwrap().1.readable);
        assert!(c.variable("index").unwrap().1.private);
    }

    #[test]
    fn ide_exposes_the_figure4_drive_variable() {
        let c = compile("ide_piix4.dil", IDE_PIIX4).unwrap();
        let (_, drive) = c.variable("Drive").unwrap();
        assert!(drive.readable && drive.writable);
        match &drive.ty {
            devil_core::ir::VarType::Enum { arms } => {
                assert!(arms.iter().any(|(n, _, v)| n == "MASTER" && *v == 0));
                assert!(arms.iter().any(|(n, _, v)| n == "SLAVE" && *v == 1));
            }
            other => panic!("Drive should be an enum, got {other:?}"),
        }
        // The status bits the driver polls.
        for v in ["busy", "ready", "drq", "error_bit"] {
            assert!(c.variable(v).is_some(), "missing status variable {v}");
        }
    }

    #[test]
    fn ne2000_page_select_is_private_with_pre_actions() {
        let c = compile("ne2000.dil", NE2000).unwrap();
        let (page_id, page) = c.variable("page").unwrap();
        assert!(page.private);
        let (_, pstart) = c.register("pstart_reg").unwrap();
        assert_eq!(pstart.pre, vec![(page_id, 0)]);
        let (_, par0) = c.register("par0_reg").unwrap();
        assert_eq!(par0.pre, vec![(page_id, 1)]);
    }

    #[test]
    fn line_counts_are_in_the_papers_range() {
        // Paper: busmouse 22, PCI 27, IDE 130, NE2000 131, Permedia2 128.
        let counts: Vec<(usize, usize, &str)> = vec![
            (15, 30, BUSMOUSE),
            (15, 35, PCI82371),
            (60, 140, IDE_PIIX4),
            (70, 140, NE2000),
            (25, 135, PERMEDIA2),
        ]
        .into_iter()
        .collect();
        for (lo, hi, src) in counts {
            let n = effective_lines(src);
            assert!((lo..=hi).contains(&n), "line count {n} outside {lo}..={hi}");
        }
    }

    #[test]
    fn all_specs_round_trip_through_the_printer() {
        use devil_core::{parser::parse, printer};
        for (name, _, src) in all() {
            let ast1 = parse(src).unwrap();
            let text = printer::print(&ast1);
            let ast2 = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(printer::ast_eq(&ast1, &ast2), "{name} diverged");
        }
    }

    #[test]
    fn specs_generate_c_in_both_modes() {
        use devil_core::codegen::{generate, CodegenMode};
        for (name, file, src) in all() {
            let checked = compile(file, src).unwrap();
            for mode in [CodegenMode::Debug, CodegenMode::Production] {
                let c = generate(&checked, mode);
                assert!(c.contains("_init"), "{name}: no init function");
            }
        }
    }
}
