//! Property tests for the outcome ledger's recovery contract.
//!
//! The ledger file is the part of the campaign engine that an unclean
//! shutdown gets to mangle: torn tails from `kill -9`, flipped bits from
//! a bad disk, duplicated regions from a botched copy. The contract
//! (`devil_mutagen::ledger` module docs) is *total recovery*: whatever
//! bytes are on disk, `Ledger::resume` must come back without panicking,
//! keep every record up to the first undecodable one, serve nothing
//! stale or wrong, and leave the file in a state that round-trips —
//! fresh appends land after the truncated tail and survive the next
//! resume. These tests feed it truncations, bit flips, duplications and
//! arbitrary garbage from the outside.

use devil_mutagen::{Ledger, LedgerKey};
use proptest::prelude::*;
use std::path::PathBuf;

const REV: u64 = 7;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("devil-ledger-fuzz-{}-{name}.bin", std::process::id()))
}

fn key(n: u64, rev: u64) -> LedgerKey {
    LedgerKey {
        file: "busmouse.c".into(),
        source: n,
        scenario: "mouse-stream".into(),
        plan: "mixed".into(),
        plan_seed: 3,
        dead_line: 12,
        spec_rev: rev,
    }
}

/// A representative ledger: outcome records, a strike, an eviction, and
/// one entry from an older spec revision that must never be served.
fn sample_bytes(name: &str) -> (PathBuf, Vec<u8>) {
    let path = tmp(name);
    let _ = std::fs::remove_file(&path);
    {
        let old = Ledger::create(&path, REV - 1).unwrap();
        old.record(&key(99, REV - 1), 2, "from the old world").unwrap();
    }
    {
        let ledger = Ledger::resume(&path, REV).unwrap();
        ledger.record(&key(1, REV), 0, "").unwrap();
        ledger.record(&key(2, REV), 4, "boot check: panic in isr").unwrap();
        ledger.record_strike("busmouse.c", 0xBAD).unwrap();
        ledger.record(&key(3, REV), 1, "detail three").unwrap();
        ledger.evict(&key(3, REV)).unwrap();
        ledger.record(&key(4, REV), 6, "").unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// The invariants every recovery must uphold, whatever was on disk:
/// stale entries are never served, every served entry is one we wrote
/// under the open revision, the tombstone holds, and the recovered file
/// accepts appends that survive the *next* resume byte-exactly.
fn check_recovered(path: &PathBuf) {
    let ledger = Ledger::resume(path, REV).unwrap();
    // Stale keys are dead whatever happened to the bytes.
    assert_eq!(ledger.lookup(&key(99, REV)), None, "stale entry served");
    // Anything served must be exactly what was recorded under REV.
    let expected = [
        (1u64, 0u8, ""),
        (2, 4, "boot check: panic in isr"),
        (4, 6, ""),
    ];
    for (n, code, detail) in expected {
        if let Some(got) = ledger.lookup(&key(n, REV)) {
            assert_eq!(got, (code, detail.to_string()), "wrong value for key {n}");
        }
    }
    // A corrupted file may have lost the eviction tombstone along with
    // everything after it, and a *duplicated* region may legitimately
    // revive key 3 by re-appending its record after the tombstone
    // (append-only: the later record wins). Only when the file replayed
    // exactly as written must the tombstone hold.
    if ledger.recovery().records == 7 {
        assert_eq!(ledger.lookup(&key(3, REV)), None, "tombstone ignored");
    }
    // Round-trip: the recovered ledger accepts appends...
    ledger.record(&key(5, REV), 3, "fresh after recovery").unwrap();
    assert_eq!(ledger.lookup(&key(5, REV)), Some((3, "fresh after recovery".into())));
    drop(ledger);
    // ...and the next resume still sees them: recovery left a clean tail.
    let again = Ledger::resume(path, REV).unwrap();
    assert_eq!(
        again.lookup(&key(5, REV)),
        Some((3, "fresh after recovery".into())),
        "append after recovery lost"
    );
    assert_eq!(again.recovery().torn_bytes, 0, "recovery left a torn tail behind");
}

proptest! {
    /// Every truncation point — mid-header, mid-checksum, mid-payload —
    /// recovers to a working ledger.
    #[test]
    fn truncations_recover_totally(cut in 0usize..1000) {
        let (path, bytes) = sample_bytes("trunc");
        let cut = cut % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        check_recovered(&path);
        std::fs::remove_file(&path).unwrap();
    }

    /// A single flipped bit anywhere in the file never panics recovery
    /// and never serves a wrong value for an intact record.
    #[test]
    fn bit_flips_recover_totally(pos in 0usize..1000, bit in 0u32..8) {
        let (path, mut bytes) = sample_bytes("flip");
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        // A flip in a length field can declare a huge record; a flip in
        // a checksum kills that record; a flip in a payload must be
        // caught by the checksum. All of them truncate, none panic —
        // and an intact prefix keeps serving correct values.
        check_recovered(&path);
        std::fs::remove_file(&path).unwrap();
    }

    /// Duplicated regions (a botched copy, a doubled append) recover:
    /// replaying the same record twice is idempotent, and the first
    /// undecodable byte still truncates.
    #[test]
    fn duplications_recover_totally(at in 0usize..1000, len in 1usize..200) {
        let (path, bytes) = sample_bytes("dup");
        let at = at % bytes.len();
        let len = len.min(bytes.len() - at);
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[at..at + len]);
        std::fs::write(&path, &doubled).unwrap();
        check_recovered(&path);
        std::fs::remove_file(&path).unwrap();
    }

    /// Arbitrary garbage appended after valid records: everything up to
    /// the garbage is served, the garbage is truncated away.
    #[test]
    fn trailing_garbage_recovers_totally(junk in prop::collection::vec(any::<u8>(), 1..64)) {
        let (path, bytes) = sample_bytes("junk");
        let mut mangled = bytes.clone();
        mangled.extend_from_slice(&junk);
        std::fs::write(&path, &mangled).unwrap();
        let ledger = Ledger::resume(&path, REV).unwrap();
        // The junk may happen to decode as a record (it is, after all,
        // length + checksum framed) — but the overwhelmingly common case
        // is truncation, and either way every intact record survives.
        assert_eq!(ledger.lookup(&key(2, REV)), Some((4, "boot check: panic in isr".into())));
        drop(ledger);
        check_recovered(&path);
        std::fs::remove_file(&path).unwrap();
    }

    /// A file that is *nothing but* garbage recovers to an empty ledger.
    #[test]
    fn pure_garbage_recovers_to_empty(junk in prop::collection::vec(any::<u8>(), 0..256)) {
        let path = tmp("pure");
        std::fs::write(&path, &junk).unwrap();
        let ledger = Ledger::resume(&path, REV).unwrap();
        // Whatever parsed, nothing stale or foreign is served under REV
        // unless it carries REV's stamp — which random bytes essentially
        // never do (they would need a valid FNV checksum too).
        ledger.record(&key(1, REV), 0, "").unwrap();
        assert_eq!(ledger.lookup(&key(1, REV)), Some((0, String::new())));
        drop(ledger);
        let again = Ledger::resume(&path, REV).unwrap();
        assert_eq!(again.lookup(&key(1, REV)), Some((0, String::new())));
        std::fs::remove_file(&path).unwrap();
    }
}
