//! Literal mutation operators (§3.1).
//!
//! A typographical error in a literal is one extra character, one missing
//! character, or one replaced character — always within the literal's
//! semantic class. The paper's worked example: a 2-digit decimal number has
//! 2 removals + 30 insertions + 18 replacements = 50 mutants.
//!
//! Candidates equal in *value* to the original (e.g. `5` → `05` in Devil)
//! are discarded, since mutants must differ semantically.

/// The semantic class of a literal, determining its alphabet and which part
/// of the text is mutable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteralClass {
    /// Base-10 integer.
    Decimal,
    /// `0x...` integer; the prefix is fixed, digits mutate.
    Hex,
    /// `0...` octal integer; the leading 0 is fixed, digits mutate.
    Octal,
    /// Devil bit string over `{0, 1, *}` (variable patterns).
    BitString,
    /// Devil bit pattern over `{0, 1, *, .}` (register masks).
    BitPattern,
}

impl LiteralClass {
    /// The character alphabet of this class.
    pub fn alphabet(self) -> &'static [char] {
        match self {
            LiteralClass::Decimal => &['0', '1', '2', '3', '4', '5', '6', '7', '8', '9'],
            LiteralClass::Hex => &[
                '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'a', 'b', 'c', 'd', 'e', 'f',
            ],
            LiteralClass::Octal => &['0', '1', '2', '3', '4', '5', '6', '7'],
            LiteralClass::BitString => &['0', '1', '*'],
            LiteralClass::BitPattern => &['0', '1', '*', '.'],
        }
    }

    /// Classify a C/Devil number literal's text. Returns the class plus the
    /// fixed prefix length (`0x` for hex, the leading `0` for octal).
    pub fn classify_number(text: &str) -> (LiteralClass, usize) {
        let lower = text.to_ascii_lowercase();
        if lower.starts_with("0x") {
            (LiteralClass::Hex, 2)
        } else if text.len() > 1 && text.starts_with('0') && text.bytes().all(|b| b.is_ascii_digit())
        {
            (LiteralClass::Octal, 1)
        } else {
            (LiteralClass::Decimal, 0)
        }
    }

    /// Parse a numeric literal of this class to its value (`None` for the
    /// bit classes or unparsable text).
    pub fn value_of(self, digits: &str) -> Option<u64> {
        match self {
            LiteralClass::Decimal => digits.parse().ok(),
            LiteralClass::Hex => u64::from_str_radix(digits, 16).ok(),
            LiteralClass::Octal => {
                if digits.is_empty() {
                    Some(0)
                } else {
                    u64::from_str_radix(digits, 8).ok()
                }
            }
            _ => None,
        }
    }
}

/// All single-character typo variants of `text` within `class`.
///
/// `prefix_len` bytes are held fixed (e.g. the `0x`). Variants that parse
/// to the same numeric value as the original are dropped; bit-class
/// variants are value-distinct whenever the text differs, except that a
/// removal from a 1-character literal (which would empty it) is skipped.
pub fn literal_mutations(text: &str, class: LiteralClass, prefix_len: usize) -> Vec<String> {
    // Split off any integer suffix (u/U/l/L) — fixed, like the prefix.
    let body_end = text
        .bytes()
        .rposition(|b| !matches!(b | 0x20, b'u' | b'l'))
        .map(|i| i + 1)
        .unwrap_or(text.len());
    let prefix = &text[..prefix_len];
    let digits = &text[prefix_len..body_end];
    let suffix = &text[body_end..];
    let original_value = class.value_of(digits);
    let mut out = Vec::new();
    let chars: Vec<char> = digits.chars().collect();
    let mut push = |candidate: String| {
        if candidate == digits {
            return;
        }
        if let (Some(ov), Some(nv)) = (original_value, class.value_of(&candidate)) {
            // Semantically identical (e.g. leading-zero insertion in a
            // context where it does not change the value class).
            if ov == nv && prefix_len > 0 {
                return;
            }
            if ov == nv && !candidate.starts_with('0') {
                return;
            }
            // A decimal gaining a leading zero becomes octal in C —
            // semantically different unless the value coincides.
            if ov == nv
                && candidate.starts_with('0')
                && class == LiteralClass::Decimal
                && u64::from_str_radix(&candidate, 8).ok() == Some(ov)
            {
                return;
            }
        }
        let full = format!("{prefix}{candidate}{suffix}");
        if !out.contains(&full) {
            out.push(full);
        }
    };
    // Removals.
    if chars.len() > 1 {
        for i in 0..chars.len() {
            let mut c = chars.clone();
            c.remove(i);
            push(c.into_iter().collect());
        }
    }
    // Insertions.
    for i in 0..=chars.len() {
        for &a in class.alphabet() {
            let mut c = chars.clone();
            c.insert(i, a);
            push(c.into_iter().collect());
        }
    }
    // Replacements.
    for i in 0..chars.len() {
        for &a in class.alphabet() {
            if a == chars[i] {
                continue;
            }
            let mut c = chars.clone();
            c[i] = a;
            push(c.into_iter().collect());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_two_digit_decimal_yields_fifty() {
        // "given a 2-digit base-10 number, 50 mutants can be generated:
        //  2 for removing a digit, 30 for inserting a new digit, and 18
        //  for replacing a digit" — §3.1. A handful of the 50 collapse to
        //  the same value (e.g. inserting the duplicate digit) and are
        //  dropped; the bound is 50.
        let ms = literal_mutations("50", LiteralClass::Decimal, 0);
        assert!(ms.len() <= 50, "{}", ms.len());
        assert!(ms.len() >= 45, "{} -> {ms:?}", ms.len());
        assert!(ms.contains(&"5".to_string()));
        assert!(ms.contains(&"0".to_string()));
        assert!(ms.contains(&"150".to_string()));
        assert!(ms.contains(&"51".to_string()));
        assert!(!ms.contains(&"50".to_string()));
    }

    #[test]
    fn hex_prefix_is_fixed() {
        let (class, plen) = LiteralClass::classify_number("0x1F");
        assert_eq!(class, LiteralClass::Hex);
        let ms = literal_mutations("0x1F", class, plen);
        assert!(ms.iter().all(|m| m.starts_with("0x")), "{ms:?}");
        assert!(ms.iter().any(|m| m == "0x1"), "{ms:?}");
        // The paper's own example: dropped/extra f characters.
        let ms = literal_mutations("0xfffff", LiteralClass::Hex, 2);
        assert!(ms.contains(&"0xffffff".to_string()));
        assert!(ms.contains(&"0xffff".to_string()));
    }

    #[test]
    fn octal_keeps_leading_zero() {
        let (class, plen) = LiteralClass::classify_number("017");
        assert_eq!(class, LiteralClass::Octal);
        let ms = literal_mutations("017", class, plen);
        assert!(ms.iter().all(|m| m.starts_with('0')), "{ms:?}");
        assert!(ms.iter().all(|m| !m.contains('8') && !m.contains('9')), "{ms:?}");
    }

    #[test]
    fn suffix_is_preserved() {
        let ms = literal_mutations("0x10u", LiteralClass::Hex, 2);
        assert!(ms.iter().all(|m| m.ends_with('u')), "{ms:?}");
        assert!(ms.contains(&"0x11u".to_string()));
    }

    #[test]
    fn bit_pattern_class_uses_four_symbols() {
        let ms = literal_mutations("1.", LiteralClass::BitPattern, 0);
        // Replacements of '.' include '0', '1', '*'.
        assert!(ms.contains(&"10".to_string()));
        assert!(ms.contains(&"1*".to_string()));
        assert!(ms.contains(&"11".to_string()));
        // Insertions can lengthen the mask (caught by the size check).
        assert!(ms.contains(&"1..".to_string()));
        // Removals can shorten it.
        assert!(ms.contains(&"1".to_string()));
    }

    #[test]
    fn bit_string_class_excludes_dot() {
        let ms = literal_mutations("10", LiteralClass::BitString, 0);
        assert!(ms.iter().all(|m| !m.contains('.')), "{ms:?}");
        assert!(ms.contains(&"1*".to_string()));
    }

    #[test]
    fn single_digit_is_not_emptied() {
        let ms = literal_mutations("5", LiteralClass::Decimal, 0);
        assert!(ms.iter().all(|m| !m.is_empty()));
        // 9 replacements + insertions.
        assert!(ms.contains(&"4".to_string()));
        assert!(ms.contains(&"55".to_string()));
    }

    #[test]
    fn value_identical_candidates_dropped() {
        // Inserting a leading zero into "0x01" gives "0x001" — same value,
        // same class: dropped.
        let ms = literal_mutations("0x01", LiteralClass::Hex, 2);
        assert!(!ms.contains(&"0x001".to_string()), "{ms:?}");
    }

    #[test]
    fn decimal_to_octal_reinterpretation_kept() {
        // "50" -> "050" is value 40 in C: a classic silent typo; must stay.
        let ms = literal_mutations("50", LiteralClass::Decimal, 0);
        assert!(ms.contains(&"050".to_string()), "{ms:?}");
    }

    #[test]
    fn classify_decimal() {
        assert_eq!(LiteralClass::classify_number("42"), (LiteralClass::Decimal, 0));
        assert_eq!(LiteralClass::classify_number("0"), (LiteralClass::Decimal, 0));
        assert_eq!(LiteralClass::classify_number("0X10"), (LiteralClass::Hex, 2));
    }
}
