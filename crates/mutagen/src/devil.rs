//! Mutation-site extraction and mutant generation for Devil specifications
//! (§3.2 of the paper).
//!
//! Sites are derived from the parsed AST so that every mutation is applied
//! in a context where the result stays *syntactically* valid:
//!
//! * every integer literal (offsets, sizes, bit indices, range bounds,
//!   pre-action values) — class decimal or hexadecimal;
//! * every quoted bit literal — class bit-pattern (`{0,1,*,.}`) for
//!   register masks, bit-string (`{0,1,*}`) for enum value patterns;
//! * mapping arrows (`=>` / `<=` / `<=>`) and the `,`/`..` operators inside
//!   integer-set types;
//! * identifier *uses* within their semantic class: register references in
//!   variable fragments, variable references in pre-actions, port
//!   references in port clauses — plus register declaration names. Variable
//!   declaration names are never mutated (§3.2: that would only rename the
//!   generated stub, not change the specification's semantics).

use crate::literal::{literal_mutations, LiteralClass};
use crate::operator::devil_operator_mutants;
use crate::site::{make_mutant, Mutant, MutationSite, SiteKind};
use devil_core::ast::{Item, TypeExpr};
use devil_core::error::DevilError;
use devil_core::lexer::lex;
use devil_core::parser::parse;
use devil_core::span::Span;
use devil_core::token::TokenKind;

/// Everything the generator knows about one specification.
#[derive(Debug)]
pub struct DevilMutationModel {
    source: String,
    sites: Vec<MutationSite>,
    /// Parallel to `sites`: the replacement texts for each site.
    replacements: Vec<Vec<String>>,
}

impl DevilMutationModel {
    /// Analyse `source`, which must be a well-formed specification.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the original does not parse — the model
    /// mutates *correct* specifications.
    pub fn new(source: &str) -> Result<Self, DevilError> {
        let ast = parse(source)?;
        let tokens = lex(source)?;
        let line_starts = line_starts(source);
        let line_of = |pos: usize| line_of(&line_starts, pos);

        let mut sites = Vec::new();
        let mut replacements = Vec::new();
        let mut add = |pos: usize, len: usize, kind: SiteKind, original: String, reps: Vec<String>| {
            if !reps.is_empty() {
                sites.push(MutationSite { pos, len, line: line_of(pos), kind, original });
                replacements.push(reps);
            }
        };

        // Classify bit literals: mask positions come from register decls.
        let mask_spans: Vec<Span> = ast
            .registers()
            .filter_map(|r| r.mask.as_ref().map(|m| m.span))
            .collect();
        // Int-set type spans: `,` and `..` inside them are mutable.
        let mut set_spans: Vec<Span> = Vec::new();
        for v in ast.variables() {
            if let TypeExpr::IntSet { span, .. } = &v.ty {
                set_spans.push(*span);
            }
        }

        for t in &tokens {
            match &t.kind {
                TokenKind::Int { text, .. } => {
                    let (class, plen) = LiteralClass::classify_number(text);
                    add(
                        t.span.start,
                        t.span.len(),
                        SiteKind::Literal,
                        text.clone(),
                        literal_mutations(text, class, plen),
                    );
                }
                TokenKind::BitLiteral(pattern) => {
                    let class = if mask_spans.contains(&t.span) {
                        LiteralClass::BitPattern
                    } else {
                        LiteralClass::BitString
                    };
                    // Mutate the contents, keeping the quotes.
                    let inner: Vec<String> = literal_mutations(pattern, class, 0);
                    add(
                        t.span.start + 1,
                        pattern.len(),
                        SiteKind::Literal,
                        pattern.clone(),
                        inner,
                    );
                }
                TokenKind::FatArrow | TokenKind::ReadArrow | TokenKind::BothArrow => {
                    let original = source[t.span.start..t.span.end].to_string();
                    let reps = devil_operator_mutants(&original)
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    add(t.span.start, t.span.len(), SiteKind::Operator, original, reps);
                }
                TokenKind::DotDot | TokenKind::Comma => {
                    let inside_set = set_spans
                        .iter()
                        .any(|s| t.span.start >= s.start && t.span.end <= s.end);
                    if inside_set {
                        let original = source[t.span.start..t.span.end].to_string();
                        let reps = devil_operator_mutants(&original)
                            .iter()
                            .map(|s| s.to_string())
                            .collect();
                        add(t.span.start, t.span.len(), SiteKind::Operator, original, reps);
                    }
                }
                _ => {}
            }
        }

        // Identifier sites from the AST (use sites + register decl names).
        let reg_pool: Vec<String> = ast.registers().map(|r| r.name.name.clone()).collect();
        let var_pool: Vec<String> = ast.variables().map(|v| v.name.name.clone()).collect();
        let port_pool: Vec<String> = ast.params.iter().map(|p| p.name.name.clone()).collect();
        let others = |pool: &[String], me: &str| -> Vec<String> {
            pool.iter().filter(|n| *n != me).cloned().collect()
        };
        let mut ident_site = |span: Span, name: &str, pool: &[String]| {
            add(
                span.start,
                span.len(),
                SiteKind::Identifier,
                name.to_string(),
                others(pool, name),
            );
        };
        for item in &ast.items {
            match item {
                Item::Register(r) => {
                    ident_site(r.name.span, &r.name.name, &reg_pool);
                    for pc in &r.ports {
                        ident_site(pc.port.span, &pc.port.name, &port_pool);
                    }
                    for pa in &r.pre {
                        ident_site(pa.var.span, &pa.var.name, &var_pool);
                    }
                }
                Item::Variable(v) => {
                    for f in &v.frags {
                        ident_site(f.register.span, &f.register.name, &reg_pool);
                    }
                }
            }
        }

        // Deterministic ordering by position.
        let mut order: Vec<usize> = (0..sites.len()).collect();
        order.sort_by_key(|&i| sites[i].pos);
        let sites = order.iter().map(|&i| sites[i].clone()).collect();
        let replacements = order.iter().map(|&i| replacements[i].clone()).collect();
        Ok(DevilMutationModel { source: source.to_string(), sites, replacements })
    }

    /// The mutation sites, ordered by position.
    pub fn sites(&self) -> &[MutationSite] {
        &self.sites
    }

    /// Generate every mutant.
    ///
    /// §3.1 requires mutants to be syntactically correct; the rare
    /// context-sensitive case (a set `,` flipped to `..` next to an
    /// existing range) is filtered out by re-parsing each candidate.
    pub fn mutants(&self) -> Vec<Mutant> {
        let mut out = Vec::new();
        for (i, reps) in self.replacements.iter().enumerate() {
            for r in reps {
                let m = make_mutant(&self.source, &self.sites, i, r.clone());
                if self.sites[i].kind != SiteKind::Operator || parse(&m.source).is_ok() {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Total number of valid mutants.
    pub fn mutant_count(&self) -> usize {
        self.mutants().len()
    }
}

fn line_starts(source: &str) -> Vec<usize> {
    let mut v = vec![0];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

fn line_of(starts: &[usize], pos: usize) -> u32 {
    match starts.binary_search(&pos) {
        Ok(i) => i as u32 + 1,
        Err(i) => i as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"device d (base : bit[8] port @ {0..1})
{
  register ctl = write base @ 1, mask '1..00000' : bit[8];
  private variable sel = ctl[6..5] : int(2);
  variable pad = ctl[4..0] : int(5);
  register data = read base @ 0, pre {sel = 2} : bit[8];
  variable v = data, volatile : int(8);
  variable mode = ctl[4] : { FAST => '1', SLOW => '0' };
}
"#;

    // A spec where ctl[4..0] bits would clash: adjust — use a clean one.
    const CLEAN: &str = r#"device d (base : bit[8] port @ {0..1})
{
  register ctl = write base @ 1, mask '1..00000' : bit[8];
  private variable sel = ctl[6..5] : int(2);
  register data = read base @ 0, pre {sel = 2} : bit[8];
  variable v = data, volatile : int(8);
  variable w = data2 : int {0, 2..3};
  register data2 = read base @ 0, pre {sel = 1}, mask '******..' : bit[8];
}
"#;

    #[test]
    fn extracts_literal_sites() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        let lits: Vec<&MutationSite> =
            m.sites().iter().filter(|s| s.kind == SiteKind::Literal).collect();
        // 8 (port width), 0, 1 (range), 1 (offset), mask, 8 (size), 6, 5,
        // 2 (int width), 4, 0, 5, 0 (offset), 2 (pre), 8, 8, 4, patterns...
        assert!(lits.len() > 15, "{}", lits.len());
        assert!(lits.iter().any(|s| s.original == "1..00000"));
    }

    #[test]
    fn mask_sites_use_bit_pattern_class() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        let mask_site = m
            .sites()
            .iter()
            .position(|s| s.original == "1..00000")
            .unwrap();
        let reps = &m.replacements[mask_site];
        assert!(reps.iter().any(|r| r.contains('.')));
        assert!(reps.iter().any(|r| r.contains('*')));
    }

    #[test]
    fn enum_patterns_use_bit_string_class() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        let pat = m
            .sites()
            .iter()
            .position(|s| s.kind == SiteKind::Literal && s.original == "1" && s.len == 1)
            .expect("enum pattern '1' site");
        let reps = &m.replacements[pat];
        assert!(
            reps.iter().all(|r| !r.contains('.')),
            "enum patterns must not gain mask dots: {reps:?}"
        );
    }

    #[test]
    fn arrow_sites_swap_within_class() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        let arrows: Vec<&MutationSite> = m
            .sites()
            .iter()
            .filter(|s| s.kind == SiteKind::Operator && s.original.contains('='))
            .collect();
        assert_eq!(arrows.len(), 2, "{arrows:?}");
    }

    #[test]
    fn set_comma_and_range_sites() {
        let m = DevilMutationModel::new(CLEAN).unwrap();
        let ops: Vec<&MutationSite> = m
            .sites()
            .iter()
            .filter(|s| s.kind == SiteKind::Operator && (s.original == "," || s.original == ".."))
            .collect();
        assert_eq!(ops.len(), 2, "{ops:?}");
    }

    #[test]
    fn port_range_dotdot_is_not_a_site() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        // The {0..1} in the device header must not be mutable to `,`.
        let header_op = m
            .sites()
            .iter()
            .find(|s| s.kind == SiteKind::Operator && s.pos < SPEC.find('{').unwrap() + 8);
        assert!(header_op.is_none(), "{header_op:?}");
    }

    #[test]
    fn identifier_sites_stay_in_class() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        // The `ctl` use in `sel = ctl[6..5]` must offer `data` (register
        // pool) but never `pad` or `v` (variables).
        let site = m
            .sites()
            .iter()
            .position(|s| {
                s.kind == SiteKind::Identifier
                    && s.original == "ctl"
                    && SPEC[..s.pos].ends_with("sel = ")
            })
            .expect("fragment use site");
        let reps = &m.replacements[site];
        assert!(reps.contains(&"data".to_string()), "{reps:?}");
        assert!(!reps.contains(&"pad".to_string()), "{reps:?}");
        assert!(!reps.contains(&"v".to_string()), "{reps:?}");
    }

    #[test]
    fn variable_decl_names_are_not_sites() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        // `variable pad = ...` — the `pad` after `variable` is a decl site.
        let decl_pos = SPEC.find("variable pad").unwrap() + "variable ".len();
        assert!(
            !m.sites().iter().any(|s| s.pos == decl_pos),
            "variable decl name must not be mutated"
        );
    }

    #[test]
    fn pre_action_variable_site_uses_variable_pool() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        let site = m
            .sites()
            .iter()
            .position(|s| s.kind == SiteKind::Identifier && s.original == "sel")
            .expect("pre-action site");
        let reps = &m.replacements[site];
        assert!(reps.contains(&"pad".to_string()), "{reps:?}");
        assert!(!reps.contains(&"ctl".to_string()), "{reps:?}");
    }

    #[test]
    fn all_mutants_differ_from_original_and_are_lexable() {
        let m = DevilMutationModel::new(SPEC).unwrap();
        let mutants = m.mutants();
        assert_eq!(mutants.len(), m.mutant_count());
        assert!(mutants.len() > 300, "{}", mutants.len());
        for mt in mutants.iter().take(500) {
            assert_ne!(mt.source, SPEC);
            // Lexically valid by construction.
            devil_core::lexer::lex(&mt.source).expect("mutants must lex");
        }
    }

    #[test]
    fn all_mutants_parse() {
        // Syntactic validity: by §3.1 every mutant must parse.
        let m = DevilMutationModel::new(CLEAN).unwrap();
        let bad = m
            .mutants()
            .iter()
            .filter(|mt| devil_core::parser::parse(&mt.source).is_err())
            .count();
        assert_eq!(bad, 0);
    }

    #[test]
    fn figure3_busmouse_site_count_is_plausible() {
        const BUSMOUSE: &str = r#"device logitech_busmouse (base : bit[8] port @ {0..3})
{
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);
  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];
  variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
  variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
  variable buttons = y_high[7..5], volatile : int(3);
}
"#;
        let m = DevilMutationModel::new(BUSMOUSE).unwrap();
        // Paper Table 2: 87 sites, 1678 mutants for the busmouse.
        let sites = m.sites().len();
        let mutants = m.mutant_count();
        assert!((60..=130).contains(&sites), "sites = {sites}");
        assert!((1000..=3000).contains(&mutants), "mutants = {mutants}");
    }
}
