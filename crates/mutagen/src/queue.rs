//! A bounded multi-producer/multi-consumer job queue with backpressure
//! accounting — the feed of a long-running campaign service.
//!
//! The batch engine ([`Campaign::run`](crate::Campaign::run)) owns its
//! whole item slice up front; a campaign *service* instead receives work
//! over time and must answer the question the batch path never faces:
//! what happens when mutants arrive faster than the workers classify
//! them? [`JobQueue`] is that answer, kept deliberately small:
//!
//! * **bounded** — a fixed capacity chosen at construction; the depth a
//!   queue is allowed to reach *is* the latency budget the operator
//!   signed up for;
//! * **non-blocking admission** — [`JobQueue::push`] never blocks the
//!   submitting connection: a full queue **sheds** the item back to the
//!   caller, which reports the rejection upstream instead of silently
//!   stalling the whole intake path;
//! * **blocking consumption** — [`JobQueue::pop`] parks workers until an
//!   item or [`JobQueue::close`] arrives; after close, the remaining
//!   items drain in order and then every worker sees `None`;
//! * **accounted** — accepted/shed totals, current depth and the
//!   high-water mark are tracked under the same lock that moves items,
//!   so a [`JobQueue::stats`] snapshot is always internally consistent.
//!
//! Built on `Mutex` + `Condvar` only: like the rest of the engine it is
//! dependency-free, and the campaign hot path (classify a mutant: tens of
//! microseconds to milliseconds) amortises the lock far below noise.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Backpressure counters observed at one instant (see [`JobQueue::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items accepted into the queue since creation.
    pub accepted: u64,
    /// Items rejected because the queue was at capacity.
    pub shed: u64,
    /// Items currently waiting (accepted, not yet popped).
    pub depth: usize,
    /// Highest depth ever observed — the high-water mark.
    pub max_depth: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// A bounded MPMC queue feeding campaign workers; see the [module
/// docs](self) for the admission/consumption contract.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Create a queue holding at most `capacity` items (minimum 1).
    pub fn bounded(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                stats: QueueStats::default(),
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The fixed capacity this queue admits up to.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer one item. A full or closed queue **sheds**: the item comes
    /// straight back as `Err` and the shed counter increments (closed
    /// queues shed too — a draining service must not accept work it will
    /// never run). Never blocks.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            inner.stats.shed += 1;
            return Err(item);
        }
        inner.items.push_back(item);
        inner.stats.accepted += 1;
        inner.stats.depth = inner.items.len();
        inner.stats.max_depth = inner.stats.max_depth.max(inner.items.len());
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed **and** drained — the
    /// worker-loop termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.stats.depth = inner.items.len();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Take the next item only if one is queued right now — never blocks,
    /// open or closed. The drain path uses this to shed the backlog
    /// explicitly once a drain deadline passes, racing the workers for
    /// the same items (each item still goes to exactly one taker).
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let item = inner.items.pop_front();
        if item.is_some() {
            inner.stats.depth = inner.items.len();
        }
        item
    }

    /// Close the queue: no further admissions, already-queued items still
    /// drain, and blocked [`JobQueue::pop`] calls wake up.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// A consistent snapshot of the backpressure counters.
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().unwrap().stats
    }

    /// Current queued depth (shorthand for `stats().depth`).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = JobQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_sheds_and_counts() {
        let q = JobQueue::bounded(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.push(4), Err(4));
        let s = q.stats();
        assert_eq!((s.accepted, s.shed, s.depth, s.max_depth), (2, 2, 2, 2));
        // Popping frees a slot; admission resumes.
        assert_eq!(q.pop(), Some(1));
        q.push(5).unwrap();
        assert_eq!(q.stats().accepted, 3);
    }

    #[test]
    fn closed_queue_sheds_but_drains() {
        let q = JobQueue::bounded(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "pop after drain stays None");
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = JobQueue::bounded(0);
        assert_eq!(q.capacity(), 1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(2));
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = Arc::new(JobQueue::bounded(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));

        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = JobQueue::bounded(4);
        assert_eq!(q.try_pop(), None, "empty open queue: None, no blocking");
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.stats().depth, 1);
        q.close();
        assert_eq!(q.try_pop(), Some(2), "closed queues still drain");
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn high_water_mark_tracks_peak_not_current() {
        let q = JobQueue::bounded(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        for _ in 0..6 {
            q.pop();
        }
        let s = q.stats();
        assert_eq!(s.depth, 0);
        assert_eq!(s.max_depth, 6);
    }
}
