//! Repeat-offender tracking for supervised campaigns.
//!
//! Worker supervision (see [`campaign`](crate::campaign#worker-supervision))
//! turns a classify panic into an ordinary outcome — which means a mutant
//! that *reliably* breaks the engine could be resubmitted forever, paying
//! a workspace rebuild every time. A [`Quarantine`] is the memory that
//! stops that: it counts strikes per job key (typically
//! `(driver file, mutant-source hash)`), and once a key crosses the
//! caller's strike limit, admission refuses it outright instead of
//! letting it at another worker.
//!
//! The ledger is deliberately simple — a `Mutex<HashMap>` — because it is
//! touched only on the failure path (a strike) and at admission (a read),
//! never per classified mutant.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

/// A strike ledger keyed by job identity; see the [module docs](self).
#[derive(Debug, Default)]
pub struct Quarantine<K> {
    strikes: Mutex<HashMap<K, u32>>,
}

impl<K: Eq + Hash + Clone> Quarantine<K> {
    /// An empty ledger.
    pub fn new() -> Self {
        Quarantine { strikes: Mutex::new(HashMap::new()) }
    }

    /// Record one strike against `key`, returning the new strike count.
    pub fn record(&self, key: K) -> u32 {
        let mut strikes = self.strikes.lock().unwrap();
        let n = strikes.entry(key).or_insert(0);
        *n += 1;
        *n
    }

    /// Strikes recorded against `key` so far (0 for unknown keys).
    pub fn strikes(&self, key: &K) -> u32 {
        self.strikes.lock().unwrap().get(key).copied().unwrap_or(0)
    }

    /// Whether `key` has reached `limit` strikes — the admission-time
    /// check. A `limit` of 0 disables quarantining entirely.
    pub fn is_quarantined(&self, key: &K, limit: u32) -> bool {
        limit > 0 && self.strikes(key) >= limit
    }

    /// Number of distinct keys with at least one strike.
    pub fn offenders(&self) -> usize {
        self.strikes.lock().unwrap().len()
    }

    /// Preload `count` strikes against `key`, replacing any in-memory
    /// count — how a service restores the durable strike ledger
    /// ([`ledger`](crate::ledger)) at start-up. A zero `count` is a no-op.
    pub fn load(&self, key: K, count: u32) {
        if count > 0 {
            self.strikes.lock().unwrap().insert(key, count);
        }
    }

    /// Snapshot of every struck key with its count, for operator-facing
    /// stats.
    pub fn counts(&self) -> Vec<(K, u32)> {
        self.strikes.lock().unwrap().iter().map(|(k, n)| (k.clone(), *n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_accumulate_per_key() {
        let q: Quarantine<(&str, u64)> = Quarantine::new();
        assert_eq!(q.strikes(&("a.c", 1)), 0);
        assert_eq!(q.record(("a.c", 1)), 1);
        assert_eq!(q.record(("a.c", 1)), 2);
        assert_eq!(q.record(("a.c", 2)), 1);
        assert_eq!(q.strikes(&("a.c", 1)), 2);
        assert_eq!(q.offenders(), 2);
    }

    #[test]
    fn quarantine_trips_at_the_limit() {
        let q: Quarantine<u32> = Quarantine::new();
        q.record(9);
        q.record(9);
        assert!(!q.is_quarantined(&9, 3));
        q.record(9);
        assert!(q.is_quarantined(&9, 3));
        assert!(!q.is_quarantined(&8, 3), "other keys unaffected");
    }

    #[test]
    fn load_restores_durable_counts() {
        let q: Quarantine<(String, u64)> = Quarantine::new();
        q.load(("a.c".into(), 1), 2);
        q.load(("b.c".into(), 2), 0);
        assert_eq!(q.strikes(&("a.c".into(), 1)), 2);
        assert!(q.is_quarantined(&("a.c".into(), 1), 2));
        assert_eq!(q.offenders(), 1, "zero-count load is a no-op");
        let mut counts = q.counts();
        counts.sort();
        assert_eq!(counts, vec![(("a.c".into(), 1), 2)]);
    }

    #[test]
    fn zero_limit_disables_quarantine() {
        let q: Quarantine<u32> = Quarantine::new();
        for _ in 0..100 {
            q.record(1);
        }
        assert!(!q.is_quarantined(&1, 0));
    }
}
