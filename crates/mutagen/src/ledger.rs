//! Crash-safe, append-only outcome ledger — the persistent memory of a
//! campaign.
//!
//! A classified mutant is a pure function of its inputs: the driver
//! source (hashed), the scenario, the fault plan and seed, the dead-code
//! refinement line, and the revision of the `.dil` specs + engine that
//! judged it. The ledger stores one record per such classification so
//! that re-runs of unchanged pairs are O(1) lookups instead of a full
//! compile + boot — ROADMAP item 3a. The same file carries
//! [`Quarantine`](crate::Quarantine) strikes, so a restarted service
//! still refuses known poison mutants.
//!
//! # File format
//!
//! The file is a flat sequence of records, each framed as
//!
//! ```text
//! len: u32 LE | check: u64 LE | payload: len bytes
//! ```
//!
//! where `check` is the FNV-1a (8-byte lane) hash of the payload. The
//! payload starts with a tag byte: `1` = outcome (key, wire code,
//! detail), `2` = strike (file, source fingerprint), `3` = evict
//! (key tombstone). Integers are little-endian; strings are
//! `u32 len + UTF-8`. Records are only ever appended, each with a single
//! `write_all` — there is no user-space buffering, so a `kill -9` can
//! tear at most the one record being written.
//!
//! # Recovery contract
//!
//! Opening with [`Ledger::resume`] replays the file front to back. The
//! first record that fails *any* check — short header, length over
//! [`MAX_RECORD`], checksum mismatch, unparseable or trailing-junk
//! payload — ends the replay: the file is **truncated to the last valid
//! record** and the ledger continues from there. Recovery never panics
//! and never surfaces a partial record; a torn tail costs exactly the
//! outcomes that had not finished writing. What was dropped is reported
//! in [`Recovery::torn_bytes`].
//!
//! **Staleness:** every outcome key embeds the spec-revision fingerprint
//! it was classified under (see `devil_kernel::fingerprint`). Records
//! whose revision differs from the one the ledger was opened with are
//! counted in [`Recovery::stale`] and never indexed — a changed spec or
//! engine silently invalidates the cache instead of serving wrong
//! outcomes. [`Ledger::lookup`] re-checks the revision as a second
//! guard. Strike records are *not* revision-gated: a mutant that broke
//! the harness is assumed poison until an operator clears the file.
//!
//! **Verification divergence:** a consumer replaying a sampled hit
//! against the live engine (the service's `--verify-fraction` mode)
//! treats any mismatch as ledger corruption: [`Ledger::evict`] appends a
//! tombstone (the entry is dead from that point on, including across
//! future recoveries), the fresh outcome is recorded and served, and the
//! divergence is counted. Lookups can therefore only ever return a value
//! that was (a) written whole, (b) classified under the current spec
//! revision, and (c) not since evicted.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Largest accepted record payload; a length field beyond this is treated
/// as corruption (same bound as the wire protocol's frame cap).
pub const MAX_RECORD: u32 = 16 << 20;

const TAG_OUTCOME: u8 = 1;
const TAG_STRIKE: u8 = 2;
const TAG_EVICT: u8 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Canonical FNV-1a over bytes — the stable, dependency-free hash every
/// fingerprint in the workspace is built from.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a folded over 8-byte lanes: the same mixing step applied to
/// `u64` words instead of bytes, ~8× the scan rate. Used where the input
/// is a whole driver source and the hash sits on the admission hot path.
/// Not byte-compatible with [`fnv1a`]; both are stable.
pub fn fnv1a_wide(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("exact chunk"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of a full (mutated) driver source — the `source` component
/// of a [`LedgerKey`] and of quarantine strike keys.
pub fn source_fingerprint(source: &str) -> u64 {
    fnv1a_wide(source.as_bytes())
}

/// Identity of one classification. Two runs with equal keys are the same
/// pure computation and must produce the same outcome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LedgerKey {
    /// Driver file name the mutant was spliced into.
    pub file: String,
    /// [`source_fingerprint`] of the full mutated source — this pins the
    /// mutant site *and* operator, since any edit changes the hash.
    pub source: u64,
    /// Scenario name (e.g. `ide-boot`).
    pub scenario: String,
    /// Fault plan name (`none` for fault-free runs).
    pub plan: String,
    /// Fault plan seed (ignored by rule-less plans but part of identity).
    pub plan_seed: u64,
    /// Dead-code refinement line (1-based), or 0 when the run had none —
    /// DeadCode outcomes depend on it, so it is part of the key.
    pub dead_line: u32,
    /// Spec-revision fingerprint (specs + engine version + fuel budget).
    pub spec_rev: u64,
}

/// What [`Ledger::resume`] found while replaying the file.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Valid records replayed (outcomes + strikes + tombstones).
    pub records: usize,
    /// Outcome entries live in the index after replay.
    pub outcomes: usize,
    /// Strike records replayed.
    pub strikes: usize,
    /// Outcome records skipped because their spec revision differs from
    /// the one the ledger was opened with.
    pub stale: usize,
    /// Bytes of torn/corrupt tail truncated away.
    pub torn_bytes: u64,
}

/// Monotonic usage counters, cheap enough to read per STATS request.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LedgerCounters {
    /// Lookups answered from the index.
    pub hits: u64,
    /// Lookups that found nothing (and presumably went to the engine).
    pub misses: u64,
    /// Records appended since open (outcomes + strikes + tombstones).
    pub appended: u64,
}

/// The crash-safe outcome store; see the [module docs](self) for the
/// format and recovery contract.
#[derive(Debug)]
pub struct Ledger {
    file: Mutex<File>,
    index: Mutex<HashMap<LedgerKey, (u8, String)>>,
    strikes: Mutex<HashMap<(String, u64), u32>>,
    path: PathBuf,
    spec_rev: u64,
    recovery: Recovery,
    hits: AtomicU64,
    misses: AtomicU64,
    appended: AtomicU64,
}

impl Ledger {
    /// Start a fresh ledger at `path` (truncating any existing file),
    /// keyed to `spec_rev`.
    pub fn create(path: impl AsRef<Path>, spec_rev: u64) -> io::Result<Ledger> {
        let path = path.as_ref();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Ledger {
            file: Mutex::new(file),
            index: Mutex::new(HashMap::new()),
            strikes: Mutex::new(HashMap::new()),
            path: path.to_path_buf(),
            spec_rev,
            recovery: Recovery::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
        })
    }

    /// Open (creating if missing) and recover the ledger at `path`: replay
    /// every valid record, truncate the torn tail, continue appending.
    /// Never fails on *content* — only on I/O errors from the filesystem.
    pub fn resume(path: impl AsRef<Path>, spec_rev: u64) -> io::Result<Ledger> {
        let path = path.as_ref();
        // truncate(false): recovery must read the survivors first; the torn
        // tail is cut precisely with `set_len` below, not wholesale here.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut index: HashMap<LedgerKey, (u8, String)> = HashMap::new();
        let mut strikes: HashMap<(String, u64), u32> = HashMap::new();
        let mut recovery = Recovery::default();
        let mut off = 0usize;
        while let Some((record, next)) = parse_record(&bytes, off) {
            recovery.records += 1;
            match record {
                Record::Outcome { key, code, detail } => {
                    if key.spec_rev == spec_rev {
                        index.insert(key, (code, detail));
                    } else {
                        recovery.stale += 1;
                    }
                }
                Record::Strike { file, fingerprint } => {
                    recovery.strikes += 1;
                    *strikes.entry((file, fingerprint)).or_insert(0) += 1;
                }
                Record::Evict { key } => {
                    index.remove(&key);
                }
            }
            off = next;
        }
        recovery.outcomes = index.len();
        recovery.torn_bytes = (bytes.len() - off) as u64;
        // Truncate the torn tail so the next append starts on a record
        // boundary; a second crash before any append re-recovers to the
        // same point.
        file.set_len(off as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Ledger {
            file: Mutex::new(file),
            index: Mutex::new(index),
            strikes: Mutex::new(strikes),
            path: path.to_path_buf(),
            spec_rev,
            recovery,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
        })
    }

    /// The spec revision this ledger serves.
    pub fn spec_rev(&self) -> u64 {
        self.spec_rev
    }

    /// Where the ledger lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What recovery found at open time (all zeros after [`Ledger::create`]).
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// Usage counters since open.
    pub fn counters(&self) -> LedgerCounters {
        LedgerCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            appended: self.appended.load(Ordering::Relaxed),
        }
    }

    /// Number of outcome entries currently servable.
    pub fn len(&self) -> usize {
        self.index.lock().unwrap().len()
    }

    /// Whether no outcome entry is servable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) memoized lookup: the stored `(wire code, detail)` for `key`,
    /// or `None` (counted as a miss) when absent — or when the key's
    /// revision does not match the ledger's, which can only happen to a
    /// caller mixing revisions and must never be served.
    pub fn lookup(&self, key: &LedgerKey) -> Option<(u8, String)> {
        if key.spec_rev != self.spec_rev {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match self.index.lock().unwrap().get(key) {
            Some((code, detail)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((*code, detail.clone()))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Append one classified outcome and index it. Callers must only
    /// record *deterministic* outcomes (no engine errors, no deadline
    /// overruns): the ledger stores what it is given.
    pub fn record(&self, key: &LedgerKey, code: u8, detail: &str) -> io::Result<()> {
        let mut payload = Vec::with_capacity(64 + key.file.len() + detail.len());
        payload.push(TAG_OUTCOME);
        put_key(&mut payload, key);
        payload.push(code);
        put_str(&mut payload, detail);
        self.append(&payload)?;
        self.index.lock().unwrap().insert(key.clone(), (code, detail.to_string()));
        Ok(())
    }

    /// Append a tombstone for `key` and drop it from the index — the
    /// corruption response of the verification path.
    pub fn evict(&self, key: &LedgerKey) -> io::Result<()> {
        let mut payload = Vec::with_capacity(64 + key.file.len());
        payload.push(TAG_EVICT);
        put_key(&mut payload, key);
        self.append(&payload)?;
        self.index.lock().unwrap().remove(key);
        Ok(())
    }

    /// Append one quarantine strike against `(file, fingerprint)` and
    /// return the new durable strike count.
    pub fn record_strike(&self, file: &str, fingerprint: u64) -> io::Result<u32> {
        let mut payload = Vec::with_capacity(16 + file.len());
        payload.push(TAG_STRIKE);
        put_str(&mut payload, file);
        put_u64(&mut payload, fingerprint);
        self.append(&payload)?;
        let mut strikes = self.strikes.lock().unwrap();
        let n = strikes.entry((file.to_string(), fingerprint)).or_insert(0);
        *n += 1;
        Ok(*n)
    }

    /// Durable strike counts per `(file, fingerprint)`, sorted for stable
    /// presentation.
    pub fn strike_counts(&self) -> Vec<((String, u64), u32)> {
        let mut v: Vec<_> =
            self.strikes.lock().unwrap().iter().map(|(k, n)| (k.clone(), *n)).collect();
        v.sort();
        v
    }

    /// Snapshot of every servable outcome entry (tests and tooling; the
    /// hot path is [`Ledger::lookup`]).
    pub fn outcomes(&self) -> Vec<(LedgerKey, u8, String)> {
        self.index
            .lock()
            .unwrap()
            .iter()
            .map(|(k, (c, d))| (k.clone(), *c, d.clone()))
            .collect()
    }

    fn append(&self, payload: &[u8]) -> io::Result<()> {
        debug_assert!(payload.len() <= MAX_RECORD as usize);
        let mut record = Vec::with_capacity(12 + payload.len());
        put_u32(&mut record, payload.len() as u32);
        put_u64(&mut record, fnv1a_wide(payload));
        record.extend_from_slice(payload);
        // One write_all per record: a crash tears at most this record,
        // which recovery truncates away.
        self.file.lock().unwrap().write_all(&record)?;
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

enum Record {
    Outcome { key: LedgerKey, code: u8, detail: String },
    Strike { file: String, fingerprint: u64 },
    Evict { key: LedgerKey },
}

/// Parse the record starting at `off`; `None` on any framing, checksum or
/// payload defect — the caller truncates from `off`.
fn parse_record(bytes: &[u8], off: usize) -> Option<(Record, usize)> {
    let header = bytes.get(off..off + 12)?;
    let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
    if len > MAX_RECORD as usize {
        return None;
    }
    let check = u64::from_le_bytes(header[4..12].try_into().ok()?);
    let payload = bytes.get(off + 12..off + 12 + len)?;
    if fnv1a_wide(payload) != check {
        return None;
    }
    let mut rd = Rd { bytes: payload, off: 0 };
    let record = match rd.u8()? {
        TAG_OUTCOME => {
            let key = rd.key()?;
            let code = rd.u8()?;
            let detail = rd.str()?;
            Record::Outcome { key, code, detail }
        }
        TAG_STRIKE => Record::Strike { file: rd.str()?, fingerprint: rd.u64()? },
        TAG_EVICT => Record::Evict { key: rd.key()? },
        _ => return None,
    };
    // A checksum-valid payload with trailing bytes means a framing bug;
    // refuse it rather than guess.
    if rd.off != payload.len() {
        return None;
    }
    Some((record, off + 12 + len))
}

struct Rd<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl Rd<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.off)?;
        self.off += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.bytes.get(self.off..self.off + 4)?;
        self.off += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.bytes.get(self.off..self.off + 8)?;
        self.off += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let b = self.bytes.get(self.off..self.off.checked_add(len)?)?;
        self.off += len;
        String::from_utf8(b.to_vec()).ok()
    }

    fn key(&mut self) -> Option<LedgerKey> {
        Some(LedgerKey {
            file: self.str()?,
            source: self.u64()?,
            scenario: self.str()?,
            plan: self.str()?,
            plan_seed: self.u64()?,
            dead_line: self.u32()?,
            spec_rev: self.u64()?,
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_key(out: &mut Vec<u8>, key: &LedgerKey) {
    put_str(out, &key.file);
    put_u64(out, key.source);
    put_str(out, &key.scenario);
    put_str(out, &key.plan);
    put_u64(out, key.plan_seed);
    put_u32(out, key.dead_line);
    put_u64(out, key.spec_rev);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("devil-ledger-{}-{name}.bin", std::process::id()))
    }

    fn key(n: u64) -> LedgerKey {
        LedgerKey {
            file: "busmouse.c".into(),
            source: n,
            scenario: "mouse-stream".into(),
            plan: "none".into(),
            plan_seed: 0,
            dead_line: 0,
            spec_rev: 77,
        }
    }

    #[test]
    fn record_and_resume_round_trip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = Ledger::create(&path, 77).unwrap();
            ledger.record(&key(1), 0, "").unwrap();
            ledger.record(&key(2), 4, "boot check: panic").unwrap();
            assert_eq!(ledger.counters().appended, 2);
        }
        let ledger = Ledger::resume(&path, 77).unwrap();
        assert_eq!(ledger.recovery().records, 2);
        assert_eq!(ledger.recovery().torn_bytes, 0);
        assert_eq!(ledger.lookup(&key(1)), Some((0, String::new())));
        assert_eq!(ledger.lookup(&key(2)), Some((4, "boot check: panic".into())));
        assert_eq!(ledger.lookup(&key(3)), None);
        let c = ledger.counters();
        assert_eq!((c.hits, c.misses), (2, 1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = Ledger::create(&path, 77).unwrap();
            ledger.record(&key(1), 0, "").unwrap();
            ledger.record(&key(2), 1, "detail").unwrap();
        }
        let whole = std::fs::read(&path).unwrap();
        // Chop mid-record: everything except the last 3 bytes.
        std::fs::write(&path, &whole[..whole.len() - 3]).unwrap();
        let ledger = Ledger::resume(&path, 77).unwrap();
        assert_eq!(ledger.recovery().records, 1);
        assert!(ledger.recovery().torn_bytes > 0);
        assert_eq!(ledger.lookup(&key(1)), Some((0, String::new())));
        assert_eq!(ledger.lookup(&key(2)), None, "torn record never served");
        // The file was truncated to the valid prefix; appending after
        // recovery yields a clean two-record file again.
        ledger.record(&key(2), 1, "detail").unwrap();
        drop(ledger);
        assert_eq!(std::fs::read(&path).unwrap(), whole);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_revision_entries_are_never_served() {
        let path = tmp("stale");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = Ledger::create(&path, 77).unwrap();
            ledger.record(&key(1), 2, "old world").unwrap();
        }
        let ledger = Ledger::resume(&path, 78).unwrap();
        assert_eq!(ledger.recovery().stale, 1);
        assert_eq!(ledger.len(), 0);
        let mut k = key(1);
        assert_eq!(ledger.lookup(&k), None, "key carries the new rev");
        k.spec_rev = 77;
        assert_eq!(ledger.lookup(&k), None, "old-rev key refused outright");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn evict_tombstones_survive_recovery() {
        let path = tmp("evict");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = Ledger::create(&path, 77).unwrap();
            ledger.record(&key(1), 3, "wrong").unwrap();
            ledger.evict(&key(1)).unwrap();
            assert_eq!(ledger.lookup(&key(1)), None);
        }
        let ledger = Ledger::resume(&path, 77).unwrap();
        assert_eq!(ledger.lookup(&key(1)), None, "tombstone replayed");
        assert_eq!(ledger.recovery().records, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn strikes_accumulate_and_persist() {
        let path = tmp("strikes");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = Ledger::create(&path, 77).unwrap();
            assert_eq!(ledger.record_strike("ide.c", 9).unwrap(), 1);
            assert_eq!(ledger.record_strike("ide.c", 9).unwrap(), 2);
            assert_eq!(ledger.record_strike("ne2000.c", 4).unwrap(), 1);
        }
        let ledger = Ledger::resume(&path, 99).unwrap();
        assert_eq!(
            ledger.strike_counts(),
            vec![(("ide.c".into(), 9), 2), (("ne2000.c".into(), 4), 1)],
            "strikes survive restart and revision changes"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_an_existing_file() {
        let path = tmp("truncate");
        let _ = std::fs::remove_file(&path);
        {
            let ledger = Ledger::create(&path, 77).unwrap();
            ledger.record(&key(1), 0, "").unwrap();
        }
        let ledger = Ledger::create(&path, 77).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wide_and_byte_fnv_agree_on_quality_not_value() {
        // Different scan widths, same role: stable, spread-out hashes.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a_wide(b""), FNV_OFFSET);
        assert_ne!(fnv1a_wide(b"devil driver source"), fnv1a_wide(b"devil driver sourcf"));
        assert_ne!(fnv1a_wide(b"0123456789abcdef"), fnv1a_wide(b"0123456789abcdeg"));
    }
}
