//! Mutation sites and mutants.

use std::fmt;

/// What kind of construct a mutation site covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A literal constant (decimal/hex/octal number, bit string/pattern).
    Literal,
    /// An operator.
    Operator,
    /// An identifier use (or definition, where the model allows it).
    Identifier,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteKind::Literal => f.write_str("literal"),
            SiteKind::Operator => f.write_str("operator"),
            SiteKind::Identifier => f.write_str("identifier"),
        }
    }
}

/// One mutable location in a source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationSite {
    /// Byte offset of the construct.
    pub pos: usize,
    /// Byte length of the original text.
    pub len: usize,
    /// 1-based source line (for dead-code classification).
    pub line: u32,
    /// Site kind.
    pub kind: SiteKind,
    /// The original text at the site.
    pub original: String,
}

/// A generated mutant: one site, one replacement.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Index into the site list this mutant came from.
    pub site: usize,
    /// Replacement text spliced over the site.
    pub replacement: String,
    /// The full mutated source.
    pub source: String,
    /// 1-based line of the mutated site.
    pub line: u32,
    /// Human-readable description (`0x23c -> 0x23d`).
    pub description: String,
}

/// Splice `replacement` over `[pos, pos + len)` of `source`.
pub fn splice(source: &str, pos: usize, len: usize, replacement: &str) -> String {
    let mut out = String::with_capacity(source.len() + replacement.len());
    out.push_str(&source[..pos]);
    out.push_str(replacement);
    out.push_str(&source[pos + len..]);
    out
}

/// Build a [`Mutant`] for `site_idx` of `sites` with the given replacement.
pub fn make_mutant(
    source: &str,
    sites: &[MutationSite],
    site_idx: usize,
    replacement: String,
) -> Mutant {
    let s = &sites[site_idx];
    Mutant {
        site: site_idx,
        source: splice(source, s.pos, s.len, &replacement),
        line: s.line,
        description: format!("{} `{}` -> `{}`", s.kind, s.original, replacement),
        replacement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_replaces_exactly() {
        assert_eq!(splice("abc def", 4, 3, "xyz!"), "abc xyz!");
        assert_eq!(splice("abc", 0, 1, ""), "bc");
        assert_eq!(splice("abc", 3, 0, "d"), "abcd");
    }

    #[test]
    fn make_mutant_describes_change() {
        let sites = vec![MutationSite {
            pos: 4,
            len: 5,
            line: 1,
            kind: SiteKind::Literal,
            original: "0x23c".into(),
        }];
        let m = make_mutant("x = 0x23c;", &sites, 0, "0x23d".into());
        assert_eq!(m.source, "x = 0x23d;");
        assert!(m.description.contains("0x23c"));
        assert!(m.description.contains("0x23d"));
    }
}
