//! Campaign execution: seeded sampling and parallel classification.
//!
//! The paper's Table 3/4 experiment generates ~2000 mutants and randomly
//! tests 25% of them; each test compiles the mutant and (when it compiles)
//! boots a kernel with it. [`sample`] reproduces the seeded random
//! selection; [`run_parallel`] fans the classification function out over
//! worker threads, since every mutant run is independent.

use crate::site::Mutant;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministically sample `fraction` (0..=1) of `mutants` with `seed`.
///
/// The selection is stable for a given `(mutants, fraction, seed)` triple,
/// so experiments are reproducible run to run.
pub fn sample(mutants: Vec<Mutant>, fraction: f64, seed: u64) -> Vec<Mutant> {
    let fraction = fraction.clamp(0.0, 1.0);
    let keep = ((mutants.len() as f64) * fraction).round() as usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..mutants.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(keep);
    indices.sort_unstable();
    let mut iter = mutants.into_iter();
    let mut out = Vec::with_capacity(keep);
    let mut next = 0usize;
    for want in indices {
        for skipped in iter.by_ref() {
            if next == want {
                out.push(skipped);
                next += 1;
                break;
            }
            next += 1;
        }
    }
    out
}

/// Classify every mutant in parallel, preserving order.
///
/// `classify` must be pure per mutant (each call gets its own state); the
/// outcome type is anything sendable.
pub fn run_parallel<O, F>(mutants: &[Mutant], threads: usize, classify: F) -> Vec<O>
where
    O: Send,
    F: Fn(&Mutant) -> O + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || mutants.len() < 2 {
        return mutants.iter().map(&classify).collect();
    }
    let mut results: Vec<Option<O>> = (0..mutants.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = parking_lot::Mutex::new(&mut results);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= mutants.len() {
                    break;
                }
                let out = classify(&mutants[i]);
                results_mutex.lock()[i] = Some(out);
            });
        }
    })
    .expect("campaign worker panicked");
    results
        .into_iter()
        .map(|o| o.expect("every index classified"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{make_mutant, MutationSite, SiteKind};

    fn mutants(n: usize) -> Vec<Mutant> {
        let src = "x".repeat(n.max(1));
        let sites: Vec<MutationSite> = (0..n)
            .map(|i| MutationSite {
                pos: i,
                len: 1,
                line: 1,
                kind: SiteKind::Literal,
                original: "x".into(),
            })
            .collect();
        (0..n).map(|i| make_mutant(&src, &sites, i, "y".into())).collect()
    }

    #[test]
    fn sample_is_deterministic() {
        let a = sample(mutants(100), 0.25, 42);
        let b = sample(mutants(100), 0.25, 42);
        assert_eq!(a.len(), 25);
        let ka: Vec<usize> = a.iter().map(|m| m.site).collect();
        let kb: Vec<usize> = b.iter().map(|m| m.site).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<usize> = sample(mutants(100), 0.25, 1).iter().map(|m| m.site).collect();
        let b: Vec<usize> = sample(mutants(100), 0.25, 2).iter().map(|m| m.site).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sample_full_and_empty() {
        assert_eq!(sample(mutants(10), 1.0, 7).len(), 10);
        assert_eq!(sample(mutants(10), 0.0, 7).len(), 0);
        assert_eq!(sample(mutants(0), 0.5, 7).len(), 0);
    }

    #[test]
    fn sample_preserves_order() {
        let s = sample(mutants(50), 0.5, 3);
        let sites: Vec<usize> = s.iter().map(|m| m.site).collect();
        let mut sorted = sites.clone();
        sorted.sort_unstable();
        assert_eq!(sites, sorted);
    }

    #[test]
    fn parallel_matches_serial() {
        let ms = mutants(64);
        let serial = run_parallel(&ms, 1, |m| m.site * 2);
        let parallel = run_parallel(&ms, 8, |m| m.site * 2);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_handles_empty() {
        let out: Vec<usize> = run_parallel(&[], 4, |m| m.site);
        assert!(out.is_empty());
    }
}
