//! Campaign execution: seeded sampling and parallel classification.
//!
//! The paper's Table 3/4 experiment generates ~2000 mutants and randomly
//! tests 25% of them; each test compiles the mutant and (when it compiles)
//! boots a kernel with it. [`sample`] reproduces the seeded random
//! selection; [`run_parallel`] fans the classification function out over
//! worker threads, since every mutant run is independent.
//!
//! Both functions are dependency-free: sampling uses a splitmix64-seeded
//! Fisher–Yates shuffle, and the worker pool is built on
//! [`std::thread::scope`]. Workers pull indices from a shared atomic
//! counter and push `(index, outcome)` pairs into a thread-local buffer,
//! so the site list is never cloned or re-sorted per worker and there is
//! no per-item lock on the hot path.

use crate::site::Mutant;

/// Minimal deterministic RNG (splitmix64) for reproducible sampling.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Deterministically sample `fraction` (0..=1) of `mutants` with `seed`.
///
/// The selection is stable for a given `(mutants, fraction, seed)` triple,
/// so experiments are reproducible run to run. The surviving mutants keep
/// their original relative order.
pub fn sample(mutants: Vec<Mutant>, fraction: f64, seed: u64) -> Vec<Mutant> {
    let fraction = fraction.clamp(0.0, 1.0);
    let keep = ((mutants.len() as f64) * fraction).round() as usize;
    let mut rng = SplitMix(seed ^ 0xD5A6_1266_F0C9_16B5);
    let mut indices: Vec<usize> = (0..mutants.len()).collect();
    // Fisher–Yates shuffle, then keep the first `keep` positions.
    for i in (1..indices.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        indices.swap(i, j);
    }
    indices.truncate(keep);
    indices.sort_unstable();
    let mut keep_flags = vec![false; mutants.len()];
    for i in indices {
        keep_flags[i] = true;
    }
    mutants
        .into_iter()
        .zip(keep_flags)
        .filter_map(|(m, keep)| keep.then_some(m))
        .collect()
}

/// Resolve a requested worker count: 0 means "use all available cores".
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Classify every mutant in parallel, preserving order.
///
/// `classify` must be pure per mutant (each call gets its own state); the
/// outcome type is anything sendable. Passing `threads == 0` uses the
/// machine's available parallelism.
pub fn run_parallel<O, F>(mutants: &[Mutant], threads: usize, classify: F) -> Vec<O>
where
    O: Send,
    F: Fn(&Mutant) -> O + Sync,
{
    let threads = effective_threads(threads).min(mutants.len().max(1));
    if threads == 1 || mutants.len() < 2 {
        return mutants.iter().map(&classify).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let classify = &classify;
    let mut per_worker: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= mutants.len() {
                            break;
                        }
                        local.push((i, classify(&mutants[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<O>> = (0..mutants.len()).map(|_| None).collect();
    for chunk in &mut per_worker {
        for (i, out) in chunk.drain(..) {
            results[i] = Some(out);
        }
    }
    results
        .into_iter()
        .map(|o| o.expect("every index classified"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{make_mutant, MutationSite, SiteKind};

    fn mutants(n: usize) -> Vec<Mutant> {
        let src = "x".repeat(n.max(1));
        let sites: Vec<MutationSite> = (0..n)
            .map(|i| MutationSite {
                pos: i,
                len: 1,
                line: 1,
                kind: SiteKind::Literal,
                original: "x".into(),
            })
            .collect();
        (0..n).map(|i| make_mutant(&src, &sites, i, "y".into())).collect()
    }

    #[test]
    fn sample_is_deterministic() {
        let a = sample(mutants(100), 0.25, 42);
        let b = sample(mutants(100), 0.25, 42);
        assert_eq!(a.len(), 25);
        let ka: Vec<usize> = a.iter().map(|m| m.site).collect();
        let kb: Vec<usize> = b.iter().map(|m| m.site).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<usize> = sample(mutants(100), 0.25, 1).iter().map(|m| m.site).collect();
        let b: Vec<usize> = sample(mutants(100), 0.25, 2).iter().map(|m| m.site).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sample_full_and_empty() {
        assert_eq!(sample(mutants(10), 1.0, 7).len(), 10);
        assert_eq!(sample(mutants(10), 0.0, 7).len(), 0);
        assert_eq!(sample(mutants(0), 0.5, 7).len(), 0);
    }

    #[test]
    fn sample_preserves_order() {
        let s = sample(mutants(50), 0.5, 3);
        let sites: Vec<usize> = s.iter().map(|m| m.site).collect();
        let mut sorted = sites.clone();
        sorted.sort_unstable();
        assert_eq!(sites, sorted);
    }

    #[test]
    fn parallel_matches_serial() {
        let ms = mutants(64);
        let serial = run_parallel(&ms, 1, |m| m.site * 2);
        let parallel = run_parallel(&ms, 8, |m| m.site * 2);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        let ms = mutants(16);
        let auto = run_parallel(&ms, 0, |m| m.site + 1);
        let serial = run_parallel(&ms, 1, |m| m.site + 1);
        assert_eq!(auto, serial);
    }

    #[test]
    fn parallel_handles_empty() {
        let out: Vec<usize> = run_parallel(&[], 4, |m| m.site);
        assert!(out.is_empty());
    }
}
