//! Campaign execution: seeded sampling and the parallel evaluation engine.
//!
//! The paper's Table 3/4 experiment generates ~2000 mutants and randomly
//! tests 25% of them; each test compiles the mutant and (when it compiles)
//! boots a kernel with it. [`sample`] reproduces the seeded random
//! selection; [`Campaign`] fans the classification out over worker
//! threads, since every mutant run is independent.
//!
//! # The campaign engine
//!
//! Evaluating a mutant needs a *machine* — a simulated I/O space, a disk
//! image, bound stub instances. Rebuilding that per mutant dominated
//! campaign time, so the engine is built around per-worker **workspaces**:
//!
//! * [`Campaign::new`] takes a `build` closure and a `classify` closure;
//! * each worker thread calls `build()` exactly once and owns the
//!   resulting workspace for its whole life;
//! * every mutant is classified with `classify(&mut workspace, mutant)`,
//!   which is expected to *reset* the workspace (snapshot restore) rather
//!   than reconstruct it — see `devil_hwsim::snap` and the kernel crate's
//!   `CampaignMachine` for the concrete reset-per-mutant lifecycle.
//!
//! Everything is dependency-free: sampling uses a splitmix64-seeded
//! Fisher–Yates shuffle, and the worker pool is built on
//! [`std::thread::scope`]. Workers pull indices from a shared atomic
//! counter and push `(index, outcome)` pairs into a thread-local buffer,
//! so the mutant list is never cloned or re-sorted per worker and there
//! is no per-item lock on the hot path. [`run_parallel`] survives as the
//! stateless-workspace special case.
//!
//! # Worker supervision
//!
//! The paper's whole subject is hostile inputs, and some of them are
//! hostile to the *harness*: a mutant that makes `classify` itself panic.
//! By default that is treated as a harness bug and aborts the campaign
//! (fail loudly, never return a hole in the results). A long-running
//! service cannot afford that contract, so [`Campaign::supervised`]
//! installs a [`Supervise`] policy: the panic is caught per item
//! (`catch_unwind`), the panicking worker's **workspace is discarded and
//! rebuilt fresh** for the next item (whatever torn state the panic left
//! dies with it — this is what makes the `AssertUnwindSafe` boundary
//! sound), and the policy converts the panic into an ordinary outcome for
//! that item. Panics raised *outside* `classify` — in `build` or in the
//! delivery path — still abort: supervision isolates per-item failures,
//! it does not paper over a broken harness.

use crate::ledger::{Ledger, LedgerKey};
use crate::queue::JobQueue;
use crate::site::Mutant;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Minimal deterministic RNG (splitmix64) for reproducible sampling.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Deterministically sample `fraction` (0..=1) of `mutants` with `seed`.
///
/// The selection is stable for a given `(mutants, fraction, seed)` triple,
/// so experiments are reproducible run to run. The surviving mutants keep
/// their original relative order.
///
/// Out-of-range fractions are handled deterministically rather than left
/// to float comparison: anything at or above `1.0` keeps every mutant,
/// anything at or below `0.0` — including `NaN` — keeps none.
pub fn sample(mutants: Vec<Mutant>, fraction: f64, seed: u64) -> Vec<Mutant> {
    if fraction >= 1.0 {
        return mutants;
    }
    if fraction.is_nan() || fraction <= 0.0 {
        return Vec::new();
    }
    let keep = ((mutants.len() as f64) * fraction).round() as usize;
    let mut rng = SplitMix(seed ^ 0xD5A6_1266_F0C9_16B5);
    let mut indices: Vec<usize> = (0..mutants.len()).collect();
    // Fisher–Yates shuffle, then keep the first `keep` positions.
    for i in (1..indices.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        indices.swap(i, j);
    }
    indices.truncate(keep);
    indices.sort_unstable();
    let mut keep_flags = vec![false; mutants.len()];
    for i in indices {
        keep_flags[i] = true;
    }
    mutants
        .into_iter()
        .zip(keep_flags)
        .filter_map(|(m, keep)| keep.then_some(m))
        .collect()
}

/// Resolve a requested worker count: 0 means "use all available cores".
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// A reusable work-item evaluation pipeline: one workspace per worker
/// thread, every item run as reset → apply → classify inside a workspace.
///
/// `build` constructs a worker's workspace (a machine plus whatever bound
/// state the classifier needs); `classify` evaluates one item in it and
/// is responsible for resetting the workspace first (typically one
/// snapshot restore). Results come back in item order.
///
/// The item type is generic ([`Campaign::run`] accepts any `&[I]`): the
/// classic campaign iterates [`Mutant`]s, while a fault-attribution
/// campaign iterates fault seeds over one clean driver — same worker
/// pool, same workspace reuse, same ordering guarantees.
///
/// Both closures only need `Sync`, so compile artifacts that are immutable
/// for the whole campaign — a pre-lexed header set
/// (`devil_minic::pp::IncludeCache`), a lowered baseline program, shared
/// spec interning tables — should be built **once, outside the campaign**,
/// and borrowed by every worker through closure capture, rather than
/// rebuilt per workspace. The kernel crate's `CampaignMachine::run_cached`
/// is the canonical example: one header lexing pass serves every worker's
/// thousands of mutant compiles.
///
/// ```
/// use devil_mutagen::{Campaign, Mutant};
///
/// // A trivial "workspace": a counter proving per-worker reuse.
/// let campaign = Campaign::new(|| 0u64, |runs: &mut u64, m: &Mutant| {
///     *runs += 1;
///     m.site * 2
/// });
/// let outcomes = campaign.run(&[]);
/// assert!(outcomes.is_empty());
/// ```
#[derive(Debug)]
pub struct Campaign<B, F, R = Unsupervised> {
    threads: usize,
    build: B,
    classify: F,
    recover: R,
}

/// What a campaign does when `classify` panics on one item. See the
/// [module docs](self#worker-supervision) for the isolation contract.
pub trait Supervise<I, O>: Sync {
    /// Decide the panicking item's fate: `Some(outcome)` substitutes an
    /// outcome and the campaign continues (on a fresh workspace);
    /// `None` re-raises the panic and aborts the campaign. `panic_message`
    /// is the stringified panic payload (`"non-string panic payload"`
    /// when it was neither a `String` nor a `&str`).
    fn recover(&self, item: &I, panic_message: &str) -> Option<O>;
}

/// The default policy: a classify panic is a harness bug — re-raise it
/// and abort the whole campaign rather than return partial results.
#[derive(Debug, Default, Clone, Copy)]
pub struct Unsupervised;

impl<I, O> Supervise<I, O> for Unsupervised {
    fn recover(&self, _item: &I, _panic_message: &str) -> Option<O> {
        None
    }
}

/// Adapter making any `Fn(&I, &str) -> O` a total [`Supervise`] policy:
/// every classify panic becomes an outcome, no panic aborts.
#[derive(Debug, Clone, Copy)]
pub struct Recover<R>(pub R);

impl<I, O, R> Supervise<I, O> for Recover<R>
where
    R: Fn(&I, &str) -> O + Sync,
{
    fn recover(&self, item: &I, panic_message: &str) -> Option<O> {
        Some((self.0)(item, panic_message))
    }
}

/// Best-effort text of a panic payload, for outcome details and logs.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .unwrap_or("non-string panic payload")
}

/// Classify one item under supervision: build the workspace if the worker
/// does not have one (first item, or the previous item panicked), catch a
/// classify panic, and either substitute the policy's outcome or re-raise.
/// On panic the workspace is dropped before the policy runs, so no torn
/// state survives into the next item.
fn classify_supervised<W, I, O, B, F, R>(
    build: &B,
    classify: &F,
    recover: &R,
    workspace: &mut Option<W>,
    item: &I,
) -> O
where
    B: Fn() -> W,
    F: Fn(&mut W, &I) -> O,
    R: Supervise<I, O>,
{
    let ws = workspace.get_or_insert_with(build);
    match catch_unwind(AssertUnwindSafe(|| classify(ws, item))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            // The panic may have left the workspace mid-mutation; discard
            // it so the next item starts from a freshly built one.
            *workspace = None;
            match recover.recover(item, panic_text(payload.as_ref())) {
                Some(outcome) => outcome,
                None => resume_unwind(payload),
            }
        }
    }
}

impl<B, F> Campaign<B, F, Unsupervised> {
    /// Create a campaign that builds one workspace per worker with `build`
    /// and evaluates each item with `classify`. Uses all available cores
    /// until [`Campaign::with_threads`] says otherwise, and treats a
    /// classify panic as fatal until [`Campaign::supervised`] says
    /// otherwise.
    pub fn new(build: B, classify: F) -> Self {
        Campaign { threads: 0, build, classify, recover: Unsupervised }
    }
}

impl<B, F, R> Campaign<B, F, R> {
    /// Set the worker count (0 = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Isolate classify panics instead of aborting: a panicking item's
    /// outcome is substituted by `recover(item, panic_message)`, the
    /// worker's workspace is discarded and rebuilt, and the campaign
    /// continues. See the [module docs](self#worker-supervision).
    pub fn supervised<Rf>(self, recover: Rf) -> Campaign<B, F, Recover<Rf>> {
        Campaign {
            threads: self.threads,
            build: self.build,
            classify: self.classify,
            recover: Recover(recover),
        }
    }

    /// Classify every item, preserving order.
    ///
    /// Worker threads pull indices from a shared atomic counter; each
    /// builds its workspace once and reuses it for every item it pulls.
    /// With one worker (or fewer than two items) everything runs on the
    /// calling thread.
    /// Under the default [`Unsupervised`] policy, if any worker's
    /// `classify` panics the whole campaign aborts: the panic is re-raised
    /// on the calling thread when that worker is joined (message
    /// `campaign worker panicked`), and the outcomes of the other workers
    /// are discarded with it — a mutant that breaks the engine must fail
    /// loudly, never appear as a hole in the results. A
    /// [`Campaign::supervised`] campaign instead substitutes the policy's
    /// outcome for the panicking item, rebuilds that worker's workspace,
    /// and keeps going.
    pub fn run<W, I, O>(&self, items: &[I]) -> Vec<O>
    where
        B: Fn() -> W + Sync,
        F: Fn(&mut W, &I) -> O + Sync,
        R: Supervise<I, O>,
        I: Sync,
        O: Send,
    {
        let all: Vec<usize> = (0..items.len()).collect();
        self.run_observed(items, &all, &|_, _| {})
    }

    /// The memoized flavour of [`Campaign::run`]: consult `ledger` before
    /// dispatch, classify only the misses, and checkpoint each fresh
    /// outcome the moment its worker produces it.
    ///
    /// `key_of` names each item's classification identity; `encode` turns
    /// a fresh outcome into a `(wire code, detail)` pair to persist
    /// (`None` for outcomes that are not deterministic and must never be
    /// memoized — engine errors, deadline overruns); `decode` rebuilds an
    /// outcome from a stored pair (`None` for codes this binary does not
    /// know, which are then re-classified rather than trusted).
    ///
    /// Checkpointing is **incremental**: the record for item *i* is
    /// appended on the worker thread immediately after classifying *i*,
    /// so a `kill -9` mid-campaign loses at most the in-flight records —
    /// a resumed run with the same ledger replays the survivors as hits
    /// and finishes the rest, producing the same outcome vector as an
    /// uninterrupted run. Append failures are deliberately swallowed:
    /// they cost resumability, never correctness of the returned vector.
    /// Hit/miss tallies are on [`Ledger::counters`].
    pub fn run_memoized<W, I, O, K, E, D>(
        &self,
        items: &[I],
        ledger: &Ledger,
        key_of: K,
        encode: E,
        decode: D,
    ) -> Vec<O>
    where
        B: Fn() -> W + Sync,
        F: Fn(&mut W, &I) -> O + Sync,
        R: Supervise<I, O>,
        I: Sync,
        O: Send,
        K: Fn(&I) -> LedgerKey,
        E: Fn(&O) -> Option<(u8, String)> + Sync,
        D: Fn(u8, &str) -> Option<O>,
    {
        let keys: Vec<LedgerKey> = items.iter().map(key_of).collect();
        let mut results: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
        let mut misses: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            match ledger.lookup(key).and_then(|(code, detail)| decode(code, &detail)) {
                Some(outcome) => results[i] = Some(outcome),
                None => misses.push(i),
            }
        }
        let fresh = self.run_observed(items, &misses, &|i, outcome| {
            if let Some((code, detail)) = encode(outcome) {
                let _ = ledger.record(&keys[i], code, &detail);
            }
        });
        for (&i, outcome) in misses.iter().zip(fresh) {
            results[i] = Some(outcome);
        }
        results.into_iter().map(|o| o.expect("every index resolved")).collect()
    }

    /// Classify `items[picked[0]], items[picked[1]], …`, returning
    /// outcomes aligned with `picked`, and call `observe(item index,
    /// &outcome)` on the classifying worker thread as each outcome is
    /// produced — the hook [`Campaign::run_memoized`] checkpoints through.
    fn run_observed<W, I, O>(
        &self,
        items: &[I],
        picked: &[usize],
        observe: &(impl Fn(usize, &O) + Sync),
    ) -> Vec<O>
    where
        B: Fn() -> W + Sync,
        F: Fn(&mut W, &I) -> O + Sync,
        R: Supervise<I, O>,
        I: Sync,
        O: Send,
    {
        if picked.is_empty() {
            // Do not pay for a workspace nobody will use.
            return Vec::new();
        }
        let threads = effective_threads(self.threads).min(picked.len());
        if threads == 1 || picked.len() < 2 {
            let mut workspace: Option<W> = None;
            return picked
                .iter()
                .map(|&i| {
                    let outcome = classify_supervised(
                        &self.build,
                        &self.classify,
                        &self.recover,
                        &mut workspace,
                        &items[i],
                    );
                    observe(i, &outcome);
                    outcome
                })
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let build = &self.build;
        let classify = &self.classify;
        let recover = &self.recover;
        let mut per_worker: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut workspace: Option<W> = None;
                        let mut local: Vec<(usize, O)> = Vec::new();
                        loop {
                            let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if k >= picked.len() {
                                break;
                            }
                            let outcome = classify_supervised(
                                build,
                                classify,
                                recover,
                                &mut workspace,
                                &items[picked[k]],
                            );
                            observe(picked[k], &outcome);
                            local.push((k, outcome));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });
        let mut results: Vec<Option<O>> = (0..picked.len()).map(|_| None).collect();
        for chunk in &mut per_worker {
            for (k, out) in chunk.drain(..) {
                results[k] = Some(out);
            }
        }
        results
            .into_iter()
            .map(|o| o.expect("every index classified"))
            .collect()
    }

    /// The queue-fed flavour of [`Campaign::run`] — the campaign **service**
    /// engine. Instead of a finished item slice, workers drain a live
    /// [`JobQueue`]: each worker builds its workspace once, then loops
    /// `pop → classify → deliver` until the queue is closed and drained.
    ///
    /// `deliver(item, outcome)` is called on the worker thread that
    /// classified the item, with the *owned* item — the item itself
    /// carries whatever routing state the caller needs (a response
    /// channel, a request id), which is exactly how a server maps
    /// outcomes back to the connections that submitted them. Unlike
    /// [`Campaign::run`] there is no global ordering: items complete in
    /// whatever order the workers finish them, and the submission tag on
    /// the item is the only correlation.
    ///
    /// Blocks until the queue is closed and every queued item has been
    /// delivered. Admission control (bounded depth, shedding) lives on
    /// the [`JobQueue`] itself; by the time an item reaches a worker it
    /// is guaranteed to run — or, under a [`Campaign::supervised`]
    /// policy, to be delivered with the policy's substitute outcome when
    /// classifying it panicked (the panicking worker's workspace is
    /// rebuilt for its next item; the pool itself never shrinks).
    pub fn run_queue<W, I, O, D>(&self, queue: &JobQueue<I>, deliver: D)
    where
        B: Fn() -> W + Sync,
        F: Fn(&mut W, &I) -> O + Sync,
        R: Supervise<I, O>,
        D: Fn(I, O) + Sync,
        I: Send,
    {
        let threads = effective_threads(self.threads);
        let build = &self.build;
        let classify = &self.classify;
        let recover = &self.recover;
        let deliver = &deliver;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        // Build lazily: a worker that never receives an
                        // item never pays for a workspace.
                        let mut workspace: Option<W> = None;
                        while let Some(item) = queue.pop() {
                            let outcome = classify_supervised(
                                build,
                                classify,
                                recover,
                                &mut workspace,
                                &item,
                            );
                            deliver(item, outcome);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("campaign worker panicked");
            }
        });
    }
}

/// Classify every item in parallel, preserving order.
///
/// The stateless special case of [`Campaign`]: `classify` must be pure per
/// item (each call gets its own state). Passing `threads == 0` uses the
/// machine's available parallelism.
pub fn run_parallel<I, O, F>(items: &[I], threads: usize, classify: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    Campaign::new(|| (), |(): &mut (), m: &I| classify(m))
        .with_threads(threads)
        .run(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{make_mutant, MutationSite, SiteKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn mutants(n: usize) -> Vec<Mutant> {
        let src = "x".repeat(n.max(1));
        let sites: Vec<MutationSite> = (0..n)
            .map(|i| MutationSite {
                pos: i,
                len: 1,
                line: 1,
                kind: SiteKind::Literal,
                original: "x".into(),
            })
            .collect();
        (0..n).map(|i| make_mutant(&src, &sites, i, "y".into())).collect()
    }

    #[test]
    fn sample_is_deterministic() {
        let a = sample(mutants(100), 0.25, 42);
        let b = sample(mutants(100), 0.25, 42);
        assert_eq!(a.len(), 25);
        let ka: Vec<usize> = a.iter().map(|m| m.site).collect();
        let kb: Vec<usize> = b.iter().map(|m| m.site).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<usize> = sample(mutants(100), 0.25, 1).iter().map(|m| m.site).collect();
        let b: Vec<usize> = sample(mutants(100), 0.25, 2).iter().map(|m| m.site).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sample_full_and_empty() {
        assert_eq!(sample(mutants(10), 1.0, 7).len(), 10);
        assert_eq!(sample(mutants(10), 0.0, 7).len(), 0);
        assert_eq!(sample(mutants(0), 0.5, 7).len(), 0);
    }

    #[test]
    fn sample_fraction_above_one_keeps_everything_in_order() {
        for fraction in [1.0, 1.5, 100.0, f64::INFINITY] {
            let s = sample(mutants(10), fraction, 7);
            let sites: Vec<usize> = s.iter().map(|m| m.site).collect();
            assert_eq!(sites, (0..10).collect::<Vec<_>>(), "fraction {fraction}");
        }
    }

    #[test]
    fn sample_nan_and_negative_keep_nothing() {
        assert!(sample(mutants(10), f64::NAN, 7).is_empty());
        assert!(sample(mutants(10), -0.5, 7).is_empty());
        assert!(sample(mutants(10), f64::NEG_INFINITY, 7).is_empty());
    }

    #[test]
    fn sample_preserves_order() {
        let s = sample(mutants(50), 0.5, 3);
        let sites: Vec<usize> = s.iter().map(|m| m.site).collect();
        let mut sorted = sites.clone();
        sorted.sort_unstable();
        assert_eq!(sites, sorted);
    }

    #[test]
    fn parallel_matches_serial() {
        let ms = mutants(64);
        let serial = run_parallel(&ms, 1, |m| m.site * 2);
        let parallel = run_parallel(&ms, 8, |m| m.site * 2);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        let ms = mutants(16);
        let auto = run_parallel(&ms, 0, |m| m.site + 1);
        let serial = run_parallel(&ms, 1, |m| m.site + 1);
        assert_eq!(auto, serial);
    }

    #[test]
    fn parallel_handles_empty() {
        let out: Vec<usize> = run_parallel(&[], 4, |m: &Mutant| m.site);
        assert!(out.is_empty());
    }

    #[test]
    fn campaign_builds_one_workspace_per_worker() {
        let builds = AtomicUsize::new(0);
        let ms = mutants(64);
        let out = Campaign::new(
            || {
                builds.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |runs: &mut u64, m: &Mutant| {
                *runs += 1;
                m.site
            },
        )
        .with_threads(4)
        .run(&ms);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        let built = builds.load(Ordering::Relaxed);
        assert!(built <= 4, "one workspace per worker, got {built}");
        assert!(built >= 1);
    }

    #[test]
    fn campaign_skips_workspace_build_when_empty() {
        let builds = AtomicUsize::new(0);
        let out: Vec<usize> = Campaign::new(
            || {
                builds.fetch_add(1, Ordering::Relaxed);
            },
            |(): &mut (), m: &Mutant| m.site,
        )
        .run(&[]);
        assert!(out.is_empty());
        assert_eq!(builds.load(Ordering::Relaxed), 0, "no mutants, no workspace");
    }

    #[test]
    fn campaign_workers_share_captured_artifacts() {
        // The pattern the kernel's include cache uses: one immutable
        // artifact built before the campaign, borrowed by every worker.
        let shared: Vec<usize> = (0..100).collect();
        let ms = mutants(32);
        let out = Campaign::new(
            || (),
            |(): &mut (), m: &Mutant| shared[m.site],
        )
        .with_threads(4)
        .run(&ms);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn campaign_runs_over_arbitrary_item_types() {
        // The fault-attribution shape: items are seeds, not mutants.
        let seeds: Vec<u64> = (0..16).collect();
        let out = Campaign::new(
            || 0usize,
            |runs: &mut usize, seed: &u64| {
                *runs += 1;
                seed * 3
            },
        )
        .with_threads(4)
        .run(&seeds);
        assert_eq!(out, (0..16).map(|s| s * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_builds_at_most_one_workspace_per_item() {
        let builds = AtomicUsize::new(0);
        let ms = mutants(3);
        let out = Campaign::new(
            || {
                builds.fetch_add(1, Ordering::Relaxed);
            },
            |(): &mut (), m: &Mutant| m.site,
        )
        .with_threads(64)
        .run(&ms);
        assert_eq!(out, vec![0, 1, 2]);
        let built = builds.load(Ordering::Relaxed);
        assert!(built <= 3, "worker count must be clamped to the item count, built {built}");
    }

    #[test]
    fn order_is_preserved_under_skewed_per_item_cost() {
        // Early items are the slowest, so a worker that grabs item 0
        // finishes long after the workers racing through the tail —
        // results must still come back in submission order.
        let ms = mutants(24);
        let out = Campaign::new(
            || (),
            |(): &mut (), m: &Mutant| {
                if m.site < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(15));
                }
                m.site
            },
        )
        .with_threads(8)
        .run(&ms);
        assert_eq!(out, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_single_thread_matches_and_stays_on_caller() {
        let caller = std::thread::current().id();
        let ms = mutants(10);
        let out = run_parallel(&ms, 1, |m| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "threads=1 must run on the calling thread"
            );
            m.site * 7
        });
        assert_eq!(out, (0..10).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "campaign worker panicked")]
    fn worker_panic_aborts_the_campaign() {
        // Under the default Unsupervised policy a panicking classifier is
        // a harness bug: the campaign re-raises it on the calling thread
        // instead of returning partial results.
        let ms = mutants(16);
        let _ = Campaign::new(
            || (),
            |(): &mut (), m: &Mutant| {
                assert_ne!(m.site, 7, "classifier blew up");
                m.site
            },
        )
        .with_threads(4)
        .run(&ms);
    }

    #[test]
    fn supervised_panic_becomes_an_outcome() {
        // The "no single mutant can take down a campaign" guarantee: the
        // poison item gets the policy's substitute outcome, every other
        // item classifies normally, order is preserved.
        let ms = mutants(16);
        let out = Campaign::new(
            || (),
            |(): &mut (), m: &Mutant| {
                assert_ne!(m.site, 7, "classifier blew up");
                m.site
            },
        )
        .with_threads(4)
        .supervised(|m: &Mutant, panic_message: &str| {
            assert!(panic_message.contains("classifier blew up"), "{panic_message}");
            assert_eq!(m.site, 7);
            usize::MAX
        })
        .run(&ms);
        let want: Vec<usize> =
            (0..16).map(|i| if i == 7 { usize::MAX } else { i }).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn supervised_panic_discards_and_rebuilds_the_workspace() {
        // One worker, one poison item: the workspace alive when the panic
        // hit must never serve another item.
        let builds = AtomicUsize::new(0);
        let ms = mutants(8);
        let out = Campaign::new(
            || builds.fetch_add(1, Ordering::Relaxed),
            |ws: &mut usize, m: &Mutant| {
                if m.site == 3 {
                    panic!("poison");
                }
                *ws
            },
        )
        .with_threads(1)
        .supervised(|_: &Mutant, _: &str| usize::MAX)
        .run(&ms);
        // Items 0-2 ran on workspace 0, item 3 poisoned it, items 4-7 ran
        // on the rebuilt workspace 1.
        assert_eq!(out, vec![0, 0, 0, usize::MAX, 1, 1, 1, 1]);
        assert_eq!(builds.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn supervised_run_queue_delivers_substitute_outcomes() {
        use crate::queue::JobQueue;
        use std::sync::Mutex;

        let queue: JobQueue<usize> = JobQueue::bounded(64);
        for i in 0..32 {
            queue.push(i).unwrap();
        }
        queue.close();
        let delivered: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        Campaign::new(
            || (),
            |(): &mut (), i: &usize| {
                if i % 10 == 3 {
                    panic!("poison job {i}");
                }
                i * 2
            },
        )
        .with_threads(4)
        .supervised(|i: &usize, msg: &str| {
            assert!(msg.contains(&format!("poison job {i}")));
            usize::MAX
        })
        .run_queue(&queue, |item, out| delivered.lock().unwrap().push((item, out)));
        let mut got = delivered.into_inner().unwrap();
        got.sort_unstable();
        let want: Vec<(usize, usize)> = (0..32)
            .map(|i| (i, if i % 10 == 3 { usize::MAX } else { i * 2 }))
            .collect();
        assert_eq!(got, want, "every accepted job delivered, poisons substituted");
    }

    #[test]
    fn supervision_reports_non_string_payloads() {
        let ms = mutants(1);
        let out = Campaign::new(
            || (),
            |(): &mut (), _: &Mutant| -> usize { std::panic::panic_any(42i32) },
        )
        .with_threads(1)
        .supervised(|_: &Mutant, msg: &str| {
            assert_eq!(msg, "non-string panic payload");
            7usize
        })
        .run(&ms);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn run_queue_delivers_everything_and_respects_shedding() {
        use crate::queue::JobQueue;
        use std::sync::Mutex;

        let queue: JobQueue<usize> = JobQueue::bounded(64);
        let mut shed = 0usize;
        for i in 0..80 {
            if queue.push(i).is_err() {
                shed += 1;
            }
        }
        assert_eq!(shed, 16, "pushes beyond capacity shed");
        queue.close();
        let delivered: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        Campaign::new(|| 0u64, |runs: &mut u64, i: &usize| {
            *runs += 1;
            i * 2
        })
        .with_threads(4)
        .run_queue(&queue, |item, out| delivered.lock().unwrap().push((item, out)));
        let mut got = delivered.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..64).map(|i| (i, i * 2)).collect::<Vec<_>>());
        let stats = queue.stats();
        assert_eq!(stats.accepted, 64);
        assert_eq!(stats.shed, 16);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    fn run_queue_workers_drain_items_pushed_while_running() {
        use crate::queue::JobQueue;
        use std::sync::atomic::AtomicUsize;

        let queue: JobQueue<usize> = JobQueue::bounded(8);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let queue = &queue;
            let done = &done;
            scope.spawn(move || {
                for i in 0..40 {
                    // The bounded queue may shed under this deliberately
                    // bursty producer; retry until accepted so the tally
                    // below is exact.
                    let mut item = i;
                    while let Err(back) = queue.push(item) {
                        item = back;
                        std::thread::yield_now();
                    }
                }
                queue.close();
            });
            Campaign::new(|| (), |(): &mut (), i: &usize| *i)
                .with_threads(2)
                .run_queue(queue, |_, _| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
        });
        assert_eq!(done.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn run_memoized_serves_hits_and_checkpoints_misses() {
        use crate::ledger::{Ledger, LedgerKey};
        let path = std::env::temp_dir()
            .join(format!("devil-campaign-memo-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let key_of = |m: &Mutant| LedgerKey {
            file: "f.c".into(),
            source: m.site as u64,
            scenario: "s".into(),
            plan: "none".into(),
            plan_seed: 0,
            dead_line: 0,
            spec_rev: 1,
        };
        let encode = |o: &usize| Some((*o as u8, String::new()));
        let decode = |code: u8, _: &str| Some(code as usize);
        let ms = mutants(16);
        let want: Vec<usize> = (0..16).collect();

        let first = AtomicUsize::new(0);
        {
            let ledger = Ledger::create(&path, 1).unwrap();
            let out = Campaign::new(
                || (),
                |(): &mut (), m: &Mutant| {
                    first.fetch_add(1, Ordering::Relaxed);
                    m.site
                },
            )
            .with_threads(4)
            .run_memoized(&ms, &ledger, key_of, encode, decode);
            assert_eq!(out, want);
            assert_eq!(first.load(Ordering::Relaxed), 16, "cold ledger classifies all");
            let c = ledger.counters();
            assert_eq!((c.hits, c.misses, c.appended), (0, 16, 16));
        }

        let second = AtomicUsize::new(0);
        let ledger = Ledger::resume(&path, 1).unwrap();
        let out = Campaign::new(
            || (),
            |(): &mut (), m: &Mutant| {
                second.fetch_add(1, Ordering::Relaxed);
                m.site
            },
        )
        .with_threads(4)
        .run_memoized(&ms, &ledger, key_of, encode, decode);
        assert_eq!(out, want, "memoized run bit-identical");
        assert_eq!(second.load(Ordering::Relaxed), 0, "warm ledger classifies none");
        let c = ledger.counters();
        assert_eq!((c.hits, c.misses, c.appended), (16, 0, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_memoized_skips_non_deterministic_and_unknown_codes() {
        use crate::ledger::{Ledger, LedgerKey};
        let path = std::env::temp_dir()
            .join(format!("devil-campaign-memo-skip-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let key_of = |m: &Mutant| LedgerKey {
            file: "f.c".into(),
            source: m.site as u64,
            scenario: "s".into(),
            plan: "none".into(),
            plan_seed: 0,
            dead_line: 0,
            spec_rev: 1,
        };
        let ms = mutants(8);
        let ledger = Ledger::create(&path, 1).unwrap();
        // Odd outcomes are "non-deterministic": never persisted.
        let encode =
            |o: &usize| o.is_multiple_of(2).then(|| (*o as u8, String::new()));
        let out = Campaign::new(|| (), |(): &mut (), m: &Mutant| m.site)
            .with_threads(2)
            .run_memoized(&ms, &ledger, key_of, encode, |c: u8, _: &str| {
                Some(c as usize)
            });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(ledger.len(), 4, "only deterministic outcomes persisted");
        // A decoder that disowns every stored code forces re-classification.
        let reruns = AtomicUsize::new(0);
        let out = Campaign::new(
            || (),
            |(): &mut (), m: &Mutant| {
                reruns.fetch_add(1, Ordering::Relaxed);
                m.site
            },
        )
        .with_threads(2)
        .run_memoized(&ms, &ledger, key_of, encode, |_: u8, _: &str| None::<usize>);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(reruns.load(Ordering::Relaxed), 8, "unknown codes are never trusted");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn campaign_workspace_carries_state_across_mutants() {
        // Single worker: the workspace sees every mutant in order.
        let ms = mutants(8);
        let out = Campaign::new(Vec::new, |seen: &mut Vec<usize>, m: &Mutant| {
            seen.push(m.site);
            seen.len()
        })
        .with_threads(1)
        .run(&ms);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
    }
}
