//! Mutation-site extraction and mutant generation for C driver sources
//! (§3.3 of the paper).
//!
//! The paper mutates only the *hardware operating code* of a driver, marked
//! here by `/* DEVIL_MUT_BEGIN */` and `/* DEVIL_MUT_END */` comment lines
//! (absent markers make the whole file mutable). The extractor is a raw
//! text scanner (comments, strings and characters are skipped, preprocessor
//! lines are scanned for their tokens), so byte-exact splices can be
//! produced without round-tripping through the preprocessor.
//!
//! Identifier replacement pools differ by style, exactly as §3.3 describes:
//!
//! * [`CStyle::PlainC`] — macros erase all abstraction: any identifier
//!   *defined* in the translation unit (macro, function, global) can stand
//!   in for any other.
//! * [`CStyle::CDevil`] — the generated interface is typed, so swaps stay
//!   within a semantic family: `get_*`↔`get_*`, `set_*`↔`set_*`,
//!   `mk_*`↔`mk_*`, `reg_get_*`/`reg_set_*` families, and ALL-CAPS
//!   constants among themselves.

use crate::literal::{literal_mutations, LiteralClass};
use crate::operator::c_operator_mutants;
use crate::site::{make_mutant, Mutant, MutationSite, SiteKind};
use std::collections::BTreeSet;

/// Marker opening a mutable region.
pub const REGION_BEGIN: &str = "DEVIL_MUT_BEGIN";
/// Marker closing a mutable region.
pub const REGION_END: &str = "DEVIL_MUT_END";

/// Which identifier-pool discipline to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CStyle {
    /// Original C driver: one flat pool of defined identifiers.
    PlainC,
    /// CDevil glue code: pools per stub family.
    CDevil,
}

/// C keywords and type words that are never identifier sites.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "do", "return", "break", "continue", "switch", "case",
    "default", "sizeof", "typedef", "struct", "static", "inline", "extern", "const", "volatile",
    "void", "char", "short", "int", "long", "unsigned", "signed", "define", "undef", "include",
    "ifdef", "ifndef", "endif",
];

#[derive(Debug, Clone, PartialEq, Eq)]
enum Raw {
    Ident(String),
    Number(String),
    Op(String),
    Other(char),
}

#[derive(Debug, Clone)]
struct RawToken {
    raw: Raw,
    pos: usize,
    len: usize,
    line: u32,
}

/// Scan raw C text into mutation-relevant tokens. Strings, chars and
/// comments are skipped (their contents are not mutation targets).
fn scan(source: &str) -> Vec<RawToken> {
    let b = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
            b'\'' => {
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.push(RawToken {
                    raw: Raw::Number(source[start..i].to_string()),
                    pos: start,
                    len: i - start,
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(RawToken {
                    raw: Raw::Ident(source[start..i].to_string()),
                    pos: start,
                    len: i - start,
                    line,
                });
            }
            _ => {
                // Longest-match operators.
                let rest = &source[i..];
                let op_len = ["<<=", ">>="]
                    .iter()
                    .find(|o| rest.starts_with(**o))
                    .map(|o| o.len())
                    .or_else(|| {
                        [
                            "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
                            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                        ]
                        .iter()
                        .find(|o| rest.starts_with(**o))
                        .map(|o| o.len())
                    });
                if let Some(n) = op_len {
                    out.push(RawToken {
                        raw: Raw::Op(source[i..i + n].to_string()),
                        pos: i,
                        len: n,
                        line,
                    });
                    i += n;
                } else {
                    let ch = source[i..].chars().next().expect("in bounds");
                    let n = ch.len_utf8();
                    if "|&^+-~!*".contains(ch) {
                        out.push(RawToken {
                            raw: Raw::Op(ch.to_string()),
                            pos: i,
                            len: n,
                            line,
                        });
                    } else {
                        out.push(RawToken { raw: Raw::Other(ch), pos: i, len: n, line });
                    }
                    i += n;
                }
            }
        }
    }
    out
}

/// The byte ranges of the mutable regions.
fn regions(source: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(b) = source[search..].find(REGION_BEGIN) {
        let begin = search + b + REGION_BEGIN.len();
        let Some(e) = source[begin..].find(REGION_END) else {
            out.push((begin, source.len()));
            break;
        };
        out.push((begin, begin + e));
        search = begin + e + REGION_END.len();
    }
    if out.is_empty() {
        out.push((0, source.len()));
    }
    out
}

/// The semantic family of an identifier under CDevil rules.
fn cdevil_family(name: &str) -> &'static str {
    if name.starts_with("reg_get_") {
        "reg_get"
    } else if name.starts_with("reg_set_") {
        "reg_set"
    } else if name.starts_with("dil_get_") {
        "dil_get"
    } else if name.starts_with("dil_set_") {
        "dil_set"
    } else if name.starts_with("get_") {
        "get"
    } else if name.starts_with("set_") {
        "set"
    } else if name.starts_with("mk_") {
        "mk"
    } else if name.starts_with("eq_") {
        "eq"
    } else if !name.is_empty()
        && name.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    {
        "const"
    } else {
        "other"
    }
}

/// A C mutation model: sites + replacement candidates.
#[derive(Debug)]
pub struct CMutationModel {
    source: String,
    sites: Vec<MutationSite>,
    replacements: Vec<Vec<String>>,
}

impl CMutationModel {
    /// Analyse a driver source. `headers` contribute identifier-pool
    /// entries (the CDevil generated header) but are never mutated.
    pub fn new(source: &str, headers: &[&str], style: CStyle) -> Self {
        let tokens = scan(source);
        let regions = regions(source);
        let in_region = |pos: usize| regions.iter().any(|(a, b)| pos >= *a && pos < *b);

        // Identifier pool: all defined identifiers across driver + headers.
        let mut defined: BTreeSet<String> = BTreeSet::new();
        for text in std::iter::once(source).chain(headers.iter().copied()) {
            collect_defined(text, &mut defined);
        }
        let pool: Vec<String> = defined.into_iter().collect();

        let mut sites = Vec::new();
        let mut replacements = Vec::new();
        for (idx, t) in tokens.iter().enumerate() {
            if !in_region(t.pos) {
                continue;
            }
            match &t.raw {
                Raw::Number(text) => {
                    let (class, plen) = LiteralClass::classify_number(text);
                    let reps = literal_mutations(text, class, plen);
                    if !reps.is_empty() {
                        sites.push(MutationSite {
                            pos: t.pos,
                            len: t.len,
                            line: t.line,
                            kind: SiteKind::Literal,
                            original: text.clone(),
                        });
                        replacements.push(reps);
                    }
                }
                Raw::Op(op) => {
                    // Binary-only operators need a binary context; `~`/`!`
                    // and `+`/`-` are fine in both.
                    let needs_binary = matches!(op.as_str(), "|" | "&" | "^");
                    if needs_binary && !binary_context(&tokens, idx) {
                        continue;
                    }
                    let reps: Vec<String> = c_operator_mutants(op)
                        .iter()
                        .filter(|r| {
                            // Binary-only replacements (`|`, `&`, `^`,
                            // `&&`, `||`) need a binary context too.
                            !matches!(**r, "|" | "&" | "^" | "&&" | "||")
                                || binary_context(&tokens, idx)
                        })
                        .map(|s| s.to_string())
                        .collect();
                    if !reps.is_empty() {
                        sites.push(MutationSite {
                            pos: t.pos,
                            len: t.len,
                            line: t.line,
                            kind: SiteKind::Operator,
                            original: op.clone(),
                        });
                        replacements.push(reps);
                    }
                }
                Raw::Ident(name) => {
                    if KEYWORDS.contains(&name.as_str()) {
                        continue;
                    }
                    // Plain C models *operand* confusion (§3.1: "confusion
                    // in register names is quite frequent") — callee
                    // positions are not sites. CDevil keeps them: the
                    // paper's §3.3 explicitly mutates the generated
                    // interface's function names within their family.
                    if style == CStyle::PlainC {
                        let is_callee = tokens
                            .get(idx + 1)
                            .is_some_and(|n| matches!(n.raw, Raw::Other('(')));
                        if is_callee {
                            continue;
                        }
                    }
                    let reps: Vec<String> = match style {
                        CStyle::PlainC => pool
                            .iter()
                            .filter(|p| *p != name)
                            .cloned()
                            .collect(),
                        CStyle::CDevil => {
                            let fam = cdevil_family(name);
                            pool.iter()
                                .filter(|p| *p != name && cdevil_family(p) == fam)
                                .cloned()
                                .collect()
                        }
                    };
                    if !reps.is_empty() {
                        sites.push(MutationSite {
                            pos: t.pos,
                            len: t.len,
                            line: t.line,
                            kind: SiteKind::Identifier,
                            original: name.clone(),
                        });
                        replacements.push(reps);
                    }
                }
                Raw::Other(_) => {}
            }
        }
        CMutationModel { source: source.to_string(), sites, replacements }
    }

    /// The mutation sites, in source order.
    pub fn sites(&self) -> &[MutationSite] {
        &self.sites
    }

    /// Generate every mutant.
    pub fn mutants(&self) -> Vec<Mutant> {
        let mut out = Vec::new();
        for (i, reps) in self.replacements.iter().enumerate() {
            for r in reps {
                out.push(make_mutant(&self.source, &self.sites, i, r.clone()));
            }
        }
        out
    }

    /// Total number of mutants.
    pub fn mutant_count(&self) -> usize {
        self.replacements.iter().map(Vec::len).sum()
    }
}

/// Heuristic binary-operator context: the previous token ends an operand.
fn binary_context(tokens: &[RawToken], idx: usize) -> bool {
    let Some(prev) = tokens[..idx].last() else { return false };
    match &prev.raw {
        Raw::Ident(n) => !KEYWORDS.contains(&n.as_str()),
        Raw::Number(_) => true,
        Raw::Other(c) => matches!(c, ')' | ']'),
        Raw::Op(o) => o == "++" || o == "--",
    }
}

/// Identifiers *defined* in `text`: `#define` names, function definitions /
/// prototypes, and file-scope variables. A light syntactic pass is enough
/// for the corpus's style.
fn collect_defined(text: &str, out: &mut BTreeSet<String>) {
    let tokens = scan(text);
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        match &t.raw {
            Raw::Other('{') => depth += 1,
            Raw::Other('}') => depth -= 1,
            Raw::Ident(n)
                if n == "define" && i > 0 && matches!(tokens[i - 1].raw, Raw::Other('#')) =>
            {
                if let Some(RawToken { raw: Raw::Ident(name), .. }) = tokens.get(i + 1) {
                    out.insert(name.clone());
                }
            }
            Raw::Ident(n)
                if !KEYWORDS.contains(&n.as_str())
                    && depth == 0
                    && i > 0 =>
            {
                // `type NAME (` → function; `type NAME =`, `type NAME ;`,
                // `type NAME [` → global. The previous token must be a type
                // word or `*`.
                let prev_is_type = match &tokens[i - 1].raw {
                    Raw::Ident(p) => {
                        matches!(
                            p.as_str(),
                            "void" | "char" | "short" | "int" | "long" | "unsigned" | "signed"
                        ) || p.ends_with("_t")
                            || p == "u8"
                            || p == "u16"
                            || p == "u32"
                            || p == "s8"
                            || p == "s16"
                            || p == "s32"
                    }
                    Raw::Op(o) => o == "*",
                    _ => false,
                };
                if prev_is_type {
                    match tokens.get(i + 1).map(|t| &t.raw) {
                        Some(Raw::Other('(')) | Some(Raw::Other(';')) | Some(Raw::Other('['))
                        | Some(Raw::Op(_)) => {
                            out.insert(n.clone());
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DRIVER: &str = r#"
#define MSE_DATA_PORT  0x23c
#define MSE_CONTROL_PORT 0x23e
#define MSE_READ_Y_HIGH 0xe0

static int mouse_ready;

/* DEVIL_MUT_BEGIN */
int read_y_high(void)
{
    int v;
    outb(MSE_READ_Y_HIGH, MSE_CONTROL_PORT);
    v = inb(MSE_DATA_PORT) & 0xf;
    return (v << 4) | 1;
}
/* DEVIL_MUT_END */

int untouched(void) { return 0x99; }
"#;

    fn model() -> CMutationModel {
        CMutationModel::new(DRIVER, &[], CStyle::PlainC)
    }

    #[test]
    fn sites_respect_region_markers() {
        let m = model();
        assert!(
            !m.sites().iter().any(|s| s.original == "0x99"),
            "code outside the region must not be mutated"
        );
        assert!(m.sites().iter().any(|s| s.original == "0xf"));
    }

    #[test]
    fn literal_sites_classified() {
        let m = model();
        let site = m.sites().iter().find(|s| s.original == "0xf").unwrap();
        assert_eq!(site.kind, SiteKind::Literal);
    }

    #[test]
    fn operator_sites_in_binary_context() {
        let m = model();
        let amp = m
            .sites()
            .iter()
            .filter(|s| s.kind == SiteKind::Operator && s.original == "&")
            .count();
        assert_eq!(amp, 1, "one binary & in the region");
        let shl = m
            .sites()
            .iter()
            .any(|s| s.kind == SiteKind::Operator && s.original == "<<");
        assert!(shl);
        let pipe = m
            .sites()
            .iter()
            .any(|s| s.kind == SiteKind::Operator && s.original == "|");
        assert!(pipe);
    }

    #[test]
    fn identifier_pool_is_defined_names() {
        let m = model();
        let site = m
            .sites()
            .iter()
            .position(|s| s.original == "MSE_DATA_PORT")
            .expect("macro use is a site");
        let reps = &m.replacements[site];
        assert!(reps.contains(&"MSE_CONTROL_PORT".to_string()), "{reps:?}");
        assert!(reps.contains(&"mouse_ready".to_string()), "plain C pools mix everything");
        assert!(reps.contains(&"read_y_high".to_string()), "functions too: {reps:?}");
        assert!(!reps.contains(&"v".to_string()), "locals are not defined names");
    }

    #[test]
    fn cdevil_pools_stay_in_family() {
        let src = r#"
/* DEVIL_MUT_BEGIN */
void f(void)
{
    set_Drive(MASTER);
    set_Irq(IRQ_ON);
    x = get_Status();
}
/* DEVIL_MUT_END */
"#;
        let hdr = r#"
static void set_Drive(Drive_t v) { }
static void set_Irq(Irq_t v) { }
static u32 get_Status(void) { return 0; }
static u32 get_Error(void) { return 0; }
#define MASTER 0
#define IRQ_ON 1
"#;
        let m = CMutationModel::new(src, &[hdr], CStyle::CDevil);
        let set_site = m
            .sites()
            .iter()
            .position(|s| s.original == "set_Drive")
            .expect("set_Drive site");
        assert_eq!(m.replacements[set_site], vec!["set_Irq".to_string()]);
        let get_site = m
            .sites()
            .iter()
            .position(|s| s.original == "get_Status")
            .expect("get_Status site");
        assert_eq!(m.replacements[get_site], vec!["get_Error".to_string()]);
        let const_site = m
            .sites()
            .iter()
            .position(|s| s.original == "MASTER")
            .expect("constant site");
        assert!(m.replacements[const_site].contains(&"IRQ_ON".to_string()));
        assert!(!m.replacements[const_site].contains(&"set_Irq".to_string()));
    }

    #[test]
    fn no_markers_means_whole_file() {
        let m = CMutationModel::new("int f(void) { return 0x10; }", &[], CStyle::PlainC);
        assert!(m.sites().iter().any(|s| s.original == "0x10"));
    }

    #[test]
    fn mutants_splice_exactly() {
        let m = model();
        for mt in m.mutants().iter().take(50) {
            assert_ne!(mt.source, DRIVER);
            assert_eq!(mt.source.len(), DRIVER.len() + mt.source.len() - DRIVER.len());
        }
    }

    #[test]
    fn unary_amp_not_mutated() {
        let src = "/* DEVIL_MUT_BEGIN */\nvoid f(int *p) { g(&x); }\n/* DEVIL_MUT_END */";
        let m = CMutationModel::new(src, &[], CStyle::PlainC);
        assert!(
            !m.sites()
                .iter()
                .any(|s| s.kind == SiteKind::Operator && s.original == "&"),
            "unary & must not become | or ^"
        );
    }

    #[test]
    fn unary_not_and_tilde_swap() {
        let src = "/* DEVIL_MUT_BEGIN */\nint f(int x) { return !x + ~x; }\n/* DEVIL_MUT_END */";
        let m = CMutationModel::new(src, &[], CStyle::PlainC);
        let bang = m.sites().iter().find(|s| s.original == "!").unwrap();
        assert_eq!(bang.kind, SiteKind::Operator);
        assert!(m.sites().iter().any(|s| s.original == "~"));
    }

    #[test]
    fn compound_assignment_operators_mutate() {
        let src = "/* DEVIL_MUT_BEGIN */\nvoid f(int x) { x |= 1; x <<= 2; }\n/* DEVIL_MUT_END */";
        let m = CMutationModel::new(src, &[], CStyle::PlainC);
        assert!(m.sites().iter().any(|s| s.original == "|="));
        assert!(m.sites().iter().any(|s| s.original == "<<="));
    }

    #[test]
    fn strings_and_comments_are_not_scanned() {
        let src = "/* DEVIL_MUT_BEGIN */\nvoid f(void) { printk(\"0x123 | ~\"); /* 0x456 */ }\n/* DEVIL_MUT_END */";
        let m = CMutationModel::new(src, &[], CStyle::PlainC);
        assert!(!m.sites().iter().any(|s| s.kind == SiteKind::Literal));
        assert!(!m.sites().iter().any(|s| s.kind == SiteKind::Operator));
    }

    #[test]
    fn lines_recorded_for_dead_code_analysis() {
        let m = model();
        let site = m.sites().iter().find(|s| s.original == "0xf").unwrap();
        // `v = inb(MSE_DATA_PORT) & 0xf;` is on line 13 of DRIVER.
        assert_eq!(site.line, 13, "{site:?}");
    }

    #[test]
    fn multiple_regions_supported() {
        let src = "/* DEVIL_MUT_BEGIN */ int a = 0x1; /* DEVIL_MUT_END */ int b = 0x2; /* DEVIL_MUT_BEGIN */ int c = 0x3; /* DEVIL_MUT_END */";
        let m = CMutationModel::new(src, &[], CStyle::PlainC);
        assert!(m.sites().iter().any(|s| s.original == "0x1"));
        assert!(!m.sites().iter().any(|s| s.original == "0x2"));
        assert!(m.sites().iter().any(|s| s.original == "0x3"));
    }
}
