//! # devil-mutagen — the mutation-analysis engine
//!
//! Implements the error model of §3 of the paper: typographical and
//! inattention errors simulated by three operator families, for both the
//! Devil language and C:
//!
//! * **literal mutations** — insert, remove or replace one character of a
//!   literal constant, always within its semantic class (decimal digits,
//!   hexadecimal digits, octal digits, bit-string symbols `{0,1,*}`,
//!   bit-pattern symbols `{0,1,*,.}`);
//! * **operator mutations** — swap an operator for another of the same
//!   semantic class (Table 1 for C; range/set `,`/`..` and the mapping
//!   arrows for Devil);
//! * **identifier mutations** — replace an identifier with another defined
//!   in the same file; in plain C the pre-processor erases all abstraction
//!   so *any* identifier is a candidate, while Devil and CDevil swaps stay
//!   within the same semantic class (register/variable; `get_`/`set_`
//!   stub family; typed constants).
//!
//! Every generated mutant is syntactically valid and semantically different
//! from the original (§3.1) — candidates violating either rule are
//! discarded during generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c;
pub mod campaign;
pub mod devil;
pub mod ledger;
pub mod literal;
pub mod operator;
pub mod quarantine;
pub mod queue;
pub mod site;

pub use campaign::{
    effective_threads, run_parallel, sample, Campaign, Recover, Supervise, Unsupervised,
};
pub use ledger::{source_fingerprint, Ledger, LedgerCounters, LedgerKey};
pub use quarantine::Quarantine;
pub use queue::{JobQueue, QueueStats};
pub use site::{Mutant, MutationSite, SiteKind};
