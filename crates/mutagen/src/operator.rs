//! Operator mutation operators.
//!
//! C operators mutate within the classes of Table 1 of the paper (the
//! published scan is partially garbled; the classes are reconstructed from
//! §3.3's prose — bitwise habits, `&` vs `&&` confusion — and the classic C
//! mutation-operator sets \[2\]):
//!
//! | class | members |
//! |---|---|
//! | bitwise | `\|` `&` `^` |
//! | shift | `<<` `>>` |
//! | additive | `+` `-` |
//! | logical | `&&` `\|\|` |
//! | bitwise/logical confusion | `&`↔`&&`, `\|`↔`\|\|` |
//! | equality | `==` `!=` |
//! | unary | `~` `!` |
//! | compound assignment | `\|=` `&=` `^=` ; `<<=` `>>=` ; `+=` `-=` |
//!
//! Devil operators mutate within: integer range/set (`,` `..`) and value
//! mapping arrows (`=>` `<=` `<=>`).

/// All same-class alternatives for a C operator spelling.
pub fn c_operator_mutants(op: &str) -> &'static [&'static str] {
    match op {
        "|" => &["&", "^", "||"],
        "&" => &["|", "^", "&&"],
        "^" => &["|", "&"],
        "<<" => &[">>"],
        ">>" => &["<<"],
        "+" => &["-"],
        "-" => &["+"],
        "&&" => &["||", "&"],
        "||" => &["&&", "|"],
        "==" => &["!="],
        "!=" => &["=="],
        "~" => &["!"],
        "!" => &["~"],
        "|=" => &["&=", "^="],
        "&=" => &["|=", "^="],
        "^=" => &["|=", "&="],
        "<<=" => &[">>="],
        ">>=" => &["<<="],
        "+=" => &["-="],
        "-=" => &["+="],
        _ => &[],
    }
}

/// All same-class alternatives for a Devil operator spelling.
pub fn devil_operator_mutants(op: &str) -> &'static [&'static str] {
    match op {
        "," => &[".."],
        ".." => &[","],
        "=>" => &["<=", "<=>"],
        "<=" => &["=>", "<=>"],
        "<=>" => &["=>", "<="],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_class_is_closed() {
        for op in ["|", "&", "^"] {
            for m in c_operator_mutants(op) {
                assert_ne!(*m, op);
                assert!(["|", "&", "^", "||", "&&"].contains(m), "{op} -> {m}");
            }
        }
    }

    #[test]
    fn amp_and_ampamp_confusable() {
        // §3.3: "expressing a bit mask is commonly done by using the binary
        // operator '&', but some programmers prefer the operator '&&'".
        assert!(c_operator_mutants("&").contains(&"&&"));
        assert!(c_operator_mutants("&&").contains(&"&"));
    }

    #[test]
    fn shifts_swap() {
        assert_eq!(c_operator_mutants("<<"), &[">>"]);
        assert_eq!(c_operator_mutants(">>"), &["<<"]);
        assert_eq!(c_operator_mutants("<<="), &[">>="]);
    }

    #[test]
    fn no_cross_class_mutation() {
        assert!(!c_operator_mutants("+").contains(&"*"));
        assert!(!c_operator_mutants("==").contains(&"<"));
        assert!(c_operator_mutants("*").is_empty());
        assert!(c_operator_mutants("=").is_empty());
    }

    #[test]
    fn devil_arrows_are_a_three_way_class() {
        assert_eq!(devil_operator_mutants("=>").len(), 2);
        assert_eq!(devil_operator_mutants("<=>").len(), 2);
        assert!(devil_operator_mutants("<=").contains(&"<=>"));
    }

    #[test]
    fn devil_range_and_comma_swap() {
        assert_eq!(devil_operator_mutants(","), &[".."]);
        assert_eq!(devil_operator_mutants(".."), &[","]);
    }
}
