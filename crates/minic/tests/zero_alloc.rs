//! Proof that the bytecode VM's dispatch loop is allocation-free in
//! steady state.
//!
//! Compiles a driver-shaped hot loop (port I/O, global buffer traffic,
//! locals, arithmetic, a nested call), runs it once to warm the VM's
//! stacks and object-buffer pool, then asserts that a *second* full call
//! — thousands of dispatched ops, including scope churn and builtin I/O —
//! performs zero heap allocations. This is the acceptance gate for the
//! buffer-reusing object heap in `devil_minic::vm` (the tree-walking
//! interpreter, by contrast, allocates on every declaration and string
//! literal).
//!
//! Same counting-allocator pattern as `crates/core/tests/zero_alloc.rs`;
//! kept to a single `#[test]` so no concurrent test thread can disturb
//! the global counter.

use devil_minic::interp::{Host, NullHost};
use devil_minic::value::Value;
use devil_minic::vm::Vm;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Only allocations made by the thread inside `allocations_during`
    /// are counted — libtest's harness threads allocate at their own
    /// pace and must not flake the assertion.
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(|c| c.get()).unwrap_or(false)
}

struct CountingAllocator;

// SAFETY: delegates directly to `System`, only incrementing a counter for
// allocations made by a thread that opted in.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    let result = f();
    COUNTING.with(|c| c.set(false));
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// A hot loop with the access shapes a polling driver uses: global array
/// reads/writes, locals declared inside the loop (scope churn through the
/// object pool), pointer traffic, port I/O builtins, and a helper call
/// per iteration.
const DRIVER_LOOP: &str = "
typedef unsigned short u16;

u16 ring[16];

static int mix(int a, int b)
{
    int t = (a << 3) ^ b;
    return (t & 0xffff) | (a >> 13);
}

int spin(int rounds)
{
    int i;
    int acc = 0;
    for (i = 0; i < rounds; i++) {
        int slot = i & 15;
        u16 *p = ring;
        acc += mix(p[slot], inb(0x1F7));
        ring[slot] = acc & 0xff;
        outb(acc & 0xff, 0x1F0);
        acc &= 0xffffff;
    }
    return acc;
}
";

/// A polling/block-I/O hot loop: the fused superinstruction shapes
/// (const-bound and local-bound compares, prefix-decrement spins, port
/// spins) plus the block-transfer builtins moving whole buffers per call.
const BLOCK_LOOP: &str = "
typedef unsigned short u16;

u16 sector[256];

int pump(int rounds) {
    int n = 0;
    int acc = 0;
    while (n < rounds) {
        int retries = 4;
        n++;
        while ((inb(0x1F7) & 0x08) == 0) { acc--; }
        do { acc += n; } while (--retries > 0);
        insw(0x1F0, sector, 256);
        outsw(0x1F0, sector, 256);
        acc += sector[n & 255];
    }
    return acc;
}
";

#[test]
fn vm_dispatch_loop_is_allocation_free() {
    let program = devil_minic::compile("hot.c", DRIVER_LOOP).expect("hot loop compiles");
    let compiled = program.to_bytecode();
    assert!(compiled.fused_op_count() > 0, "the hot loop must exercise fused dispatch");
    let mut host = NullHost::default();
    let mut vm = Vm::new(&compiled, &mut host, 10_000_000);

    // Warm-up: globals initialise, stacks and the object pool size
    // themselves, every op executes at least once.
    let warm = vm.call("spin", &[Value::Int(500)]).expect("warm run completes");
    assert!(warm.as_int().is_some());

    let (allocs, result) = allocations_during(|| {
        vm.call("spin", &[Value::Int(500)]).expect("hot run completes")
    });
    assert_eq!(
        allocs,
        0,
        "VM dispatch loop allocated {allocs} times (result {result})"
    );

    // Second phase, same global counter (single #[test] by design): the
    // fused superinstructions and the block-transfer builtins' bulk path
    // are pinned allocation-free too — the io_block staging buffer sizes
    // itself during warm-up and is reused from then on.
    let program = devil_minic::compile("blk.c", BLOCK_LOOP).expect("block loop compiles");
    let compiled = program.to_bytecode();
    assert!(compiled.fused_op_count() > 0, "polling shapes must fuse");
    let mut host = NullHost::default();
    let mut vm = Vm::new(&compiled, &mut host, 100_000_000);
    vm.call("pump", &[Value::Int(50)]).expect("warm block run completes");
    let (allocs, result) = allocations_during(|| {
        vm.call("pump", &[Value::Int(50)]).expect("hot block run completes")
    });
    assert_eq!(
        allocs,
        0,
        "fused dispatch / block builtins allocated {allocs} times (result {result})"
    );

    // The host side stays live too: reads floated, writes vanished.
    let mut probe = NullHost::default();
    assert_eq!(probe.io_read(0x1F7, 1), 0xFF);
}

/// Per-construct allocation profile — a diagnostic to bisect regressions
/// when the main test above starts failing. Run with
/// `cargo test -p devil-minic --test zero_alloc -- --ignored --nocapture`.
#[test]
#[ignore = "diagnostic; run explicitly when bisecting an allocation regression"]
fn alloc_profile_by_construct() {
    let variants: &[(&str, &str)] = &[
        ("empty loop", "int spin(int r){int i; int acc; acc=0; for(i=0;i<r;i++){ acc+=i; } return acc;}"),
        ("decl in loop", "int spin(int r){int i; int acc; acc=0; for(i=0;i<r;i++){ int s = i; acc+=s; } return acc;}"),
        ("global read", "unsigned short ring[16];\nint spin(int r){int i; int acc; acc=0; for(i=0;i<r;i++){ acc+=ring[i&15]; } return acc;}"),
        ("global write", "unsigned short ring[16];\nint spin(int r){int i; int acc; acc=0; for(i=0;i<r;i++){ ring[i&15]=i; acc+=1; } return acc;}"),
        ("inb", "int spin(int r){int i; int acc; acc=0; for(i=0;i<r;i++){ acc+=inb(0x1F7); } return acc;}"),
        ("call", "static int mix(int a){return a+1;}\nint spin(int r){int i; int acc; acc=0; for(i=0;i<r;i++){ acc+=mix(i); } return acc;}"),
        ("ptr decl", "unsigned short ring[16];\nint spin(int r){int i; int acc; acc=0; for(i=0;i<r;i++){ unsigned short *p = ring; acc+=p[i&15]; } return acc;}"),
    ];
    for (label, src) in variants {
        let program = devil_minic::compile("v.c", src).unwrap();
        let compiled = program.to_bytecode();
        let mut host = NullHost::default();
        let mut vm = Vm::new(&compiled, &mut host, 10_000_000);
        vm.call("spin", &[Value::Int(100)]).unwrap();
        let (allocs, _) = allocations_during(|| vm.call("spin", &[Value::Int(100)]).unwrap());
        println!("{label}: {allocs}");
    }
}
