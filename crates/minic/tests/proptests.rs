//! Property tests for minic: a differential check of expression semantics
//! against Rust's own 32-bit integer arithmetic, a bytecode-VM-vs-
//! tree-walker equivalence property, plus front-end totality.

use devil_minic::interp::{Interpreter, NullHost};
use devil_minic::value::{wrap_int, Value};
use devil_minic::vm::Vm;
use proptest::prelude::*;

/// A random arithmetic expression over two variables, as C text and as a
/// Rust closure, for differential evaluation.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    Lit(i32),
    Bin(&'static str, Box<E>, Box<E>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        (0i32..1000).prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            prop::sample::select(vec!["+", "-", "*", "&", "|", "^"]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| E::Bin(op, Box::new(l), Box::new(r)))
    })
}

impl E {
    fn to_c(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::Lit(v) => v.to_string(),
            E::Bin(op, l, r) => format!("({} {} {})", l.to_c(), op, r.to_c()),
        }
    }

    fn eval(&self, a: i32, b: i32) -> i32 {
        match self {
            E::A => a,
            E::B => b,
            E::Lit(v) => *v,
            E::Bin(op, l, r) => {
                let (x, y) = (l.eval(a, b), r.eval(a, b));
                match *op {
                    "+" => x.wrapping_add(y),
                    "-" => x.wrapping_sub(y),
                    "*" => x.wrapping_mul(y),
                    "&" => x & y,
                    "|" => x | y,
                    _ => x ^ y,
                }
            }
        }
    }
}

proptest! {
    /// minic evaluates arbitrary integer arithmetic exactly like a 32-bit
    /// C compiler (differential against Rust's wrapping semantics).
    #[test]
    fn arithmetic_matches_c_semantics(e in expr_strategy(), a in any::<i16>(), b in any::<i16>()) {
        let src = format!("int f(int a, int b) {{ return {}; }}", e.to_c());
        let program = devil_minic::compile("t.c", &src).unwrap();
        let mut host = NullHost::default();
        let mut interp = Interpreter::new(&program, &mut host, 1_000_000);
        let got = interp
            .call("f", &[(a as i64).into(), (b as i64).into()])
            .unwrap()
            .as_int()
            .unwrap();
        let want = e.eval(a as i32, b as i32);
        // minic computes in i64 and wraps on the typed return boundary.
        prop_assert_eq!(wrap_int(got, 32, true) as i32, want, "{}", src);
    }

    /// Shifts match x86 semantics for in-range counts.
    #[test]
    fn shifts_match(x in any::<u16>(), n in 0u32..16) {
        let src = format!("int f(void) {{ return ({x} << {n}) | ({x} >> {n}); }}");
        let program = devil_minic::compile("t.c", &src).unwrap();
        let mut host = NullHost::default();
        let mut interp = Interpreter::new(&program, &mut host, 100_000);
        let got = interp.call("f", &[]).unwrap().as_int().unwrap();
        let want = ((x as i64) << n) | ((x as i64) >> n);
        prop_assert_eq!(got, want);
    }

    /// wrap_int is a proper truncation: stable under repetition and
    /// agrees with Rust's `as` casts.
    #[test]
    fn wrap_int_matches_rust_casts(v in any::<i64>()) {
        prop_assert_eq!(wrap_int(v, 8, false), (v as u8) as i64);
        prop_assert_eq!(wrap_int(v, 8, true), (v as i8) as i64);
        prop_assert_eq!(wrap_int(v, 16, false), (v as u16) as i64);
        prop_assert_eq!(wrap_int(v, 16, true), (v as i16) as i64);
        prop_assert_eq!(wrap_int(v, 32, true), (v as i32) as i64);
        let once = wrap_int(v, 16, true);
        prop_assert_eq!(wrap_int(once, 16, true), once);
    }

    /// The bytecode VM is observationally identical to the tree-walking
    /// oracle on arbitrary integer arithmetic: same value, same remaining
    /// fuel, same line coverage — even under tight fuel budgets where one
    /// extra burn would flip the result to `OutOfFuel`.
    #[test]
    fn vm_matches_tree_walker(e in expr_strategy(), a in any::<i16>(), b in any::<i16>(), fuel in 0u64..400) {
        let src = format!("int f(int a, int b) {{ return {}; }}", e.to_c());
        let program = devil_minic::compile("t.c", &src).unwrap();
        let args = [Value::Int(a as i64), Value::Int(b as i64)];

        let mut ih = NullHost::default();
        let mut interp = Interpreter::new(&program, &mut ih, fuel);
        let want = interp.call("f", &args);
        let want_fuel = interp.fuel_left();
        let want_cov = interp.coverage().clone();

        let compiled = program.to_bytecode();
        let mut vh = NullHost::default();
        let mut vm = Vm::new(&compiled, &mut vh, fuel);
        let got = vm.call("f", &args);
        prop_assert_eq!(&got, &want, "value diverged for {}", src);
        prop_assert_eq!(vm.fuel_left(), want_fuel, "fuel diverged for {}", src);
        prop_assert_eq!(vm.coverage(), &want_cov, "coverage diverged for {}", src);
    }

    /// Superinstruction fusion is observationally invisible: lowering a
    /// random checked program with the peephole pass on and off yields
    /// identical outcomes, console output, coverage bitmaps and remaining
    /// fuel on the VM — under tight budgets too, so the fuel-burn
    /// *sequence* provably matches (one reordered burn would flip which
    /// run exhausts first), and against the tree-walking oracle as well.
    #[test]
    fn fusion_on_and_off_are_identical(e in expr_strategy(), a in any::<i16>(), b in any::<i16>(), fuel in 0u64..600) {
        // Wrap the random expression in the loop shapes the pass targets
        // (const-bound while, local-bound while, prefix-decrement spin,
        // port spin) so fused ops actually execute.
        let src = format!(
            "int f(int a, int b) {{
                int t = 0;
                int r = 3;
                int acc = 0;
                while (t < 4) {{ t++; acc += {expr}; }}
                while (t < b) {{ t++; }}
                do {{ acc ^= t; }} while (--r > 0);
                while ((inb(0x1F7) & 0x80) == 0) {{ acc--; }}
                return acc;
            }}",
            expr = e.to_c()
        );
        let program = devil_minic::compile("t.c", &src).unwrap();
        let args = [Value::Int(a as i64), Value::Int(b as i64)];

        let mut ih = NullHost::default();
        let mut interp = Interpreter::new(&program, &mut ih, fuel);
        let want = interp.call("f", &args);
        let want_fuel = interp.fuel_left();
        let want_cov = interp.coverage().clone();
        drop(interp);

        let unfused = program.to_bytecode_unfused();
        let fused = program.to_bytecode();
        prop_assert_eq!(unfused.fused_op_count(), 0);
        prop_assert!(fused.fused_op_count() > 0, "harness loops must fuse");
        for compiled in [&unfused, &fused] {
            let mut vh = NullHost::default();
            let mut vm = Vm::new(compiled, &mut vh, fuel);
            let got = vm.call("f", &args);
            prop_assert_eq!(&got, &want, "value diverged for {}", src);
            prop_assert_eq!(vm.fuel_left(), want_fuel, "fuel diverged for {}", src);
            prop_assert_eq!(vm.coverage(), &want_cov, "coverage diverged for {}", src);
            drop(vm);
            prop_assert_eq!(&vh.log, &ih.log, "console diverged for {}", src);
        }
    }

    /// The block-transfer builtins match the oracle element for element,
    /// including partial transfers under fuel starvation and the
    /// out-of-bounds tail behaviour of a short destination.
    #[test]
    fn block_builtins_match_tree_walker(count in 0i64..40, fuel in 0u64..400) {
        let src = format!(
            "unsigned short buf[16];
             unsigned char bytes[16];
             int f(void) {{
                 insw(0x1F0, buf, {count});
                 outsw(0x1F0, buf, {count});
                 insb(0x1F0, bytes, {count});
                 outsb(0x1F0, bytes, {count});
                 return buf[0] + bytes[0];
             }}"
        );
        let program = devil_minic::compile("t.c", &src).unwrap();
        let mut ih = NullHost::default();
        let mut interp = Interpreter::new(&program, &mut ih, fuel);
        let want = interp.call("f", &[]);
        let want_fuel = interp.fuel_left();
        let compiled = program.to_bytecode();
        let mut vh = NullHost::default();
        let mut vm = Vm::new(&compiled, &mut vh, fuel);
        let got = vm.call("f", &[]);
        prop_assert_eq!(&got, &want, "value diverged for count {}", count);
        prop_assert_eq!(vm.fuel_left(), want_fuel, "fuel diverged for count {}", count);
    }

    /// The preprocessor and parser never panic on printable garbage, and
    /// whatever compiles also lowers to bytecode without panicking.
    #[test]
    fn frontend_totality(src in "[ -~\\n]{0,300}") {
        if let Ok(p) = devil_minic::compile("fuzz.c", &src) {
            let _ = p.to_bytecode();
        }
    }

    /// Comparison chains produce strictly 0/1.
    #[test]
    fn comparisons_are_boolean(a in any::<i32>(), b in any::<i32>()) {
        let src = "int f(int a, int b) { return (a < b) + (a > b) + (a == b); }";
        let program = devil_minic::compile("t.c", src).unwrap();
        let mut host = NullHost::default();
        let mut interp = Interpreter::new(&program, &mut host, 100_000);
        let got = interp
            .call("f", &[(a as i64).into(), (b as i64).into()])
            .unwrap()
            .as_int()
            .unwrap();
        prop_assert_eq!(got, 1, "exactly one of <, >, == holds");
    }
}
