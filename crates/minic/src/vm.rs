//! Flat-dispatch bytecode VM — the fast boot path for `minic` programs.
//!
//! Executes a [`CompiledProgram`] produced by [`crate::bytecode::lower`]
//! against the same [`Host`] trait, fuel budget and [`RunError`] taxonomy
//! as the tree-walking [`Interpreter`](crate::interp::Interpreter), which
//! survives as the *differential oracle*: anything observable — return
//! values, fault kind/file/line, console output, line coverage, and the
//! exact fuel-burn sequence — must be identical between the two engines,
//! the same relationship `hwsim::reference::LinearIoSpace` has to the
//! routing-table `IoSpace`.
//!
//! # Lowering invariants the VM relies on
//!
//! * every AST node burns exactly once, parent before children, so fuel
//!   exhaustion stops at the same instruction the tree-walker would;
//! * variable references arrive as numeric frame slots / global indices —
//!   the checker guarantees they resolve, so an unset slot can only mean
//!   an arity-mismatched harness call, which faults `BadValue` exactly
//!   like the tree-walker's failed name lookup;
//! * the object heap reproduces the interpreter's id assignment: globals
//!   allocate first in declaration order, locals allocate at their `Decl`,
//!   scopes release in push order onto a LIFO free list. Synthetic
//!   pointer-to-int addresses ("`(obj+1)*0x10000+idx`") therefore agree
//!   byte-for-byte. Unlike the interpreter, a released slot keeps its
//!   (cleared) element buffer for reuse, which is why the dispatch loop is
//!   allocation-free in steady state (`crates/minic/tests/zero_alloc.rs`);
//! * member-access field paths are static per expression; they live
//!   inline up to [`MAX_FIELD_DEPTH`] and spill to the heap beyond it
//!   (nominal struct nesting in driver code is depth ≤ 2).
//!
//! The `vm_differential` integration test and the minic proptests pin the
//! oracle relationship over the full driver corpus and mutant sets.

use crate::bytecode::{
    Builtin, CastKind, Coerce, CompiledProgram, FuseEnd, FuseRhs, FuseSrc, FusedOp, GFinish, Op,
    NO_FIELD,
};
use crate::coverage::Coverage;
use crate::deadline::{Deadline, DEADLINE_CHECK_INTERVAL};
use crate::interp::{FaultKind, Host, RunError, ABSORB_OBJ, MAX_DEPTH, OOB_SLACK, WILD_OBJ};
use crate::value::{wrap_int, ObjId, Place, Value};
use crate::ast::BinOp;
use std::rc::Rc;

/// Field-path length stored inline; driver structs nest ≤ 2 deep, so the
/// heap spill beyond this is a correctness escape hatch, not a hot path.
pub const MAX_FIELD_DEPTH: usize = 12;

/// Internal result type: errors ride boxed so the `Result` every
/// dispatched op returns stays two words — `RunError` itself carries
/// `String`s, and moving a ~7-word `Result` per op was measurable on the
/// execution core. Unboxed at the public [`Vm::call`] boundary.
type VmResult<T> = Result<T, Box<RunError>>;

/// A resolved lvalue: an element place plus a field path into nested
/// structs. The path lives inline up to [`MAX_FIELD_DEPTH`] and spills to
/// the heap beyond it, so arbitrarily deep (checker-legal) member chains
/// behave exactly like the tree-walker's `Vec`-backed paths.
#[derive(Debug, Clone)]
struct Lval {
    place: Place,
    path: [u16; MAX_FIELD_DEPTH],
    depth: u8,
    spill: Option<Vec<u16>>,
}

impl Lval {
    fn at(place: Place) -> Lval {
        Lval { place, path: [0; MAX_FIELD_DEPTH], depth: 0, spill: None }
    }

    fn fields(&self) -> &[u16] {
        match &self.spill {
            Some(v) => v,
            None => &self.path[..self.depth as usize],
        }
    }

    fn push_field(&mut self, fidx: u16) {
        if let Some(v) = &mut self.spill {
            v.push(fidx);
        } else if (self.depth as usize) < MAX_FIELD_DEPTH {
            self.path[self.depth as usize] = fidx;
            self.depth += 1;
        } else {
            let mut v = Vec::with_capacity(MAX_FIELD_DEPTH + 1);
            v.extend_from_slice(&self.path);
            v.push(fidx);
            self.spill = Some(v);
        }
    }

    fn is_bare(&self) -> bool {
        self.depth == 0 && self.spill.is_none()
    }
}

/// One heap object. `live == false` is the tree-walker's `None` slot
/// (use-after-scope trap); the buffer is kept for allocation-free reuse.
#[derive(Debug, Default)]
struct Obj {
    live: bool,
    data: Vec<Value>,
}

/// A suspended caller frame.
struct Saved<'a> {
    ops: &'a [Op],
    pc: usize,
    slot_base: usize,
    scope_floor: usize,
}

/// The VM. Create one per run; it owns the object heap and the coverage
/// bitmap, and borrows the compiled program and host for its lifetime.
pub struct Vm<'a, H: Host> {
    program: &'a CompiledProgram,
    host: &'a mut H,
    fuel: u64,
    deadline: Option<Deadline>,
    /// Burns until the next wall-clock probe (`u32::MAX` when unbounded).
    deadline_ticks: u32,
    coverage: Coverage,
    objects: Vec<Obj>,
    free: Vec<usize>,
    globals: Vec<Option<usize>>,
    globals_ready: bool,
    stack: Vec<Value>,
    lvs: Vec<Lval>,
    slots: Vec<usize>,
    scope_objs: Vec<usize>,
    scope_bases: Vec<usize>,
    frames: Vec<Saved<'a>>,
    slot_base: usize,
    scope_floor: usize,
    depth: u32,
    scratch: Vec<Value>,
    /// Reusable staging buffer for the block-transfer builtins
    /// (`insb`/`insw`/`outsb`/`outsw`) — sized once, then steady-state
    /// allocation-free like the rest of the dispatch loop.
    io_block: Vec<i64>,
    /// Last line recorded in `coverage` (`u32::MAX` = none): the burn
    /// fast path skips the bitmap when the line repeats.
    last_cov: u32,
    /// Recycled struct-value buffers: stub-style code constructs (and
    /// drops) thousands of small struct rvalues per boot, and reusing
    /// their `Vec`s halves the dispatch loop's allocator traffic.
    struct_pool: Vec<Vec<Value>>,
}

/// Upper bound on pooled struct buffers (they are tiny — a few `Value`s
/// each — so the cap is about pathological programs, not memory).
const STRUCT_POOL_CAP: usize = 256;

impl<'a, H: Host> Vm<'a, H> {
    /// Create a VM with a fuel budget (same unit as the interpreter's:
    /// one AST node evaluated per fuel point).
    pub fn new(program: &'a CompiledProgram, host: &'a mut H, fuel: u64) -> Self {
        Vm {
            program,
            host,
            fuel,
            deadline: None,
            deadline_ticks: u32::MAX,
            coverage: Coverage::with_bounds(&program.line_bounds),
            objects: Vec::new(),
            free: Vec::new(),
            globals: vec![None; program.globals.len()],
            globals_ready: false,
            stack: Vec::new(),
            lvs: Vec::new(),
            slots: Vec::new(),
            scope_objs: Vec::new(),
            scope_bases: Vec::new(),
            frames: Vec::new(),
            slot_base: 0,
            scope_floor: 0,
            depth: 0,
            scratch: Vec::new(),
            io_block: Vec::new(),
            last_cov: u32::MAX,
            struct_pool: Vec::new(),
        }
    }

    /// Remaining fuel.
    pub fn fuel_left(&self) -> u64 {
        self.fuel
    }

    /// Bound the run by a wall-clock deadline (in addition to fuel) —
    /// identical semantics to the interpreter's `with_deadline`: probed
    /// cooperatively, never touches fuel or coverage, so in-time runs stay
    /// bit-identical to unbounded runs.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Deadline>) -> Self {
        self.deadline = deadline;
        self.deadline_ticks =
            if deadline.is_some() { DEADLINE_CHECK_INTERVAL } else { u32::MAX };
        self
    }

    /// Mutable access to the host environment — for harnesses that inject
    /// device events (mouse motion, network frames) between driver calls.
    pub fn host_mut(&mut self) -> &mut H {
        self.host
    }

    /// Executed-line coverage so far.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Move the coverage map out, leaving an empty one behind.
    pub fn take_coverage(&mut self) -> Coverage {
        self.last_cov = u32::MAX; // the memo must not outlive its bitmap
        std::mem::take(&mut self.coverage)
    }

    /// Whether the packed line id was ever executed.
    pub fn line_covered(&self, packed: u32) -> bool {
        self.coverage.contains(packed)
    }

    /// Call a function by name with the given argument values.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] for panics, faults, fuel exhaustion, or an
    /// unknown entry point — identically to the interpreter.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, RunError> {
        self.ensure_globals().map_err(|e| *e)?;
        let Some(fidx) = self.program.function(name) else {
            return Err(RunError::NoSuchFunction(name.to_string()));
        };
        let result = self.run_call(fidx, args);
        if result.is_err() {
            self.unwind_all();
        } else {
            debug_assert!(self.stack.is_empty() && self.lvs.is_empty());
        }
        result.map_err(|e| *e)
    }

    /// Snapshot a global object's elements; `None` for unknown names or
    /// when global initialisation itself faulted.
    pub fn global_values(&mut self, name: &str) -> Option<Vec<Value>> {
        self.ensure_globals().ok()?;
        let gidx = self.program.global(name)?;
        let id = self.globals[gidx as usize]?;
        let o = self.objects.get(id)?;
        o.live.then(|| o.data.clone())
    }

    /// Read one element of a global object without snapshotting the whole
    /// object (no allocation); `None` for unknown names, dead objects or
    /// out-of-range indexes.
    pub fn global_value(&mut self, name: &str, idx: usize) -> Option<Value> {
        self.ensure_globals().ok()?;
        let gidx = self.program.global(name)?;
        let id = self.globals[gidx as usize]?;
        let o = self.objects.get(id)?;
        if !o.live {
            return None;
        }
        o.data.get(idx).cloned()
    }

    /// Overwrite element `idx` of a global object; `false` when the global
    /// or index does not exist.
    pub fn set_global_element(&mut self, name: &str, idx: usize, value: Value) -> bool {
        if self.ensure_globals().is_err() {
            return false;
        }
        let Some(gidx) = self.program.global(name) else { return false };
        let Some(id) = self.globals[gidx as usize] else { return false };
        let Some(o) = self.objects.get_mut(id) else { return false };
        if !o.live {
            return false;
        }
        match o.data.get_mut(idx) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    // ----- setup ----------------------------------------------------------

    fn ensure_globals(&mut self) -> VmResult<()> {
        if self.globals_ready {
            return Ok(());
        }
        self.globals_ready = true;
        for gidx in 0..self.program.globals.len() {
            let g = &self.program.globals[gidx];
            match self.run_global(gidx) {
                Ok(id) => self.globals[gidx] = Some(id),
                Err(mut err) => {
                    // `eval_const` re-stamps only the fault *line* to the
                    // global's declaration line.
                    if let RunError::Fault { line: l, .. } = &mut *err {
                        let (_, local) = crate::token::unpack_line(g.line);
                        *l = local;
                    }
                    self.stack.clear();
                    self.lvs.clear();
                    return Err(err);
                }
            }
        }
        Ok(())
    }

    /// Evaluate one global's initialiser ops and assemble its object.
    fn run_global(&mut self, gidx: usize) -> VmResult<usize> {
        let g = &self.program.globals[gidx];
        let ops: &'a [Op] = &g.ops;
        let mut pc = 0usize;
        while pc < ops.len() {
            let op = &ops[pc];
            pc += 1;
            // Global initialisers are checker-enforced constant
            // expressions: no calls, declarations or scopes can appear.
            let flow = self.dispatch(op)?;
            match flow {
                Flow::Next => {}
                Flow::Jump(t) => pc = t as usize,
                Flow::Call { .. } | Flow::Ret => {
                    unreachable!("constant initialisers cannot call or return")
                }
            }
        }
        let id = self.alloc();
        let mut data = std::mem::take(&mut self.objects[id].data);
        match &g.finish {
            GFinish::Zero { template } => {
                data.extend_from_slice(&self.program.templates[*template as usize]);
            }
            GFinish::Scalar { coerce } => {
                let v = self.stack.pop().expect("scalar initialiser evaluated");
                data.push(apply_coerce(*coerce, v));
            }
            GFinish::Array { template, items } => {
                data.extend_from_slice(&self.program.templates[*template as usize]);
                let base = self.stack.len() - *items as usize;
                // Aggregate items store *raw*, mirroring `ensure_globals`.
                for (i, v) in self.stack.drain(base..).enumerate() {
                    if i < data.len() {
                        data[i] = v;
                    }
                }
            }
            GFinish::Struct { template, items } => {
                let mut vals: Vec<Value> =
                    self.program.templates[*template as usize].to_vec();
                let base = self.stack.len() - *items as usize;
                for (i, v) in self.stack.drain(base..).enumerate() {
                    if i < vals.len() {
                        vals[i] = v;
                    }
                }
                data.push(Value::Struct(Rc::new(vals)));
            }
        }
        self.objects[id].data = data;
        Ok(id)
    }

    // ----- frame machinery ------------------------------------------------

    fn run_call(&mut self, fidx: u16, args: &[Value]) -> VmResult<Value> {
        let func = &self.program.funcs[fidx as usize];
        if self.depth >= MAX_DEPTH {
            return Err(self.fault(FaultKind::StackOverflow, func.line));
        }
        self.depth += 1;
        self.slot_base = self.slots.len();
        self.slots.resize(self.slot_base + func.slots as usize, usize::MAX);
        self.scope_floor = self.scope_bases.len();
        self.enter_scope();
        for (i, coerce) in func.params.iter().enumerate() {
            let Some(arg) = args.get(i) else { break };
            let v = apply_coerce(*coerce, arg.clone());
            let id = self.alloc();
            self.objects[id].data.push(v);
            self.scope_objs.push(id);
            self.slots[self.slot_base + i] = id;
        }
        let mut ops: &'a [Op] = &func.ops;
        let mut pc = 0usize;
        loop {
            let op = &ops[pc];
            pc += 1;
            match self.dispatch(op)? {
                Flow::Next => {}
                Flow::Jump(t) => pc = t as usize,
                Flow::Call { fidx } => {
                    let callee = &self.program.funcs[fidx as usize];
                    let argc = callee_argc(op);
                    if self.depth >= MAX_DEPTH {
                        return Err(self.fault(FaultKind::StackOverflow, callee.line));
                    }
                    self.depth += 1;
                    self.frames.push(Saved {
                        ops,
                        pc,
                        slot_base: self.slot_base,
                        scope_floor: self.scope_floor,
                    });
                    self.slot_base = self.slots.len();
                    self.slots
                        .resize(self.slot_base + callee.slots as usize, usize::MAX);
                    self.scope_floor = self.scope_bases.len();
                    self.enter_scope();
                    let base = self.stack.len() - argc;
                    for i in 0..argc.min(callee.params.len()) {
                        let arg =
                            std::mem::replace(&mut self.stack[base + i], Value::Int(0));
                        let v = apply_coerce(callee.params[i], arg);
                        let id = self.alloc();
                        self.objects[id].data.push(v);
                        self.scope_objs.push(id);
                        self.slots[self.slot_base + i] = id;
                    }
                    self.stack.truncate(base);
                    ops = &callee.ops;
                    pc = 0;
                }
                Flow::Ret => {
                    let ret = self.stack.pop().expect("return value on stack");
                    while self.scope_bases.len() > self.scope_floor {
                        self.exit_scope();
                    }
                    self.slots.truncate(self.slot_base);
                    self.depth -= 1;
                    match self.frames.pop() {
                        Some(saved) => {
                            ops = saved.ops;
                            pc = saved.pc;
                            self.slot_base = saved.slot_base;
                            self.scope_floor = saved.scope_floor;
                            self.stack.push(ret);
                        }
                        None => return Ok(ret),
                    }
                }
            }
        }
    }

    /// Release everything after an error, in the order the tree-walker's
    /// stack unwinding would: innermost scope first.
    fn unwind_all(&mut self) {
        while let Some(base) = self.scope_bases.pop() {
            for i in base..self.scope_objs.len() {
                let id = self.scope_objs[i];
                self.kill(id);
            }
            self.scope_objs.truncate(base);
        }
        self.slots.clear();
        self.frames.clear();
        self.stack.clear();
        self.lvs.clear();
        self.slot_base = 0;
        self.scope_floor = 0;
        self.depth = 0;
    }

    fn enter_scope(&mut self) {
        self.scope_bases.push(self.scope_objs.len());
    }

    fn exit_scope(&mut self) {
        let base = self.scope_bases.pop().expect("scope to exit");
        // Release in push order, mirroring `release_scope`.
        for i in base..self.scope_objs.len() {
            let id = self.scope_objs[i];
            self.kill(id);
        }
        self.scope_objs.truncate(base);
    }

    fn kill(&mut self, id: usize) {
        if let Some(o) = self.objects.get_mut(id) {
            o.live = false;
            // Drop values now; keep the buffer for reuse — and reclaim
            // uniquely-owned struct buffers into the pool while at it.
            for v in o.data.drain(..) {
                if let Value::Struct(rc) = v {
                    if self.struct_pool.len() < STRUCT_POOL_CAP {
                        if let Ok(mut inner) = Rc::try_unwrap(rc) {
                            inner.clear();
                            self.struct_pool.push(inner);
                        }
                    }
                }
            }
            self.free.push(id);
        }
    }

    /// Recycle a struct rvalue's buffer once its last owner lets go —
    /// `dil_val`-style field extraction is where most stub structs die.
    #[inline]
    fn reclaim_struct(&mut self, fields: Rc<Vec<Value>>) {
        if self.struct_pool.len() < STRUCT_POOL_CAP {
            if let Ok(mut inner) = Rc::try_unwrap(fields) {
                inner.clear();
                self.struct_pool.push(inner);
            }
        }
    }

    fn alloc(&mut self) -> usize {
        if let Some(id) = self.free.pop() {
            self.objects[id].live = true;
            id
        } else {
            self.objects.push(Obj { live: true, data: Vec::new() });
            self.objects.len() - 1
        }
    }

    // ----- helpers (mirrors of the interpreter's) -------------------------

    fn loc(&self, packed: u32) -> (String, u32) {
        let (file, line) = self.program.loc(packed);
        (file.to_string(), line)
    }

    fn fault(&self, kind: FaultKind, packed: u32) -> Box<RunError> {
        let (file, line) = self.loc(packed);
        Box::new(RunError::Fault { kind, file, line })
    }

    #[inline]
    fn burn(&mut self, packed: u32) -> VmResult<()> {
        // One-entry memo: polling loops burn the same source line many
        // times per iteration (condition, operand and constant all sit on
        // one line), and re-setting an already-set coverage bit is the
        // single most repeated piece of work in the dispatch loop.
        if packed != self.last_cov {
            self.coverage.insert(packed);
            self.last_cov = packed;
        }
        if self.fuel == 0 {
            return Err(Box::new(RunError::OutOfFuel));
        }
        self.fuel -= 1;
        self.deadline_ticks -= 1;
        if self.deadline_ticks == 0 {
            return self.deadline_probe();
        }
        Ok(())
    }

    /// Amortised wall-clock probe: called once per
    /// [`DEADLINE_CHECK_INTERVAL`] burns, reloads the countdown.
    #[cold]
    fn deadline_probe(&mut self) -> VmResult<()> {
        match self.deadline {
            Some(d) if d.expired() => Err(Box::new(RunError::DeadlineExpired)),
            Some(_) => {
                self.deadline_ticks = DEADLINE_CHECK_INTERVAL;
                Ok(())
            }
            None => {
                self.deadline_ticks = u32::MAX;
                Ok(())
            }
        }
    }

    /// Direct wall-clock check at dispatch boundaries that consume
    /// unbounded fuel in one step (block I/O, delays).
    fn deadline_dispatch_check(&self) -> VmResult<()> {
        match self.deadline {
            Some(d) if d.expired() => Err(Box::new(RunError::DeadlineExpired)),
            _ => Ok(()),
        }
    }

    fn obj(&self, place: Place, packed: u32) -> VmResult<&Vec<Value>> {
        if place.obj.0 == WILD_OBJ || place.obj.0 == ABSORB_OBJ {
            return Err(self.fault(FaultKind::WildDeref, packed));
        }
        match self.objects.get(place.obj.0) {
            Some(o) if o.live => Ok(&o.data),
            Some(_) => Err(self.fault(FaultKind::UseAfterScope, packed)),
            None => Err(self.fault(FaultKind::WildDeref, packed)),
        }
    }

    fn read_place(&self, lv: &Lval, packed: u32) -> VmResult<Value> {
        if lv.place.obj.0 == ABSORB_OBJ {
            return Ok(Value::Int(0));
        }
        let data = self.obj(lv.place, packed)?;
        if lv.place.idx >= data.len() {
            return if lv.place.idx < data.len() + OOB_SLACK {
                Ok(Value::Int(0)) // nearby memory: silent garbage
            } else {
                Err(self.fault(FaultKind::OutOfBounds, packed))
            };
        }
        let mut v = data
            .get(lv.place.idx)
            .ok_or_else(|| self.fault(FaultKind::OutOfBounds, packed))?;
        for f in lv.fields() {
            let Value::Struct(fields) = v else {
                return Err(self.fault(FaultKind::BadValue, packed));
            };
            v = fields
                .get(*f as usize)
                .ok_or_else(|| self.fault(FaultKind::BadValue, packed))?;
        }
        Ok(v.clone())
    }

    fn write_place(&mut self, lv: &Lval, value: Value, packed: u32) -> VmResult<()> {
        if lv.place.obj.0 == ABSORB_OBJ {
            return Ok(()); // nearby memory: silent corruption
        }
        if lv.place.obj.0 == WILD_OBJ {
            return Err(self.fault(FaultKind::WildDeref, packed));
        }
        // One object lookup for the whole store. Unlike the tree-walker,
        // fault values build lazily: a fault carries an allocated file
        // name, and the success path of a store must stay allocation-free
        // (which is also why the faults below are bare kinds until the
        // very end).
        let kind = match self.objects.get_mut(lv.place.obj.0) {
            Some(o) => {
                // Nearby overruns corrupt silently; far ones crash.
                if o.live && lv.place.idx >= o.data.len() {
                    if lv.place.idx < o.data.len() + OOB_SLACK {
                        return Ok(());
                    }
                    FaultKind::OutOfBounds
                } else {
                    match Self::write_slot(o, lv, value) {
                        Ok(()) => return Ok(()),
                        Err(kind) => kind,
                    }
                }
            }
            None => FaultKind::WildDeref,
        };
        Err(self.fault(kind, packed))
    }

    /// The mutation half of [`Vm::write_place`], with faults as bare kinds
    /// so the caller can stamp the location without eager allocation.
    fn write_slot(o: &mut Obj, lv: &Lval, value: Value) -> Result<(), FaultKind> {
        if !o.live {
            return Err(FaultKind::UseAfterScope);
        }
        let mut v = o.data.get_mut(lv.place.idx).ok_or(FaultKind::OutOfBounds)?;
        for f in lv.fields() {
            let Value::Struct(fields) = v else { return Err(FaultKind::BadValue) };
            v = Rc::make_mut(fields)
                .get_mut(*f as usize)
                .ok_or(FaultKind::BadValue)?;
        }
        *v = value;
        Ok(())
    }

    fn apply_binop(&self, op: BinOp, l: Value, r: Value, line: u32) -> VmResult<Value> {
        use BinOp::*;
        // Pointer arithmetic and comparisons.
        match (&l, &r) {
            (Value::Ptr(lp), Value::Ptr(rp)) => {
                let cmp = |b: bool| Ok(Value::Int(i64::from(b)));
                return match op {
                    Eq => cmp(lp == rp),
                    Ne => cmp(lp != rp),
                    Lt | Gt | Le | Ge => {
                        let (a, b) = match (lp, rp) {
                            (Some(a), Some(b)) if a.obj == b.obj => (a.idx, b.idx),
                            _ => (0, 0),
                        };
                        cmp(match op {
                            Lt => a < b,
                            Gt => a > b,
                            Le => a <= b,
                            _ => a >= b,
                        })
                    }
                    Sub => {
                        let (a, b) = match (lp, rp) {
                            (Some(a), Some(b)) if a.obj == b.obj => {
                                (a.idx as i64, b.idx as i64)
                            }
                            _ => (0, 0),
                        };
                        Ok(Value::Int(a - b))
                    }
                    _ => Err(self.fault(FaultKind::BadValue, line)),
                };
            }
            (Value::Ptr(p), Value::Int(n)) if matches!(op, Add | Sub) => {
                let Some(p) = p else {
                    return Err(self.fault(FaultKind::NullDeref, line));
                };
                let idx = if op == Add {
                    p.idx as i64 + *n
                } else {
                    p.idx as i64 - *n
                };
                if idx < 0 {
                    return if idx > -(OOB_SLACK as i64) {
                        Ok(Value::Ptr(Some(Place { obj: ObjId(ABSORB_OBJ), idx: 0 })))
                    } else {
                        Err(self.fault(FaultKind::OutOfBounds, line))
                    };
                }
                return Ok(Value::Ptr(Some(Place { obj: p.obj, idx: idx as usize })));
            }
            (Value::Int(n), Value::Ptr(Some(p))) if op == Add => {
                return Ok(Value::Ptr(Some(Place { obj: p.obj, idx: p.idx + *n as usize })));
            }
            _ => {}
        }
        let (Some(a), Some(b)) = (l.as_int(), r.as_int()) else {
            return Err(self.fault(FaultKind::BadValue, line));
        };
        let v = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return Err(self.fault(FaultKind::DivByZero, line));
                }
                a.wrapping_div(b)
            }
            Rem => {
                if b == 0 {
                    return Err(self.fault(FaultKind::DivByZero, line));
                }
                a.wrapping_rem(b)
            }
            // x86 semantics: the shift count is masked, never trapping.
            Shl => a.wrapping_shl((b as u32) & 63),
            Shr => {
                if a >= 0 {
                    a.wrapping_shr((b as u32) & 63)
                } else {
                    ((a as u32) >> ((b as u32) & 31)) as i64
                }
            }
            BitAnd => a & b,
            BitOr => a | b,
            BitXor => a ^ b,
            Eq => i64::from(a == b),
            Ne => i64::from(a != b),
            Lt => i64::from(a < b),
            Gt => i64::from(a > b),
            Le => i64::from(a <= b),
            Ge => i64::from(a >= b),
            LogAnd | LogOr => unreachable!("short-circuited by lowering"),
        };
        Ok(Value::Int(v))
    }

    // ----- dispatch -------------------------------------------------------

    /// Execute one op. Control-transfer ops report back to the frame loop.
    /// Inlined into both drivers (`run_call`'s hot loop and the cold
    /// global-initialiser loop) so the per-op call overhead vanishes.
    #[inline(always)]
    fn dispatch(&mut self, op: &Op) -> VmResult<Flow> {
        match op {
            Op::Line(l) => self.burn(*l)?,
            Op::Const { cidx, line } => {
                self.burn(*line)?;
                self.stack.push(self.program.consts[*cidx as usize].clone());
            }
            Op::ConstN { cidx, seq } => {
                let seq = &self.program.burn_seqs[*seq as usize];
                for l in seq.iter() {
                    self.burn(*l)?;
                }
                self.stack.push(self.program.consts[*cidx as usize].clone());
            }
            Op::PushConst { cidx } => {
                self.stack.push(self.program.consts[*cidx as usize].clone());
            }
            Op::LoadLocal { slot, line } => {
                self.burn(*line)?;
                let id = self.slots[self.slot_base + *slot as usize];
                if id == usize::MAX {
                    return Err(self.fault(FaultKind::BadValue, *line));
                }
                self.load_object(id, *line)?;
            }
            Op::LoadGlobal { gidx, line } => {
                self.burn(*line)?;
                let Some(id) = self.globals[*gidx as usize] else {
                    return Err(self.fault(FaultKind::BadValue, *line));
                };
                self.load_object(id, *line)?;
            }
            Op::PlaceLocal { slot, line } => {
                let id = self.slots[self.slot_base + *slot as usize];
                if id == usize::MAX {
                    return Err(self.fault(FaultKind::BadValue, *line));
                }
                self.lvs.push(Lval::at(Place { obj: ObjId(id), idx: 0 }));
            }
            Op::PlaceGlobal { gidx, line } => {
                let Some(id) = self.globals[*gidx as usize] else {
                    return Err(self.fault(FaultKind::BadValue, *line));
                };
                self.lvs.push(Lval::at(Place { obj: ObjId(id), idx: 0 }));
            }
            Op::PtrPlace { line } => {
                let v = self.stack.pop().expect("pointer operand");
                match v {
                    Value::Ptr(Some(p)) => self.lvs.push(Lval::at(p)),
                    Value::Ptr(None) => {
                        return Err(self.fault(FaultKind::NullDeref, *line))
                    }
                    _ => return Err(self.fault(FaultKind::BadValue, *line)),
                }
            }
            Op::IndexPlace { line, idx_line } => {
                let index = self.stack.pop().expect("index value");
                let base = self.stack.pop().expect("base value");
                let i = index
                    .as_int()
                    .ok_or_else(|| self.fault(FaultKind::BadValue, *idx_line))?;
                match base {
                    Value::Ptr(Some(p)) => {
                        let idx = p.idx as i64 + i;
                        if idx < 0 {
                            if idx > -(OOB_SLACK as i64) {
                                self.lvs.push(Lval::at(Place {
                                    obj: ObjId(ABSORB_OBJ),
                                    idx: 0,
                                }));
                            } else {
                                return Err(self.fault(FaultKind::OutOfBounds, *line));
                            }
                        } else {
                            self.lvs
                                .push(Lval::at(Place { obj: p.obj, idx: idx as usize }));
                        }
                    }
                    Value::Ptr(None) => return Err(self.fault(FaultKind::NullDeref, *line)),
                    _ => return Err(self.fault(FaultKind::BadValue, *line)),
                }
            }
            Op::MemberArrow { line } => {
                let v = self.stack.pop().expect("arrow base");
                match v {
                    Value::Ptr(Some(p)) => self.lvs.push(Lval::at(p)),
                    Value::Ptr(None) => {
                        return Err(self.fault(FaultKind::NullDeref, *line))
                    }
                    _ => return Err(self.fault(FaultKind::BadValue, *line)),
                }
            }
            Op::MemberStep { fidx, line } => {
                let lv = self.lvs.last().expect("member base place");
                let v = self.read_place(lv, *line)?;
                let Value::Struct(_) = v else {
                    return Err(self.fault(FaultKind::BadValue, *line));
                };
                if *fidx == NO_FIELD {
                    return Err(self.fault(FaultKind::BadValue, *line));
                }
                self.lvs
                    .last_mut()
                    .expect("member base place")
                    .push_field(*fidx);
            }
            Op::ReadPlace { line } => {
                let lv = self.lvs.pop().expect("place to read");
                let v = self.read_place(&lv, *line)?;
                self.stack.push(v);
            }
            Op::MemberValue { fidx, line } => {
                let v = self.stack.pop().expect("struct rvalue");
                let Value::Struct(fields) = v else {
                    return Err(self.fault(FaultKind::BadValue, *line));
                };
                if *fidx == NO_FIELD {
                    return Err(self.fault(FaultKind::BadValue, *line));
                }
                let v = fields
                    .get(*fidx as usize)
                    .cloned()
                    .ok_or_else(|| self.fault(FaultKind::BadValue, *line))?;
                self.reclaim_struct(fields);
                self.stack.push(v);
            }
            Op::AddrOf => {
                let lv = self.lvs.pop().expect("addressed place");
                let v = if lv.is_bare() {
                    Value::Ptr(Some(lv.place))
                } else {
                    // Pointers into struct interiors are wild if formed.
                    Value::Ptr(Some(Place { obj: ObjId(WILD_OBJ), idx: 0 }))
                };
                self.stack.push(v);
            }
            Op::Store { line } => {
                let lv = self.lvs.pop().expect("store target");
                let rv = self.stack.pop().expect("store value");
                self.write_place(&lv, rv.clone(), *line)?;
                self.stack.push(rv);
            }
            Op::StoreBin { op, line } => {
                let lv = self.lvs.pop().expect("store target");
                let rv = self.stack.pop().expect("store value");
                let old = self.read_place(&lv, *line)?;
                let new = self.apply_binop(*op, old, rv, *line)?;
                self.write_place(&lv, new.clone(), *line)?;
                self.stack.push(new);
            }
            Op::StoreLocalPop { slot, line } => {
                let lv = self.local_place(*slot, *line)?;
                let rv = self.stack.pop().expect("store value");
                self.write_place(&lv, rv, *line)?;
            }
            Op::StoreGlobalPop { gidx, line } => {
                let lv = self.global_place(*gidx, *line)?;
                let rv = self.stack.pop().expect("store value");
                self.write_place(&lv, rv, *line)?;
            }
            Op::StoreOpLocalPop { slot, op, line } => {
                let lv = self.local_place(*slot, *line)?;
                let rv = self.stack.pop().expect("store value");
                let old = self.read_place(&lv, *line)?;
                let new = self.apply_binop(*op, old, rv, *line)?;
                self.write_place(&lv, new, *line)?;
            }
            Op::StoreOpGlobalPop { gidx, op, line } => {
                let lv = self.global_place(*gidx, *line)?;
                let rv = self.stack.pop().expect("store value");
                let old = self.read_place(&lv, *line)?;
                let new = self.apply_binop(*op, old, rv, *line)?;
                self.write_place(&lv, new, *line)?;
            }
            Op::IncDecLocalPop { slot, inc, line } => {
                let lv = self.local_place(*slot, *line)?;
                self.inc_dec_discard(&lv, *inc, *line)?;
            }
            Op::IncDecGlobalPop { gidx, inc, line } => {
                let lv = self.global_place(*gidx, *line)?;
                self.inc_dec_discard(&lv, *inc, *line)?;
            }
            Op::IncDec { inc, prefix, line } => {
                let lv = self.lvs.pop().expect("incdec target");
                let v = self.inc_dec_value(&lv, *inc, *prefix, *line)?;
                self.stack.push(v);
            }
            Op::Neg { line } => {
                let v = self.stack.pop().expect("negate operand");
                let i = v
                    .as_int()
                    .ok_or_else(|| self.fault(FaultKind::BadValue, *line))?;
                self.stack.push(Value::Int(i.wrapping_neg()));
            }
            Op::LogicalNot => {
                let v = self.stack.pop().expect("not operand");
                self.stack.push(Value::Int(i64::from(!v.truthy())));
            }
            Op::BitNot { line } => {
                let v = self.stack.pop().expect("bitnot operand");
                let i = v
                    .as_int()
                    .ok_or_else(|| self.fault(FaultKind::BadValue, *line))?;
                self.stack.push(Value::Int(!i));
            }
            Op::Bin { op, line } => {
                let r = self.stack.pop().expect("rhs");
                let l = self.stack.pop().expect("lhs");
                let v = self.apply_binop(*op, l, r, *line)?;
                self.stack.push(v);
            }
            Op::BinConst { op, cidx, rhs_line, line } => {
                self.burn(*rhs_line)?;
                let l = self.stack.pop().expect("lhs");
                let r = self.program.consts[*cidx as usize].clone();
                let v = self.apply_binop(*op, l, r, *line)?;
                self.stack.push(v);
            }
            Op::CoerceBool => {
                let v = self.stack.pop().expect("bool operand");
                self.stack.push(Value::Int(i64::from(v.truthy())));
            }
            Op::Cast { kind, line } => {
                let v = self.stack.pop().expect("cast operand");
                let out = self.apply_cast(*kind, v, *line)?;
                self.stack.push(out);
            }
            Op::Pop => {
                self.stack.pop().expect("value to discard");
            }
            Op::Jump { target } => return Ok(Flow::Jump(*target)),
            Op::JumpIfFalse { target } => {
                let v = self.stack.pop().expect("condition");
                if !v.truthy() {
                    return Ok(Flow::Jump(*target));
                }
            }
            Op::JumpIfTrue { target } => {
                let v = self.stack.pop().expect("condition");
                if v.truthy() {
                    return Ok(Flow::Jump(*target));
                }
            }
            Op::BrFalseConst { target } => {
                let v = self.stack.pop().expect("lhs of &&");
                if !v.truthy() {
                    self.stack.push(Value::Int(0));
                    return Ok(Flow::Jump(*target));
                }
            }
            Op::BrTrueConst { target } => {
                let v = self.stack.pop().expect("lhs of ||");
                if v.truthy() {
                    self.stack.push(Value::Int(1));
                    return Ok(Flow::Jump(*target));
                }
            }
            Op::Switch { table } => {
                let t = &self.program.switches[*table as usize];
                let v = self.stack.pop().expect("switch scrutinee");
                let v = v
                    .as_int()
                    .ok_or_else(|| self.fault(FaultKind::BadValue, t.line))?;
                let target = t
                    .cases
                    .iter()
                    .find(|(c, _)| *c == v)
                    .map(|(_, t)| *t)
                    .or(t.default);
                match target {
                    Some(target) => {
                        if t.enter_scope {
                            self.enter_scope();
                        }
                        return Ok(Flow::Jump(target));
                    }
                    None => return Ok(Flow::Jump(t.end)),
                }
            }
            Op::EnterScope => self.enter_scope(),
            Op::ExitScope => self.exit_scope(),
            Op::DeclZero { slot, template } => {
                let id = self.alloc();
                let mut data = std::mem::take(&mut self.objects[id].data);
                let template = &self.program.templates[*template as usize];
                match &template[..] {
                    // Struct locals copy into a pooled, *unshared* buffer
                    // up front, so later field stores never pay a
                    // `Rc::make_mut` deep copy against the interned
                    // template. Value-identical to the plain clone.
                    [Value::Struct(fields)] => {
                        let mut buf = self.struct_pool.pop().unwrap_or_default();
                        buf.clear();
                        buf.extend_from_slice(fields);
                        data.push(Value::Struct(Rc::new(buf)));
                    }
                    _ => data.extend_from_slice(template),
                }
                self.objects[id].data = data;
                self.scope_objs.push(id);
                self.slots[self.slot_base + *slot as usize] = id;
            }
            Op::DeclScalar { slot, coerce } => {
                let v = self.stack.pop().expect("initialiser value");
                let v = apply_coerce(*coerce, v);
                let id = self.alloc();
                self.objects[id].data.push(v);
                self.scope_objs.push(id);
                self.slots[self.slot_base + *slot as usize] = id;
            }
            Op::DeclArray { slot, template, items, coerce } => {
                let id = self.alloc();
                let mut data = std::mem::take(&mut self.objects[id].data);
                data.extend_from_slice(&self.program.templates[*template as usize]);
                let base = self.stack.len() - *items as usize;
                for (i, v) in self.stack.drain(base..).enumerate() {
                    if i < data.len() {
                        data[i] = apply_coerce(*coerce, v);
                    }
                }
                self.objects[id].data = data;
                self.scope_objs.push(id);
                self.slots[self.slot_base + *slot as usize] = id;
            }
            Op::DeclStruct { slot, template, items, coerces } => {
                let mut vals: Vec<Value> =
                    self.program.templates[*template as usize].to_vec();
                let coerces = &self.program.field_coerces[*coerces as usize];
                let base = self.stack.len() - *items as usize;
                for (i, v) in self.stack.drain(base..).enumerate() {
                    if i < vals.len() {
                        vals[i] = apply_coerce(coerces[i], v);
                    }
                }
                let id = self.alloc();
                self.objects[id].data.push(Value::Struct(Rc::new(vals)));
                self.scope_objs.push(id);
                self.slots[self.slot_base + *slot as usize] = id;
            }
            Op::StoreFieldLocalPop { slot, fidx, line } => {
                let rv = self.stack.pop().expect("store value");
                self.store_field_local(*slot, *fidx, *line, rv)?;
            }
            Op::IncDecJmp { slot, global, inc, line, target } => {
                self.burn(*line)?;
                let lv = if *global {
                    self.global_place(*slot, *line)?
                } else {
                    self.local_place(*slot, *line)?
                };
                self.inc_dec_discard(&lv, *inc, *line)?;
                return Ok(Flow::Jump(*target));
            }
            Op::FusedBr { idx } => {
                let program: &'a CompiledProgram = self.program;
                let f = &program.fused[*idx as usize];
                if let Some(target) = self.exec_fused(f)? {
                    return Ok(Flow::Jump(target));
                }
            }
            Op::InlineEnter { first_slot, argc, coerces, call_line, line } => {
                // A folded call-expression `Line` burns before anything,
                // exactly where the standalone op did.
                if *call_line != u32::MAX {
                    self.burn(*call_line)?;
                }
                // The depth check of a real call, at the same fault site.
                if self.depth >= MAX_DEPTH {
                    return Err(self.fault(FaultKind::StackOverflow, *line));
                }
                self.depth += 1;
                self.enter_scope();
                // Bind arguments exactly like the out-of-line machinery:
                // first argument deepest, objects allocated in parameter
                // order (the ObjId sequence the oracle produces).
                let coerces = &self.program.field_coerces[*coerces as usize];
                let argc = *argc as usize;
                let base = self.stack.len() - argc;
                for i in 0..argc.min(coerces.len()) {
                    let arg = std::mem::replace(&mut self.stack[base + i], Value::Int(0));
                    let v = apply_coerce(coerces[i], arg);
                    let id = self.alloc();
                    self.objects[id].data.push(v);
                    self.scope_objs.push(id);
                    self.slots[self.slot_base + *first_slot as usize + i] = id;
                }
                self.stack.truncate(base);
            }
            Op::InlineExit => {
                self.exit_scope();
                self.depth -= 1;
            }
            Op::InlineExitPop => {
                self.exit_scope();
                self.depth -= 1;
                self.stack.pop().expect("discarded return value");
            }
            Op::InlineExitJmp { target } => {
                self.exit_scope();
                self.depth -= 1;
                return Ok(Flow::Jump(*target));
            }
            Op::InlineExitDecl { slot, coerce } => {
                self.exit_scope();
                self.depth -= 1;
                let v = self.stack.pop().expect("initialiser value");
                let v = apply_coerce(*coerce, v);
                let id = self.alloc();
                self.objects[id].data.push(v);
                self.scope_objs.push(id);
                self.slots[self.slot_base + *slot as usize] = id;
            }
            Op::InlineExitStore { slot, line } => {
                self.exit_scope();
                self.depth -= 1;
                let lv = self.local_place(*slot, *line)?;
                let rv = self.stack.pop().expect("store value");
                self.write_place(&lv, rv, *line)?;
            }
            Op::CallUser { fidx, .. } => return Ok(Flow::Call { fidx: *fidx }),
            Op::CallBuiltin { which, argc, line } => {
                // Port I/O is the single hottest builtin shape (polling
                // loops issue one `inb` per iteration); read the fixed
                // arguments straight off the stack instead of staging
                // them through the scratch buffer.
                match which {
                    Builtin::Inb | Builtin::Inw | Builtin::Inl if *argc == 1 => {
                        let port =
                            self.stack.pop().and_then(|v| v.as_int()).unwrap_or(0) as u16;
                        let (size, mask) = match which {
                            Builtin::Inb => (1, 0xFF),
                            Builtin::Inw => (2, 0xFFFF),
                            _ => (4, 0xFFFF_FFFF),
                        };
                        self.stack.push(Value::Int(self.host.io_read(port, size) & mask));
                    }
                    Builtin::Outb | Builtin::Outw | Builtin::Outl if *argc == 2 => {
                        let port =
                            self.stack.pop().and_then(|v| v.as_int()).unwrap_or(0) as u16;
                        let value = self.stack.pop().and_then(|v| v.as_int()).unwrap_or(0);
                        let (size, mask) = match which {
                            Builtin::Outb => (1, 0xFF),
                            Builtin::Outw => (2, 0xFFFF),
                            _ => (4, 0xFFFF_FFFF),
                        };
                        self.host.io_write(port, size, value & mask);
                        self.stack.push(Value::Int(0));
                    }
                    _ => self.call_builtin(*which, *argc as usize, *line)?,
                }
            }
            Op::Ret => return Ok(Flow::Ret),
            Op::Trap { kind, line } => return Err(self.fault(*kind, *line)),
        }
        Ok(Flow::Next)
    }

    /// The place of a local slot (the fused-store ops' form of
    /// `PlaceLocal`, with the same unset-slot fault).
    #[inline]
    fn local_place(&self, slot: u16, line: u32) -> VmResult<Lval> {
        let id = self.slots[self.slot_base + slot as usize];
        if id == usize::MAX {
            return Err(self.fault(FaultKind::BadValue, line));
        }
        Ok(Lval::at(Place { obj: ObjId(id), idx: 0 }))
    }

    /// The place of a global (the fused-store ops' form of `PlaceGlobal`).
    #[inline]
    fn global_place(&self, gidx: u16, line: u32) -> VmResult<Lval> {
        let Some(id) = self.globals[gidx as usize] else {
            return Err(self.fault(FaultKind::BadValue, line));
        };
        Ok(Lval::at(Place { obj: ObjId(id), idx: 0 }))
    }

    /// Execute one superinstruction (see [`FusedOp`] for the exact
    /// replayed sequence). Returns the branch target when taken. Kept
    /// `inline(always)` for the same reason as `dispatch`: polling loops
    /// are almost nothing but this.
    #[inline(always)]
    fn exec_fused(&mut self, f: &FusedOp) -> VmResult<Option<u32>> {
        for l in f.pre.iter() {
            self.burn(*l)?;
        }
        let mut v = match &f.src {
            FuseSrc::Local { slot, line } => {
                self.burn(*line)?;
                let id = self.slots[self.slot_base + *slot as usize];
                if id == usize::MAX {
                    return Err(self.fault(FaultKind::BadValue, *line));
                }
                self.object_value(id, *line)?
            }
            FuseSrc::Global { gidx, line } => {
                self.burn(*line)?;
                let Some(id) = self.globals[*gidx as usize] else {
                    return Err(self.fault(FaultKind::BadValue, *line));
                };
                self.object_value(id, *line)?
            }
            FuseSrc::IncDecLocal { slot, inc, prefix, place_line, line } => {
                let lv = self.local_place(*slot, *place_line)?;
                self.inc_dec_value(&lv, *inc, *prefix, *line)?
            }
            FuseSrc::IncDecGlobal { gidx, inc, prefix, place_line, line } => {
                let lv = self.global_place(*gidx, *place_line)?;
                self.inc_dec_value(&lv, *inc, *prefix, *line)?
            }
            FuseSrc::PortIn { which, cidx, port_line } => {
                self.burn(*port_line)?;
                let port =
                    self.program.consts[*cidx as usize].as_int().unwrap_or(0) as u16;
                let (size, mask) = match which {
                    Builtin::Inb => (1, 0xFF),
                    Builtin::Inw => (2, 0xFFFF),
                    _ => (4, 0xFFFF_FFFF),
                };
                Value::Int(self.host.io_read(port, size) & mask)
            }
            FuseSrc::FieldLocal { slot, fidx, place_line, line } => {
                self.field_local_value(*slot, *fidx, *place_line, *line)?
            }
            FuseSrc::ConstVal { cidx, line } => {
                self.burn(*line)?;
                self.program.consts[*cidx as usize].clone()
            }
            FuseSrc::ConstSeq { cidx, seq } => {
                let seq = &self.program.burn_seqs[*seq as usize];
                for l in seq.iter() {
                    self.burn(*l)?;
                }
                self.program.consts[*cidx as usize].clone()
            }
            FuseSrc::StackTop => self.stack.pop().expect("fused operand"),
        };
        if let Some((fidx, line)) = f.field {
            // `Op::MemberValue`: pick one field out of a struct rvalue.
            let Value::Struct(fields) = v else {
                return Err(self.fault(FaultKind::BadValue, line));
            };
            if fidx == NO_FIELD {
                return Err(self.fault(FaultKind::BadValue, line));
            }
            v = fields
                .get(fidx as usize)
                .cloned()
                .ok_or_else(|| self.fault(FaultKind::BadValue, line))?;
            self.reclaim_struct(fields);
        }
        for stage in f.stage1.iter().chain(f.stage2.iter()) {
            let r = match &stage.rhs {
                FuseRhs::Const { cidx, line } => {
                    self.burn(*line)?;
                    self.program.consts[*cidx as usize].clone()
                }
                FuseRhs::Local { slot, line } => {
                    self.burn(*line)?;
                    let id = self.slots[self.slot_base + *slot as usize];
                    if id == usize::MAX {
                        return Err(self.fault(FaultKind::BadValue, *line));
                    }
                    self.object_value(id, *line)?
                }
                FuseRhs::Global { gidx, line } => {
                    self.burn(*line)?;
                    let Some(id) = self.globals[*gidx as usize] else {
                        return Err(self.fault(FaultKind::BadValue, *line));
                    };
                    self.object_value(id, *line)?
                }
                FuseRhs::FieldLocal { slot, fidx, place_line, line } => {
                    self.burn(*line)?;
                    self.field_local_value(*slot, *fidx, *place_line, *line)?
                }
            };
            v = self.apply_binop(stage.op, v, r, stage.line)?;
        }
        if let Some((kind, line)) = &f.cast {
            v = self.apply_cast(*kind, v, *line)?;
        }
        if f.coerce_bool {
            v = Value::Int(i64::from(v.truthy()));
        }
        match f.end {
            FuseEnd::Push => self.stack.push(v),
            FuseEnd::IfFalse => {
                if !v.truthy() {
                    return Ok(Some(f.target));
                }
            }
            FuseEnd::IfTrue => {
                if v.truthy() {
                    return Ok(Some(f.target));
                }
            }
            FuseEnd::FalseConst => {
                if !v.truthy() {
                    self.stack.push(Value::Int(0));
                    return Ok(Some(f.target));
                }
            }
            FuseEnd::TrueConst => {
                if v.truthy() {
                    self.stack.push(Value::Int(1));
                    return Ok(Some(f.target));
                }
            }
            FuseEnd::StoreLocal { slot, line } => {
                let lv = self.local_place(slot, line)?;
                self.write_place(&lv, v, line)?;
            }
            FuseEnd::StoreGlobal { gidx, line } => {
                let lv = self.global_place(gidx, line)?;
                self.write_place(&lv, v, line)?;
            }
            FuseEnd::StoreField { slot, fidx, line } => {
                self.store_field_local(slot, fidx, line, v)?;
            }
            FuseEnd::DeclScalar { slot, coerce } => {
                let v = apply_coerce(coerce, v);
                let id = self.alloc();
                self.objects[id].data.push(v);
                self.scope_objs.push(id);
                self.slots[self.slot_base + slot as usize] = id;
            }
            FuseEnd::Jump => {
                self.stack.push(v);
                return Ok(Some(f.target));
            }
            FuseEnd::In { which } => {
                let port = v.as_int().unwrap_or(0) as u16;
                let (size, mask) = match which {
                    Builtin::Inb => (1, 0xFF),
                    Builtin::Inw => (2, 0xFFFF),
                    _ => (4, 0xFFFF_FFFF),
                };
                self.stack.push(Value::Int(self.host.io_read(port, size) & mask));
            }
            FuseEnd::OutDyn { which, pop } => {
                let port = v.as_int().unwrap_or(0) as u16;
                let value = self.stack.pop().and_then(|v| v.as_int()).unwrap_or(0);
                let (size, mask) = match which {
                    Builtin::Outb => (1, 0xFF),
                    Builtin::Outw => (2, 0xFFFF),
                    _ => (4, 0xFFFF_FFFF),
                };
                self.host.io_write(port, size, value & mask);
                if !pop {
                    self.stack.push(Value::Int(0));
                }
            }
            FuseEnd::StoreIndexLocal { slot, line } => {
                // The `LoadLocal` index burn, then `IndexPlace` + `Store`
                // semantics with the computed value as the base.
                self.burn(line)?;
                let id = self.slots[self.slot_base + slot as usize];
                if id == usize::MAX {
                    return Err(self.fault(FaultKind::BadValue, line));
                }
                let index = self.object_value(id, line)?;
                let i = index
                    .as_int()
                    .ok_or_else(|| self.fault(FaultKind::BadValue, line))?;
                let place = match v {
                    Value::Ptr(Some(p)) => {
                        let idx = p.idx as i64 + i;
                        if idx < 0 {
                            if idx > -(OOB_SLACK as i64) {
                                Place { obj: ObjId(ABSORB_OBJ), idx: 0 }
                            } else {
                                return Err(self.fault(FaultKind::OutOfBounds, line));
                            }
                        } else {
                            Place { obj: p.obj, idx: idx as usize }
                        }
                    }
                    Value::Ptr(None) => {
                        return Err(self.fault(FaultKind::NullDeref, line))
                    }
                    _ => return Err(self.fault(FaultKind::BadValue, line)),
                };
                let rv = self.stack.pop().expect("indexed store value");
                self.write_place(&Lval::at(place), rv, line)?;
            }
            FuseEnd::PortOut { which, cidx, line, pop } => {
                self.burn(line)?;
                let port =
                    self.program.consts[cidx as usize].as_int().unwrap_or(0) as u16;
                let (size, mask) = match which {
                    Builtin::Outb => (1, 0xFF),
                    Builtin::Outw => (2, 0xFFFF),
                    _ => (4, 0xFFFF_FFFF),
                };
                self.host.io_write(port, size, v.as_int().unwrap_or(0) & mask);
                if !pop {
                    self.stack.push(Value::Int(0));
                }
            }
        }
        Ok(None)
    }

    /// The rvalue of `local.field` — exact replay of the
    /// `PlaceLocal; MemberStep; ReadPlace` sequence (fault order
    /// included), without the three dispatches and the intermediate
    /// struct clone walk.
    #[inline]
    fn field_local_value(
        &self,
        slot: u16,
        fidx: u16,
        place_line: u32,
        line: u32,
    ) -> VmResult<Value> {
        let lv = self.local_place(slot, place_line)?;
        let base = self.read_place(&lv, line)?;
        let Value::Struct(fields) = base else {
            return Err(self.fault(FaultKind::BadValue, line));
        };
        if fidx == NO_FIELD {
            return Err(self.fault(FaultKind::BadValue, line));
        }
        fields
            .get(fidx as usize)
            .cloned()
            .ok_or_else(|| self.fault(FaultKind::BadValue, line))
    }

    /// `Op::Cast` semantics over a popped value.
    #[inline]
    fn apply_cast(&self, kind: CastKind, v: Value, line: u32) -> VmResult<Value> {
        Ok(match (kind, v) {
            (CastKind::Int { signed, bits }, Value::Int(i)) => {
                Value::Int(wrap_int(i, bits, signed))
            }
            (CastKind::Int { .. }, Value::Ptr(Some(p))) => {
                Value::Int((p.obj.0 as i64 + 1) * 0x1_0000 + p.idx as i64)
            }
            (CastKind::Int { .. }, Value::Ptr(None)) => Value::Int(0),
            (CastKind::Int { .. }, Value::Str(_)) => Value::Int(0x5_0000),
            (CastKind::Ptr, Value::Int(0)) => Value::Ptr(None),
            (CastKind::Ptr, Value::Int(i)) => {
                Value::Ptr(Some(Place { obj: ObjId(WILD_OBJ), idx: i as usize }))
            }
            (CastKind::Ptr, v @ (Value::Ptr(_) | Value::Str(_))) => v,
            (CastKind::Void, _) => Value::Int(0),
            (_, v) => {
                let _ = v;
                return Err(self.fault(FaultKind::BadValue, line));
            }
        })
    }

    /// Write `rv` through `local.field` — the `PlaceLocal; MemberStep;
    /// Store; Pop` tail in one step, fault order preserved (MemberStep's
    /// struct read first, then the field write).
    fn store_field_local(
        &mut self,
        slot: u16,
        fidx: u16,
        line: u32,
        rv: Value,
    ) -> VmResult<()> {
        let mut lv = self.local_place(slot, line)?;
        let base = self.read_place(&lv, line)?;
        if !matches!(base, Value::Struct(_)) {
            return Err(self.fault(FaultKind::BadValue, line));
        }
        // Release the base's Rc clone *before* the write: a live extra
        // reference would force `Rc::make_mut` to deep-copy the struct on
        // every single field store.
        drop(base);
        if fidx == NO_FIELD {
            return Err(self.fault(FaultKind::BadValue, line));
        }
        lv.push_field(fidx);
        self.write_place(&lv, rv, line)
    }

    /// `++`/`--` through a place producing the expression's value —
    /// identical semantics to `Op::IncDec`, used by the fused forms.
    fn inc_dec_value(
        &mut self,
        lv: &Lval,
        inc: bool,
        prefix: bool,
        line: u32,
    ) -> VmResult<Value> {
        let old = self.read_place(lv, line)?;
        let new = match &old {
            Value::Int(i) => Value::Int(if inc { i + 1 } else { i - 1 }),
            Value::Ptr(Some(p)) => {
                let idx = if inc { p.idx + 1 } else { p.idx.wrapping_sub(1) };
                Value::Ptr(Some(Place { obj: p.obj, idx }))
            }
            _ => return Err(self.fault(FaultKind::BadValue, line)),
        };
        self.write_place(lv, new.clone(), line)?;
        Ok(if prefix { new } else { old })
    }

    /// `++`/`--` through a place with the result discarded — identical
    /// value/fault semantics to `Op::IncDec` minus the stack traffic.
    fn inc_dec_discard(&mut self, lv: &Lval, inc: bool, line: u32) -> VmResult<()> {
        let old = self.read_place(lv, line)?;
        let new = match &old {
            Value::Int(i) => Value::Int(if inc { i + 1 } else { i - 1 }),
            Value::Ptr(Some(p)) => {
                let idx = if inc { p.idx + 1 } else { p.idx.wrapping_sub(1) };
                Value::Ptr(Some(Place { obj: p.obj, idx }))
            }
            _ => return Err(self.fault(FaultKind::BadValue, line)),
        };
        self.write_place(lv, new, line)
    }

    fn load_object(&mut self, id: usize, line: u32) -> VmResult<()> {
        let v = self.object_value(id, line)?;
        self.stack.push(v);
        Ok(())
    }

    /// An object's rvalue (`Op::LoadLocal` semantics without the push).
    #[inline]
    fn object_value(&self, id: usize, line: u32) -> VmResult<Value> {
        let data = self.obj(Place { obj: ObjId(id), idx: 0 }, line)?;
        // Arrays decay to a pointer to their first element.
        Ok(if data.len() > 1 {
            Value::Ptr(Some(Place { obj: ObjId(id), idx: 0 }))
        } else {
            data[0].clone()
        })
    }

    // ----- builtins (verbatim semantics of `try_builtin`) -----------------

    fn call_builtin(
        &mut self,
        which: Builtin,
        argc: usize,
        line: u32,
    ) -> VmResult<()> {
        let mut vals = std::mem::take(&mut self.scratch);
        vals.clear();
        let base = self.stack.len() - argc;
        vals.extend(self.stack.drain(base..));
        let result = self.run_builtin(which, &vals, line);
        self.scratch = vals;
        let v = result?;
        self.stack.push(v);
        Ok(())
    }

    fn run_builtin(
        &mut self,
        which: Builtin,
        vals: &[Value],
        line: u32,
    ) -> VmResult<Value> {
        let int_arg = |i: usize| -> i64 { vals.get(i).and_then(Value::as_int).unwrap_or(0) };
        let v = match which {
            Builtin::Inb => Value::Int(self.host.io_read(int_arg(0) as u16, 1) & 0xFF),
            Builtin::Inw => Value::Int(self.host.io_read(int_arg(0) as u16, 2) & 0xFFFF),
            Builtin::Inl => {
                Value::Int(self.host.io_read(int_arg(0) as u16, 4) & 0xFFFF_FFFF)
            }
            Builtin::Outb => {
                self.host.io_write(int_arg(1) as u16, 1, int_arg(0) & 0xFF);
                Value::Int(0)
            }
            Builtin::Outw => {
                self.host.io_write(int_arg(1) as u16, 2, int_arg(0) & 0xFFFF);
                Value::Int(0)
            }
            Builtin::Outl => {
                self.host.io_write(int_arg(1) as u16, 4, int_arg(0) & 0xFFFF_FFFF);
                Value::Int(0)
            }
            Builtin::Insw | Builtin::Insb => {
                self.deadline_dispatch_check()?;
                let port = int_arg(0) as u16;
                let count = int_arg(2).max(0) as usize;
                let Some(Value::Ptr(Some(p))) = vals.get(1).cloned() else {
                    return Err(self.fault(FaultKind::NullDeref, line));
                };
                let (size, mask) = if which == Builtin::Insb { (1, 0xFF) } else { (2, 0xFFFF) };
                if self.fuel >= count as u64 && self.block_span_ok(&p, count) {
                    // Block fast path: one bulk host call, then a straight
                    // element copy into the (bounds-checked) destination.
                    // Burn-exact: the per-element loop below would burn one
                    // fuel point per element with no possible fault.
                    let mut buf = std::mem::take(&mut self.io_block);
                    buf.clear();
                    buf.resize(count, 0);
                    self.host.io_read_block(port, size, &mut buf);
                    let data = &mut self.objects[p.obj.0].data;
                    for (slot, w) in data[p.idx..p.idx + count].iter_mut().zip(&buf) {
                        *slot = Value::Int(*w & mask);
                    }
                    self.io_block = buf;
                    self.fuel -= count as u64;
                } else {
                    for i in 0..count {
                        let w = self.host.io_read(port, size) & mask;
                        let lv = Lval::at(Place { obj: p.obj, idx: p.idx + i });
                        self.write_place(&lv, Value::Int(w), line)?;
                        if self.fuel == 0 {
                            return Err(Box::new(RunError::OutOfFuel));
                        }
                        self.fuel -= 1;
                    }
                }
                Value::Int(0)
            }
            Builtin::Outsw | Builtin::Outsb => {
                self.deadline_dispatch_check()?;
                let port = int_arg(0) as u16;
                let count = int_arg(2).max(0) as usize;
                let Some(Value::Ptr(Some(p))) = vals.get(1).cloned() else {
                    return Err(self.fault(FaultKind::NullDeref, line));
                };
                let (size, mask) = if which == Builtin::Outsb { (1, 0xFF) } else { (2, 0xFFFF) };
                if self.fuel >= count as u64 && self.block_span_ok(&p, count) {
                    let mut buf = std::mem::take(&mut self.io_block);
                    buf.clear();
                    let data = &self.objects[p.obj.0].data;
                    buf.extend(
                        data[p.idx..p.idx + count]
                            .iter()
                            .map(|v| v.as_int().unwrap_or(0) & mask),
                    );
                    self.host.io_write_block(port, size, &buf);
                    self.io_block = buf;
                    self.fuel -= count as u64;
                } else {
                    for i in 0..count {
                        let lv = Lval::at(Place { obj: p.obj, idx: p.idx + i });
                        let w = self.read_place(&lv, line)?.as_int().unwrap_or(0);
                        self.host.io_write(port, size, w & mask);
                        if self.fuel == 0 {
                            return Err(Box::new(RunError::OutOfFuel));
                        }
                        self.fuel -= 1;
                    }
                }
                Value::Int(0)
            }
            Builtin::Printk => {
                let msg = self.format_message(vals, line)?;
                self.host.console(&msg);
                Value::Int(0)
            }
            Builtin::Panic => {
                let message = self.format_message(vals, line)?;
                let (file, local) = self.loc(line);
                return Err(Box::new(RunError::Panic { message, file, line: local }));
            }
            Builtin::Udelay | Builtin::Mdelay => {
                self.deadline_dispatch_check()?;
                let n = int_arg(0).max(0) as u64;
                let usec = if which == Builtin::Mdelay { n * 1000 } else { n };
                self.host.delay(usec);
                // Delays burn fuel proportionally — a mutant that delays
                // forever is a hang.
                let cost = usec.max(1);
                if self.fuel < cost {
                    self.fuel = 0;
                    return Err(Box::new(RunError::OutOfFuel));
                }
                self.fuel -= cost;
                Value::Int(0)
            }
            Builtin::Strcmp => {
                // Two literal operands (`dil_eq`'s filename check — the
                // hottest strcmp there is) compare without materialising
                // `String`s; anything pointer-shaped takes the exact
                // `cstr_of` path.
                let ord = match (vals.first(), vals.get(1)) {
                    (Some(Value::Str(a)), Some(Value::Str(b))) => a.cmp(b),
                    _ => {
                        let a = self.cstr_of(vals.first(), line)?;
                        let b = self.cstr_of(vals.get(1), line)?;
                        a.cmp(&b)
                    }
                };
                Value::Int(match ord {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            Builtin::Memset => {
                let Some(Value::Ptr(Some(p))) = vals.first().cloned() else {
                    return Err(self.fault(FaultKind::NullDeref, line));
                };
                let fill = int_arg(1);
                // Element-granular, like the tree-walker.
                let count = int_arg(2).max(0) as usize;
                for i in 0..count {
                    let lv = Lval::at(Place { obj: p.obj, idx: p.idx + i });
                    self.write_place(&lv, Value::Int(fill), line)?;
                }
                Value::Ptr(Some(p))
            }
            Builtin::Memcpy => {
                let Some(Value::Ptr(Some(d))) = vals.first().cloned() else {
                    return Err(self.fault(FaultKind::NullDeref, line));
                };
                let Some(Value::Ptr(Some(s))) = vals.get(1).cloned() else {
                    return Err(self.fault(FaultKind::NullDeref, line));
                };
                let count = int_arg(2).max(0) as usize;
                for i in 0..count {
                    let from = Lval::at(Place { obj: s.obj, idx: s.idx + i });
                    let v = self.read_place(&from, line)?;
                    let to = Lval::at(Place { obj: d.obj, idx: d.idx + i });
                    self.write_place(&to, v, line)?;
                }
                Value::Ptr(Some(d))
            }
        };
        Ok(v)
    }

    /// Whether `count` consecutive elements starting at `p` lie wholly
    /// inside one live plain object — the precondition for the block
    /// builtins' bulk path. Everything else (wild/absorbing pointers,
    /// out-of-bounds slack, dead objects, fuel exhaustion mid-transfer)
    /// takes the per-element loop, which reproduces the tree-walker's
    /// behaviour access by access.
    #[inline]
    fn block_span_ok(&self, p: &Place, count: usize) -> bool {
        match self.objects.get(p.obj.0) {
            Some(o) => {
                o.live && p.idx.checked_add(count).is_some_and(|end| end <= o.data.len())
            }
            None => false,
        }
    }

    fn cstr_of(&self, v: Option<&Value>, line: u32) -> VmResult<String> {
        match v {
            Some(Value::Str(s)) => Ok(s.to_string()),
            Some(Value::Ptr(Some(p))) => {
                let data = self.obj(*p, line)?;
                let mut out = String::new();
                for v in &data[p.idx.min(data.len())..] {
                    match v.as_int() {
                        Some(0) | None => break,
                        Some(c) => out.push((c as u8) as char),
                    }
                }
                Ok(out)
            }
            Some(Value::Ptr(None)) => Err(self.fault(FaultKind::NullDeref, line)),
            _ => Err(self.fault(FaultKind::BadValue, line)),
        }
    }

    /// printf-style formatting for `printk`/`panic`: `%d %u %x %s %c %%`.
    fn format_message(&self, vals: &[Value], line: u32) -> VmResult<String> {
        let fmt = self.cstr_of(vals.first(), line)?;
        let mut out = String::new();
        let mut arg = 1;
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // Skip length modifiers (l, h).
            while matches!(chars.peek(), Some('l') | Some('h')) {
                chars.next();
            }
            match chars.next() {
                Some('%') => out.push('%'),
                Some('d') | Some('i') => {
                    out.push_str(
                        &vals.get(arg).and_then(Value::as_int).unwrap_or(0).to_string(),
                    );
                    arg += 1;
                }
                Some('u') => {
                    let v = vals.get(arg).and_then(Value::as_int).unwrap_or(0);
                    out.push_str(&format!("{}", v as u64 & 0xFFFF_FFFF));
                    arg += 1;
                }
                Some('x') | Some('X') => {
                    let v = vals.get(arg).and_then(Value::as_int).unwrap_or(0);
                    out.push_str(&format!("{:x}", v as u64 & 0xFFFF_FFFF));
                    arg += 1;
                }
                Some('c') => {
                    let v = vals.get(arg).and_then(Value::as_int).unwrap_or(0);
                    out.push((v as u8) as char);
                    arg += 1;
                }
                Some('s') => {
                    let s = self
                        .cstr_of(vals.get(arg), line)
                        .unwrap_or_else(|_| "<bad-str>".into());
                    out.push_str(&s);
                    arg += 1;
                }
                other => {
                    out.push('%');
                    if let Some(o) = other {
                        out.push(o);
                    }
                }
            }
        }
        Ok(out)
    }
}



enum Flow {
    Next,
    Jump(u32),
    Call { fidx: u16 },
    Ret,
}

fn callee_argc(op: &Op) -> usize {
    match op {
        Op::CallUser { argc, .. } => *argc as usize,
        _ => unreachable!("Flow::Call only from CallUser"),
    }
}

/// The lowered form of `coerce_store`: integer targets truncate, pointers
/// flatten to the synthetic address, strings to the string sentinel,
/// everything else passes through.
fn apply_coerce(c: Coerce, v: Value) -> Value {
    match c {
        Coerce::None => v,
        Coerce::Int { signed, bits } => match v {
            Value::Int(i) => Value::Int(wrap_int(i, bits, signed)),
            Value::Ptr(Some(p)) => Value::Int(wrap_int(
                (p.obj.0 as i64 + 1) * 0x1_0000 + p.idx as i64,
                bits,
                signed,
            )),
            Value::Ptr(None) => Value::Int(0),
            Value::Str(_) => Value::Int(wrap_int(0x5_0000, bits, signed)),
            v => v,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, NullHost};
    use crate::{compile, Program};

    fn run_vm(src: &str, entry: &str, args: &[Value]) -> Result<Value, RunError> {
        let p = compile("t.c", src).expect("test program must compile");
        let c = p.to_bytecode();
        let mut host = NullHost::default();
        let mut vm = Vm::new(&c, &mut host, 1_000_000);
        vm.call(entry, args)
    }

    fn run_vm_int(src: &str, entry: &str, args: &[Value]) -> i64 {
        run_vm(src, entry, args).unwrap().as_int().unwrap()
    }

    /// Run a program through both engines and assert every observable —
    /// result, fuel, coverage, console — is identical.
    fn differential(src: &str, entry: &str, args: &[Value], fuel: u64) {
        let p: Program = compile("t.c", src).expect("test program must compile");
        let mut ih = NullHost::default();
        let mut interp = Interpreter::new(&p, &mut ih, fuel);
        let want = interp.call(entry, args);
        let want_fuel = interp.fuel_left();
        let want_cov = interp.coverage().clone();
        drop(interp);

        let c = p.to_bytecode();
        let mut vh = NullHost::default();
        let mut vm = Vm::new(&c, &mut vh, fuel);
        let got = vm.call(entry, args);
        assert_eq!(got, want, "engines disagree on result for {src}");
        assert_eq!(vm.fuel_left(), want_fuel, "fuel burn diverged for {src}");
        assert_eq!(*vm.coverage(), want_cov, "coverage diverged for {src}");
        drop(vm);
        assert_eq!(vh.log, ih.log, "console diverged for {src}");
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }";
        assert_eq!(run_vm_int(src, "fact", &[6.into()]), 720);
        differential(src, "fact", &[6.into()], 1_000_000);
    }

    #[test]
    fn loops_and_compound_assignment() {
        let src =
            "int sum(int n) { int s = 0; int i; for (i = 1; i <= n; i++) s += i; return s; }";
        assert_eq!(run_vm_int(src, "sum", &[10.into()]), 55);
        differential(src, "sum", &[10.into()], 1_000_000);
    }

    #[test]
    fn arrays_pointers_and_structs() {
        let src = "
            struct P_ { int x; int y; };
            typedef struct P_ P;
            int f(void) {
                int a[4];
                int *p = a;
                int i;
                P q;
                for (i = 0; i < 4; i++) a[i] = i * i;
                q.x = p[3];
                q.y = *(a + 2);
                return q.x + q.y;
            }";
        assert_eq!(run_vm_int(src, "f", &[]), 13);
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn switch_fallthrough_and_break() {
        let src = "
            int f(int x) {
                int r = 0;
                switch (x) {
                    case 1: r += 1;
                    case 2: r += 2; break;
                    case 3: r += 4; break;
                    default: r = 100;
                }
                return r;
            }";
        for x in [1i64, 2, 3, 9] {
            differential(src, "f", &[x.into()], 1_000_000);
        }
        assert_eq!(run_vm_int(src, "f", &[1.into()]), 3);
        assert_eq!(run_vm_int(src, "f", &[9.into()]), 100);
    }

    #[test]
    fn globals_and_initializers() {
        let src = "
            int counter = 5;
            unsigned short table[4] = {1, 2, 3, 4};
            int f(void) { counter += table[2]; return counter; }";
        assert_eq!(run_vm_int(src, "f", &[]), 8);
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn faults_match_the_tree_walker() {
        for (src, expect) in [
            (
                "int f(void) { int *p = (int *)0; return *p; }",
                FaultKind::NullDeref,
            ),
            (
                "int f(void) { int *p = (int *)0xdead; return *p; }",
                FaultKind::WildDeref,
            ),
            ("int f(int d) { return 10 / d; }", FaultKind::DivByZero),
            (
                "int f(void) { int a[4]; return a[999999]; }",
                FaultKind::OutOfBounds,
            ),
            ("int f(int n) { return f(n + 1); }", FaultKind::StackOverflow),
        ] {
            let args: &[Value] = if src.contains("int d") || src.contains("int n") {
                &[Value::Int(0)]
            } else {
                &[]
            };
            let e = run_vm(src, "f", args).unwrap_err();
            assert!(
                matches!(&e, RunError::Fault { kind, .. } if *kind == expect),
                "{src}: {e:?}"
            );
            differential(src, "f", args, 1_000_000);
        }
    }

    #[test]
    fn fuel_exhaustion_is_bit_identical() {
        // Sweep fuel budgets across the interesting boundary so the VM
        // provably stops at the same node the tree-walker does.
        let src = "int f(void) { int i; int s = 0; for (i = 0; i < 10; i++) { s += i; } return s; }";
        for fuel in 0..200 {
            differential(src, "f", &[], fuel);
        }
    }

    #[test]
    fn panic_message_and_location_match() {
        let src = "int f(void) {\n  panic(\"bad state %d\", 7);\n  return 0;\n}";
        let e = run_vm(src, "f", &[]).unwrap_err();
        match &e {
            RunError::Panic { message, file, line } => {
                assert_eq!(message, "bad state 7");
                assert_eq!(file, "t.c");
                assert_eq!(*line, 2);
            }
            other => panic!("expected panic, got {other:?}"),
        }
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn printk_and_string_builtins_match() {
        let src = r#"int f(void) {
            printk("ide: %s drive %d status %x", "hda", 1, 0x50);
            return strcmp("abc", "abd");
        }"#;
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn nearby_oob_silent_far_oob_faults() {
        differential(
            "int f(void) { int a[4]; a[9] = 5; return a[9] + 1; }",
            "f",
            &[],
            1_000_000,
        );
    }

    #[test]
    fn pointer_to_int_synthetic_addresses_agree() {
        // The synthetic address leaks object ids; the VM's heap must
        // assign them in exactly the interpreter's order.
        let src = "
            int g1;
            int g2;
            int f(void) {
                int a;
                int b;
                int *p = &b;
                int x = (int)p;
                int *q = &g2;
                return x * 100000 + (int)q;
            }";
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn scope_reuse_preserves_object_id_sequence() {
        // Loop-local declarations release and re-allocate; ids must cycle
        // exactly like the interpreter's free list.
        let src = "
            int f(void) {
                int i;
                int total = 0;
                for (i = 0; i < 100; i++) { int tmp = i; int *p = &tmp; total += (int)p; }
                return total;
            }";
        differential(src, "f", &[], 10_000_000);
    }

    #[test]
    fn dead_object_access_is_use_after_scope() {
        let src = "
            int f(void) {
                int *p = (int *)0;
                if (1) { int x = 3; p = &x; }
                return *p;
            }";
        let e = run_vm(src, "f", &[]).unwrap_err();
        assert!(
            matches!(&e, RunError::Fault { kind: FaultKind::UseAfterScope, .. }),
            "{e:?}"
        );
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn do_while_ternary_comma_incdec() {
        let src = "
            int f(int a) {
                int n = 0;
                do { n++; } while (n < a);
                return a ? (a = a + n, a) : --n;
            }";
        for a in [0i64, 1, 5] {
            differential(src, "f", &[a.into()], 1_000_000);
        }
    }

    #[test]
    fn function_designator_address_matches() {
        let src = "int g(void) { return 1; }\nint f(void) { int x = g; return x; }";
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn port_io_reaches_host_in_linux_argument_order() {
        struct Probe {
            reads: Vec<u16>,
            writes: Vec<(u16, i64)>,
        }
        impl Host for Probe {
            fn io_read(&mut self, port: u16, _s: u8) -> i64 {
                self.reads.push(port);
                0x42
            }
            fn io_write(&mut self, port: u16, _s: u8, v: i64) {
                self.writes.push((port, v));
            }
            fn console(&mut self, _m: &str) {}
        }
        let p = compile("t.c", "int f(void) { outb(0xA5, 0x1F7); return inb(0x1F7); }")
            .unwrap();
        let c = p.to_bytecode();
        let mut host = Probe { reads: vec![], writes: vec![] };
        let mut vm = Vm::new(&c, &mut host, 10_000);
        let r = vm.call("f", &[]).unwrap();
        assert_eq!(r.as_int(), Some(0x42));
        drop(vm);
        assert_eq!(host.writes, vec![(0x1F7, 0xA5)]);
        assert_eq!(host.reads, vec![0x1F7]);
    }

    #[test]
    fn insw_and_delays_burn_fuel_identically() {
        let src = "
            unsigned short buf[8];
            int f(void) { insw(0x1F0, buf, 8); udelay(40); return buf[0]; }";
        for fuel in [0u64, 5, 20, 45, 60, 100, 10_000] {
            differential(src, "f", &[], fuel);
        }
    }

    #[test]
    fn coverage_tracks_executed_lines() {
        let src = "int f(int x) {\n  if (x) {\n    return 1;\n  }\n  return 2;\n}";
        let p = compile("t.c", src).unwrap();
        let c = p.to_bytecode();
        let mut host = NullHost::default();
        let mut vm = Vm::new(&c, &mut host, 10_000);
        vm.call("f", &[0.into()]).unwrap();
        let fid = p.unit.file_id("t.c").unwrap();
        let packed = |l: u32| crate::token::pack_line(fid, l);
        assert!(vm.line_covered(packed(2)), "condition line executed");
        assert!(!vm.line_covered(packed(3)), "then-branch not executed");
        assert!(vm.line_covered(packed(5)), "fall-through return executed");
    }

    #[test]
    fn dil_assert_style_panic_via_macros() {
        let src = "
#define dil_assert(expr) ((expr) ? 0 : panic(\"Devil assertion failed in file %s line %d\", __FILE__, __LINE__))
int f(int x) { dil_assert(x == 1); return x; }";
        differential(src, "f", &[1.into()], 1_000_000);
        differential(src, "f", &[2.into()], 1_000_000);
    }

    #[test]
    fn global_init_fault_remaps_to_declaration_line() {
        let src = "int x = 1 / 0;\nint f(void) { return x; }";
        let e = run_vm(src, "f", &[]).unwrap_err();
        assert!(
            matches!(&e, RunError::Fault { kind: FaultKind::DivByZero, line: 1, .. }),
            "{e:?}"
        );
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn struct_copy_is_by_value() {
        let src = "
            struct P_ { int x; };
            typedef struct P_ P;
            int f(void) { P a; P b; a.x = 1; b = a; b.x = 9; return a.x; }";
        assert_eq!(run_vm_int(src, "f", &[]), 1);
        differential(src, "f", &[], 1_000_000);
    }

    #[test]
    fn deep_member_chains_spill_identically() {
        // A checker-legal member chain deeper than MAX_FIELD_DEPTH must
        // spill to the heap and keep matching the oracle, not panic.
        let mut src = String::from("struct A0_ { int v; };\n");
        for i in 1..=14 {
            src += &format!("struct A{i}_ {{ struct A{}_ f{i}; }};\n", i - 1);
        }
        let chain: String =
            (1..=14).rev().map(|i| format!("f{i}.")).collect::<Vec<_>>().join("");
        src += &format!(
            "int f(void) {{ struct A14_ x; x.{chain}v = 7; return x.{chain}v + 1; }}"
        );
        assert_eq!(run_vm_int(&src, "f", &[]), 8);
        differential(&src, "f", &[], 1_000_000);
    }

    #[test]
    fn typed_stores_wrap_like_c() {
        let src = "
            typedef unsigned char u8;
            typedef signed char s8;
            int f(void) { u8 x = 300; s8 y = (s8)0xFB; return x * 1000 + y; }";
        assert_eq!(run_vm_int(src, "f", &[]), 44_000 - 5);
        differential(src, "f", &[], 1_000_000);
    }
}
