//! The type checker — `minic`'s "compile time".
//!
//! Reproduces the error discipline of a Linux kernel build (gcc with
//! warnings promoted to errors) on the supported subset:
//!
//! * undeclared identifiers and implicitly declared functions are errors;
//! * struct types are *nominal* — mixing two different struct types, or a
//!   struct and an integer, is an error (this is exactly the mechanism the
//!   Devil debug stubs exploit, §2.3 of the paper);
//! * pointers and integers do not mix implicitly (explicit casts are fine);
//! * calls are checked for arity and per-argument type;
//! * using a function name as a value, calling a non-function, assigning to
//!   a non-lvalue or to a `const`, and binary operators on structs are all
//!   errors.

use crate::ast::*;
use crate::error::{CError, CPhase};
use crate::types::{CType, StructTable};
use std::collections::{HashMap, HashSet};

/// A function signature (user-defined or builtin).
#[derive(Debug, Clone)]
pub struct Sig {
    /// Return type.
    pub ret: CType,
    /// Fixed parameter types.
    pub params: Vec<CType>,
    /// Accepts extra arguments after the fixed ones.
    pub varargs: bool,
}

/// The kernel-environment builtins available to drivers without
/// declaration, mirroring what `<asm/io.h>` + `<linux/kernel.h>` provide.
pub fn builtin_signatures() -> HashMap<String, Sig> {
    let u8t = CType::Int { signed: false, bits: 8 };
    let u16t = CType::Int { signed: false, bits: 16 };
    let u32t = CType::Int { signed: false, bits: 32 };
    let intt = CType::int();
    let cstr = CType::Ptr(Box::new(CType::Int { signed: true, bits: 8 }));
    let vptr = CType::Ptr(Box::new(CType::Void));
    let mut m = HashMap::new();
    let mut def = |name: &str, ret: CType, params: Vec<CType>, varargs: bool| {
        m.insert(name.to_string(), Sig { ret, params, varargs });
    };
    def("inb", u8t.clone(), vec![u16t.clone()], false);
    def("inw", u16t.clone(), vec![u16t.clone()], false);
    def("inl", u32t.clone(), vec![u16t.clone()], false);
    // Linux argument order: value first, then port.
    def("outb", CType::Void, vec![u8t.clone(), u16t.clone()], false);
    def("outw", CType::Void, vec![u16t.clone(), u16t.clone()], false);
    def("outl", CType::Void, vec![u32t.clone(), u16t.clone()], false);
    def("insb", CType::Void, vec![u16t.clone(), vptr.clone(), intt.clone()], false);
    def("insw", CType::Void, vec![u16t.clone(), vptr.clone(), intt.clone()], false);
    def("outsb", CType::Void, vec![u16t.clone(), vptr.clone(), intt.clone()], false);
    def("outsw", CType::Void, vec![u16t.clone(), vptr.clone(), intt.clone()], false);
    def("printk", intt.clone(), vec![cstr.clone()], true);
    def("panic", intt.clone(), vec![cstr.clone()], true);
    def("udelay", CType::Void, vec![u32t.clone()], false);
    def("mdelay", CType::Void, vec![u32t.clone()], false);
    def("strcmp", intt.clone(), vec![cstr.clone(), cstr.clone()], false);
    def("memset", vptr.clone(), vec![vptr.clone(), intt.clone(), u32t.clone()], false);
    def("memcpy", vptr.clone(), vec![vptr.clone(), vptr.clone(), u32t.clone()], false);
    m
}

/// Type-check a unit.
///
/// # Errors
///
/// Returns the first violation (a kernel build would report them all, but
/// one is enough to classify a mutant as compile-time detected).
pub fn check(unit: &Unit) -> Result<StructTable, CError> {
    let mut cx = Checker {
        structs: &unit.structs,
        funcs: builtin_signatures(),
        defined: HashSet::new(),
        globals: HashMap::new(),
        scopes: Vec::new(),
        current_ret: CType::Void,
        loop_depth: 0,
        switch_depth: 0,
    };
    // Pass 1: collect signatures and globals.
    for item in &unit.items {
        match item {
            Item::Proto(p) => {
                let sig = Sig { ret: p.ret.clone(), params: p.params.clone(), varargs: p.varargs };
                if let Some(prev) = cx.funcs.get(&p.name) {
                    if prev.params.len() != sig.params.len() || prev.ret != sig.ret {
                        return Err(err(p.line, format!("conflicting declaration of `{}`", p.name)));
                    }
                }
                cx.funcs.insert(p.name.clone(), sig);
            }
            Item::Func(f) => {
                let sig = Sig {
                    ret: f.ret.clone(),
                    params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                    varargs: false,
                };
                if !cx.defined.insert(f.name.clone()) {
                    return Err(err(f.line, format!("redefinition of function `{}`", f.name)));
                }
                if cx.globals.contains_key(&f.name) {
                    return Err(err(
                        f.line,
                        format!("`{}` redeclared as a different kind of symbol", f.name),
                    ));
                }
                if let Some(prev) = cx.funcs.get(&f.name) {
                    if prev.params.len() != sig.params.len() || prev.ret != sig.ret {
                        return Err(err(
                            f.line,
                            format!("definition of `{}` conflicts with its declaration", f.name),
                        ));
                    }
                }
                cx.funcs.insert(f.name.clone(), sig);
            }
            Item::Global(g) => {
                if cx.globals.insert(g.name.clone(), (g.ty.clone(), g.is_const)).is_some() {
                    return Err(err(g.line, format!("redefinition of `{}`", g.name)));
                }
                if cx.defined.contains(&g.name) || cx.funcs.contains_key(&g.name) {
                    return Err(err(
                        g.line,
                        format!("`{}` redeclared as a different kind of symbol", g.name),
                    ));
                }
                cx.complete_type(&g.ty, g.line)?;
            }
        }
    }
    // Pass 2: check global initialisers.
    for g in unit.globals() {
        if let Some(init) = &g.init {
            cx.check_init(&g.ty, init, g.line)?;
            cx.require_const_init(init, g.line)?;
        }
    }
    // Pass 3: check function bodies.
    for f in unit.functions() {
        cx.current_ret = f.ret.clone();
        cx.scopes.clear();
        cx.scopes.push(HashMap::new());
        for (name, ty) in &f.params {
            cx.complete_type(ty, f.line)?;
            cx.scopes
                .last_mut()
                .expect("scope pushed")
                .insert(name.clone(), ty.clone());
        }
        cx.check_block(&f.body)?;
        cx.scopes.pop();
    }
    Ok(unit.structs.clone())
}

fn err(line: u32, msg: impl Into<String>) -> CError {
    // `line` is a packed (file_id, line) pair; the caller re-stamps the
    // file name via `Checker::err` when it can. This fallback keeps the
    // local line readable.
    let (_, local) = crate::token::unpack_line(line);
    CError::new(CPhase::Check, "<unit>", local, msg)
}

struct Checker<'u> {
    structs: &'u StructTable,
    funcs: HashMap<String, Sig>,
    defined: HashSet<String>,
    globals: HashMap<String, (CType, bool)>,
    scopes: Vec<HashMap<String, CType>>,
    current_ret: CType,
    loop_depth: u32,
    switch_depth: u32,
}

#[derive(Debug, Clone)]
struct Typed {
    ty: CType,
    lvalue: bool,
    constant: bool,
}

impl Typed {
    fn rvalue(ty: CType) -> Typed {
        Typed { ty, lvalue: false, constant: false }
    }

    fn lvalue(ty: CType) -> Typed {
        Typed { ty, lvalue: true, constant: false }
    }
}

impl<'u> Checker<'u> {
    fn complete_type(&self, ty: &CType, line: u32) -> Result<(), CError> {
        match ty {
            CType::Struct(id) => {
                if self.structs.get(*id).fields.is_empty() {
                    return Err(err(
                        line,
                        format!("storage of incomplete type `struct {}`", self.structs.get(*id).name),
                    ));
                }
                Ok(())
            }
            CType::Array(t, n) => {
                if *n == 0 {
                    return Err(err(line, "zero-length array"));
                }
                self.complete_type(t, line)
            }
            CType::Void => Err(err(line, "variable has type void")),
            _ => Ok(()),
        }
    }

    fn lookup(&self, name: &str) -> Option<(CType, bool)> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some((t.clone(), false));
            }
        }
        self.globals.get(name).cloned()
    }

    fn display(&self, t: &CType) -> String {
        t.display(self.structs).to_string()
    }

    // ----- statements -------------------------------------------------------

    fn check_block(&mut self, b: &Block) -> Result<(), CError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        match s {
            Stmt::Decl { name, ty, init, line } => {
                self.complete_type(ty, *line)?;
                if self
                    .scopes
                    .last()
                    .expect("inside a scope")
                    .contains_key(name)
                {
                    return Err(err(*line, format!("redeclaration of `{name}`")));
                }
                if let Some(init) = init {
                    self.check_init(ty, init, *line)?;
                }
                self.scopes
                    .last_mut()
                    .expect("inside a scope")
                    .insert(name.clone(), ty.clone());
                Ok(())
            }
            Stmt::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.require_scalar(cond)?;
                self.check_block(then_blk)?;
                if let Some(eb) = else_blk {
                    self.check_block(eb)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.require_scalar(cond)?;
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::DoWhile { body, cond } => {
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                r?;
                self.require_scalar(cond)
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(c) = cond {
                    self.require_scalar(c)?;
                }
                if let Some(st) = step {
                    self.check_expr(st)?;
                }
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            Stmt::Switch { expr, arms, line } => {
                let t = self.check_expr(expr)?;
                if !t.ty.is_integer() {
                    return Err(err(
                        *line,
                        format!("switch quantity is not an integer ({})", self.display(&t.ty)),
                    ));
                }
                let mut seen = HashSet::new();
                for arm in arms {
                    for l in &arm.labels {
                        if !seen.insert(*l) {
                            return Err(err(*line, "duplicate case label in switch"));
                        }
                    }
                }
                self.switch_depth += 1;
                for arm in arms {
                    self.scopes.push(HashMap::new());
                    for st in &arm.stmts {
                        self.check_stmt(st)?;
                    }
                    self.scopes.pop();
                }
                self.switch_depth -= 1;
                Ok(())
            }
            Stmt::Return(e, line) => match (e, self.current_ret.clone()) {
                (None, CType::Void) => Ok(()),
                (None, t) => Err(err(
                    *line,
                    format!("return with no value in function returning {}", self.display(&t)),
                )),
                (Some(e), ret) => {
                    let t = self.check_expr(e)?;
                    if ret == CType::Void {
                        return Err(err(*line, "return with a value in void function"));
                    }
                    if !ret.accepts(&t.ty) {
                        return Err(err(
                            *line,
                            format!(
                                "incompatible return type: expected {}, got {}",
                                self.display(&ret),
                                self.display(&t.ty)
                            ),
                        ));
                    }
                    Ok(())
                }
            },
            Stmt::Break(line) => {
                if self.loop_depth == 0 && self.switch_depth == 0 {
                    return Err(err(*line, "`break` outside loop or switch"));
                }
                Ok(())
            }
            Stmt::Continue(line) => {
                if self.loop_depth == 0 {
                    return Err(err(*line, "`continue` outside loop"));
                }
                Ok(())
            }
            Stmt::Block(b) => self.check_block(b),
            Stmt::Empty => Ok(()),
        }
    }

    fn check_init(&mut self, ty: &CType, init: &Init, line: u32) -> Result<(), CError> {
        match (ty, init) {
            (CType::Array(elem, n), Init::List(items)) => {
                if items.len() > *n {
                    return Err(err(line, "too many initialisers for array"));
                }
                for it in items {
                    let t = self.check_expr(it)?;
                    if !elem.accepts(&t.ty) {
                        return Err(err(
                            line,
                            format!(
                                "array initialiser type {} does not match element type {}",
                                self.display(&t.ty),
                                self.display(elem)
                            ),
                        ));
                    }
                }
                Ok(())
            }
            (CType::Struct(id), Init::List(items)) => {
                let fields = self.structs.get(*id).fields.clone();
                if items.len() > fields.len() {
                    return Err(err(line, "too many initialisers for struct"));
                }
                for (it, (fname, fty)) in items.iter().zip(fields.iter()) {
                    let t = self.check_expr(it)?;
                    if !fty.accepts(&t.ty) {
                        return Err(err(
                            line,
                            format!(
                                "initialiser for field `{fname}` has type {}, expected {}",
                                self.display(&t.ty),
                                self.display(fty)
                            ),
                        ));
                    }
                }
                Ok(())
            }
            (CType::Array(_, _) | CType::Struct(_), Init::Expr(_)) => {
                Err(err(line, "aggregate needs a brace-enclosed initialiser"))
            }
            (scalar, Init::Expr(e)) => {
                let t = self.check_expr(e)?;
                if !scalar.accepts(&t.ty) {
                    return Err(err(
                        line,
                        format!(
                            "initialising {} with incompatible type {}",
                            self.display(scalar),
                            self.display(&t.ty)
                        ),
                    ));
                }
                Ok(())
            }
            (_, Init::List(_)) => Err(err(line, "scalar initialised with a brace list")),
        }
    }

    fn require_const_init(&self, init: &Init, line: u32) -> Result<(), CError> {
        let ok = match init {
            Init::Expr(e) => is_const_expr(e),
            Init::List(items) => items.iter().all(is_const_expr),
        };
        if ok {
            Ok(())
        } else {
            Err(err(line, "initialiser element is not a compile-time constant"))
        }
    }

    fn require_scalar(&mut self, e: &Expr) -> Result<(), CError> {
        let t = self.check_expr(e)?;
        if t.ty.is_integer() || t.ty.is_pointer_like() {
            Ok(())
        } else {
            Err(err(
                e.line(),
                format!("used {} value where a scalar is required", self.display(&t.ty)),
            ))
        }
    }

    // ----- expressions -------------------------------------------------------

    fn check_expr(&mut self, e: &Expr) -> Result<Typed, CError> {
        match e {
            Expr::IntLit { .. } | Expr::CharLit { .. } => Ok(Typed::rvalue(CType::int())),
            Expr::StrLit { .. } => Ok(Typed::rvalue(CType::Ptr(Box::new(CType::Int {
                signed: true,
                bits: 8,
            })))),
            Expr::Ident { name, line } => {
                if let Some((ty, is_const)) = self.lookup(name) {
                    return Ok(Typed { ty, lvalue: true, constant: is_const });
                }
                if self.funcs.contains_key(name) {
                    // A function designator decays to a pointer; using it
                    // as a value drew only a warning from the paper's gcc.
                    return Ok(Typed::rvalue(CType::Ptr(Box::new(CType::Void))));
                }
                Err(err(*line, format!("`{name}` undeclared")))
            }
            Expr::Unary { op, expr, line } => {
                let t = self.check_expr(expr)?;
                match op {
                    UnOp::Neg | UnOp::Plus | UnOp::BitNot => {
                        if !t.ty.is_integer() {
                            return Err(err(
                                *line,
                                format!("invalid operand type {} to unary operator", self.display(&t.ty)),
                            ));
                        }
                        Ok(Typed::rvalue(CType::int()))
                    }
                    UnOp::Not => {
                        if t.ty.is_integer() || t.ty.is_pointer_like() {
                            Ok(Typed::rvalue(CType::int()))
                        } else {
                            Err(err(*line, "invalid operand to `!`"))
                        }
                    }
                    UnOp::Deref => match t.ty.pointee() {
                        Some(p) => Ok(Typed::lvalue(p.clone())),
                        None => Err(err(
                            *line,
                            format!("cannot dereference non-pointer type {}", self.display(&t.ty)),
                        )),
                    },
                    UnOp::AddrOf => {
                        if !t.lvalue {
                            return Err(err(*line, "cannot take the address of an rvalue"));
                        }
                        Ok(Typed::rvalue(CType::Ptr(Box::new(t.ty))))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, line } => {
                let l = self.check_expr(lhs)?;
                let r = self.check_expr(rhs)?;
                self.check_binop(*op, &l.ty, &r.ty, *line)
            }
            Expr::Assign { op, lhs, rhs, line } => {
                let l = self.check_expr(lhs)?;
                if !l.lvalue {
                    return Err(err(*line, "assignment target is not an lvalue"));
                }
                if l.constant {
                    return Err(err(*line, "assignment to const-qualified object"));
                }
                if matches!(l.ty, CType::Array(_, _)) {
                    return Err(err(*line, "cannot assign to an array"));
                }
                let r = self.check_expr(rhs)?;
                if let Some(op) = op {
                    // Compound assignment: integer (or pointer +=/-= int).
                    let ok = (l.ty.is_integer() && r.ty.is_integer())
                        || (matches!(l.ty, CType::Ptr(_))
                            && matches!(op, BinOp::Add | BinOp::Sub)
                            && r.ty.is_integer());
                    if !ok {
                        return Err(err(
                            *line,
                            format!(
                                "invalid operands to compound assignment ({} and {})",
                                self.display(&l.ty),
                                self.display(&r.ty)
                            ),
                        ));
                    }
                } else if !l.ty.accepts(&r.ty) {
                    return Err(err(
                        *line,
                        format!(
                            "incompatible types in assignment ({} from {})",
                            self.display(&l.ty),
                            self.display(&r.ty)
                        ),
                    ));
                }
                Ok(Typed::rvalue(l.ty))
            }
            Expr::Cond { cond, then_e, else_e, line } => {
                self.require_scalar(cond)?;
                let a = self.check_expr(then_e)?;
                let b = self.check_expr(else_e)?;
                if a.ty.is_integer() && b.ty.is_integer() {
                    Ok(Typed::rvalue(CType::int()))
                } else if a.ty.accepts(&b.ty) {
                    Ok(Typed::rvalue(a.ty))
                } else if b.ty.accepts(&a.ty) {
                    Ok(Typed::rvalue(b.ty))
                } else {
                    Err(err(
                        *line,
                        format!(
                            "incompatible branch types in `?:` ({} vs {})",
                            self.display(&a.ty),
                            self.display(&b.ty)
                        ),
                    ))
                }
            }
            Expr::Call { callee, args, line } => {
                let Expr::Ident { name, .. } = callee.as_ref() else {
                    // Calling a literal or computed value: exactly the
                    // macro-expansion artefact gcc flags.
                    return Err(err(*line, "called object is not a function"));
                };
                if self.lookup(name).is_some() {
                    return Err(err(*line, format!("called object `{name}` is not a function")));
                }
                let Some(sig) = self.funcs.get(name).cloned() else {
                    return Err(err(*line, format!("implicit declaration of function `{name}`")));
                };
                if args.len() < sig.params.len() || (!sig.varargs && args.len() > sig.params.len())
                {
                    return Err(err(
                        *line,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (i, a) in args.iter().enumerate() {
                    let t = self.check_expr(a)?;
                    if let Some(want) = sig.params.get(i) {
                        if !want.accepts(&t.ty) {
                            return Err(err(
                                *line,
                                format!(
                                    "argument {} of `{name}`: expected {}, got {}",
                                    i + 1,
                                    self.display(want),
                                    self.display(&t.ty)
                                ),
                            ));
                        }
                    }
                }
                Ok(Typed::rvalue(sig.ret))
            }
            Expr::Index { base, index, line } => {
                let b = self.check_expr(base)?;
                let i = self.check_expr(index)?;
                if !i.ty.is_integer() {
                    return Err(err(*line, "array subscript is not an integer"));
                }
                match b.ty.pointee() {
                    Some(p) => Ok(Typed::lvalue(p.clone())),
                    None => Err(err(
                        *line,
                        format!("subscripted value ({}) is not an array or pointer", self.display(&b.ty)),
                    )),
                }
            }
            Expr::Member { base, field, arrow, line } => {
                let b = self.check_expr(base)?;
                let sid = if *arrow {
                    match b.ty.pointee() {
                        Some(CType::Struct(id)) => *id,
                        _ => {
                            return Err(err(
                                *line,
                                format!("`->` on non-pointer-to-struct ({})", self.display(&b.ty)),
                            ));
                        }
                    }
                } else {
                    match b.ty {
                        CType::Struct(id) => id,
                        _ => {
                            return Err(err(
                                *line,
                                format!(
                                    "request for member `{field}` in non-struct ({})",
                                    self.display(&b.ty)
                                ),
                            ));
                        }
                    }
                };
                let def = self.structs.get(sid);
                match def.field_index(field) {
                    Some(i) => Ok(Typed {
                        ty: def.fields[i].1.clone(),
                        lvalue: true,
                        constant: b.constant,
                    }),
                    None => Err(err(
                        *line,
                        format!("no member `{field}` in struct {}", def.name),
                    )),
                }
            }
            Expr::Cast { ty, expr, line } => {
                let t = self.check_expr(expr)?;
                let ok = match (ty, &t.ty) {
                    (CType::Int { .. }, f) if f.is_integer() || f.is_pointer_like() => true,
                    (CType::Ptr(_), f) if f.is_integer() || f.is_pointer_like() => true,
                    (CType::Struct(a), CType::Struct(b)) => a == b,
                    (CType::Void, _) => true,
                    _ => false,
                };
                if !ok {
                    return Err(err(
                        *line,
                        format!(
                            "invalid cast from {} to {}",
                            self.display(&t.ty),
                            self.display(ty)
                        ),
                    ));
                }
                Ok(Typed::rvalue(ty.clone()))
            }
            Expr::IncDec { expr, line, .. } => {
                let t = self.check_expr(expr)?;
                if !t.lvalue {
                    return Err(err(*line, "increment/decrement target is not an lvalue"));
                }
                if t.constant {
                    return Err(err(*line, "increment/decrement of const object"));
                }
                if !(t.ty.is_integer() || matches!(t.ty, CType::Ptr(_))) {
                    return Err(err(*line, "invalid operand to increment/decrement"));
                }
                Ok(Typed::rvalue(t.ty))
            }
            Expr::Comma { lhs, rhs } => {
                self.check_expr(lhs)?;
                let r = self.check_expr(rhs)?;
                Ok(Typed::rvalue(r.ty))
            }
            Expr::SizeofType { .. } => Ok(Typed::rvalue(CType::int())),
        }
    }

    fn check_binop(&self, op: BinOp, l: &CType, r: &CType, line: u32) -> Result<Typed, CError> {
        use BinOp::*;
        if matches!(l, CType::Struct(_)) || matches!(r, CType::Struct(_)) {
            return Err(err(
                line,
                format!(
                    "invalid operands to binary operator ({} and {})",
                    self.display(l),
                    self.display(r)
                ),
            ));
        }
        match op {
            Add => match (l.is_pointer_like(), r.is_pointer_like()) {
                (false, false) if l.is_integer() && r.is_integer() => {
                    Ok(Typed::rvalue(CType::int()))
                }
                (true, false) if r.is_integer() => Ok(Typed::rvalue(decay(l))),
                (false, true) if l.is_integer() => Ok(Typed::rvalue(decay(r))),
                _ => Err(err(line, "invalid operands to `+`")),
            },
            Sub => match (l.is_pointer_like(), r.is_pointer_like()) {
                (false, false) if l.is_integer() && r.is_integer() => {
                    Ok(Typed::rvalue(CType::int()))
                }
                (true, false) if r.is_integer() => Ok(Typed::rvalue(decay(l))),
                (true, true) => Ok(Typed::rvalue(CType::int())),
                _ => Err(err(line, "invalid operands to `-`")),
            },
            Mul | Div | Rem | Shl | Shr | BitAnd | BitOr | BitXor => {
                if l.is_integer() && r.is_integer() {
                    Ok(Typed::rvalue(CType::int()))
                } else {
                    Err(err(
                        line,
                        format!(
                            "invalid operands to arithmetic operator ({} and {})",
                            self.display(l),
                            self.display(r)
                        ),
                    ))
                }
            }
            Eq | Ne | Lt | Gt | Le | Ge => {
                // Pointer/integer comparisons warned but compiled in 2001.
                let scalar = |t: &CType| t.is_integer() || t.is_pointer_like();
                if scalar(l) && scalar(r) {
                    Ok(Typed::rvalue(CType::int()))
                } else {
                    Err(err(
                        line,
                        format!(
                            "comparison between incompatible types ({} and {})",
                            self.display(l),
                            self.display(r)
                        ),
                    ))
                }
            }
            LogAnd | LogOr => {
                let scalar = |t: &CType| t.is_integer() || t.is_pointer_like();
                if scalar(l) && scalar(r) {
                    Ok(Typed::rvalue(CType::int()))
                } else {
                    Err(err(line, "invalid operands to logical operator"))
                }
            }
        }
    }
}

fn decay(t: &CType) -> CType {
    match t {
        CType::Array(e, _) => CType::Ptr(e.clone()),
        other => other.clone(),
    }
}

fn is_const_expr(e: &Expr) -> bool {
    match e {
        Expr::IntLit { .. } | Expr::CharLit { .. } | Expr::StrLit { .. } => true,
        Expr::Unary { op: UnOp::Neg | UnOp::Plus | UnOp::BitNot, expr, .. } => is_const_expr(expr),
        Expr::Binary { lhs, rhs, .. } => is_const_expr(lhs) && is_const_expr(rhs),
        Expr::Cast { expr, .. } => is_const_expr(expr),
        Expr::SizeofType { .. } => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::error::CPhase;
    use crate::{compile, compile_with_includes};

    fn err_of(src: &str) -> String {
        let e = compile("t.c", src).unwrap_err();
        assert_eq!(e.phase, CPhase::Check, "{e}");
        e.message
    }

    const PRELUDE: &str = "typedef unsigned char u8;\ntypedef unsigned short u16;\ntypedef unsigned int u32;\n";

    #[test]
    fn accepts_plain_driver_code() {
        let src = format!(
            "{PRELUDE}
             u8 status(void) {{ return inb(0x1F7); }}
             void cmd(u8 c) {{ outb(c, 0x1F7); }}
             int wait_ready(void) {{
               int t = 10000;
               while (t-- > 0) {{
                 if ((status() & 0x80) == 0) return 1;
               }}
               return 0;
             }}"
        );
        assert!(compile("t.c", &src).is_ok());
    }

    #[test]
    fn undeclared_identifier() {
        assert!(err_of("int f(void) { return undeclared_thing; }").contains("undeclared"));
    }

    #[test]
    fn implicit_function_declaration() {
        assert!(err_of("int f(void) { return g(); }").contains("implicit declaration"));
    }

    #[test]
    fn distinct_structs_do_not_mix() {
        let msg = err_of(
            "struct A_ { int x; }; struct B_ { int x; };
             typedef struct A_ A; typedef struct B_ B;
             void g(A a);
             int f(void) { B b; b.x = 1; g(b); return 0; }",
        );
        assert!(msg.contains("expected struct A_"), "{msg}");
    }

    #[test]
    fn struct_to_int_is_error() {
        let msg = err_of(
            "struct S_ { int x; }; typedef struct S_ S;
             int f(void) { S s; s.x = 0; return s; }",
        );
        assert!(msg.contains("incompatible return type"), "{msg}");
    }

    #[test]
    fn binary_op_on_struct_is_error() {
        let msg = err_of(
            "struct S_ { int x; }; typedef struct S_ S;
             int f(void) { S a; S b; a.x = 0; b.x = 0; return a == b; }",
        );
        assert!(msg.contains("invalid operands"), "{msg}");
    }

    #[test]
    fn pointer_integer_mixing_warns_but_compiles() {
        // The paper's gcc (2001, no -Werror) only warned here; the build
        // proceeded — so this must NOT count as compile-time detection.
        assert!(compile("t.c", "int f(int *p) { int x; x = p; return x; }").is_ok());
    }

    #[test]
    fn explicit_casts_are_fine() {
        assert!(compile("t.c", "int f(int *p) { return (int)p; }").is_ok());
    }

    #[test]
    fn function_as_value_compiles_like_2001_gcc() {
        // A function designator decays to a pointer; passing or storing it
        // as an integer warned but compiled.
        assert!(compile("t.c", "int g(void) { return 1; }\nint f(void) { int x = g; return x; }")
            .is_ok());
        // Multiplicative/bitwise arithmetic on it is still a hard error.
        let msg = err_of("int g(void) { return 1; }\nint f(void) { return g * 2; }");
        assert!(msg.contains("invalid operands"), "{msg}");
    }

    #[test]
    fn calling_non_function_is_error() {
        let msg = err_of("int f(int x) { return x(3); }");
        assert!(msg.contains("not a function"), "{msg}");
        let msg = err_of("int f(int x) { return 0x23c(3); }");
        assert!(msg.contains("not a function"), "{msg}");
    }

    #[test]
    fn arity_is_checked() {
        let msg = err_of("int g(int a, int b) { return a + b; }\nint f(void) { return g(1); }");
        assert!(msg.contains("expects 2"), "{msg}");
    }

    #[test]
    fn argument_types_are_checked() {
        let msg = err_of(
            "struct S_ { int x; }; typedef struct S_ S;
             int g(int a) { return a; }
             int f(void) { S s; s.x = 0; return g(s); }",
        );
        assert!(msg.contains("argument 1"), "{msg}");
    }

    #[test]
    fn builtins_are_known_and_typed() {
        assert!(compile("t.c", "int f(void) { return inb(0x1F7) + inw(0x1F0); }").is_ok());
        let msg = err_of(
            "struct S_ { int x; }; typedef struct S_ S;
             void f(void) { S s; s.x = 0; outb(s, 0x1F7); }",
        );
        assert!(msg.contains("argument 1"), "{msg}");
    }

    #[test]
    fn assignment_to_rvalue_is_error() {
        let msg = err_of("int f(int a) { a + 1 = 2; return a; }");
        assert!(msg.contains("not an lvalue"), "{msg}");
    }

    #[test]
    fn assignment_to_const_global_is_error() {
        let msg = err_of("static const int K = 4;\nint f(void) { K = 5; return K; }");
        assert!(msg.contains("const"), "{msg}");
    }

    #[test]
    fn member_errors() {
        let msg = err_of(
            "struct S_ { int x; }; typedef struct S_ S;
             int f(void) { S s; s.x = 1; return s.y; }",
        );
        assert!(msg.contains("no member `y`"), "{msg}");
        let msg = err_of("int f(int a) { return a.x; }");
        assert!(msg.contains("non-struct"), "{msg}");
    }

    #[test]
    fn subscript_errors() {
        let msg = err_of("int f(int a) { return a[0]; }");
        assert!(msg.contains("not an array or pointer"), "{msg}");
    }

    #[test]
    fn break_continue_placement() {
        assert!(err_of("void f(void) { break; }").contains("break"));
        assert!(err_of("void f(void) { continue; }").contains("continue"));
        assert!(compile("t.c", "void f(void) { while (1) { break; } }").is_ok());
    }

    #[test]
    fn switch_duplicate_case() {
        let msg = err_of(
            "int f(int x) { switch (x) { case 1: return 0; case 1: return 1; } return 2; }",
        );
        assert!(msg.contains("duplicate case"), "{msg}");
    }

    #[test]
    fn return_type_discipline() {
        assert!(err_of("void f(void) { return 3; }").contains("void function"));
        assert!(err_of("int f(void) { return; }").contains("no value"));
    }

    #[test]
    fn global_initialiser_must_be_constant() {
        let msg = err_of("int g(void) { return 1; }\nint x = g();");
        assert!(msg.contains("constant"), "{msg}");
    }

    #[test]
    fn struct_initialiser_field_types() {
        // `const char *f = 3` warned in 2001 gcc but compiled.
        assert!(compile(
            "t.c",
            "struct S_ { const char *f; int t; }; typedef struct S_ S;
             static const S v = {3, 4};
             int use(void) { return v.t; }"
        )
        .is_ok());
        assert!(compile(
            "t.c",
            "struct S_ { const char *f; int t; }; typedef struct S_ S;
             static const S v = {\"x\", 4};
             int use(void) { return v.t; }"
        )
        .is_ok());
    }

    #[test]
    fn incomplete_struct_storage_is_error() {
        let msg = err_of("struct Fwd; // unsupported; use tag-only reference\nint f(void) { struct Fwd x; return 0; }");
        assert!(msg.contains("incomplete"), "{msg}");
    }

    #[test]
    fn generated_debug_header_shape_typechecks() {
        // A miniature of what devil-core's debug backend emits.
        let header = r#"
typedef unsigned char u8;
typedef unsigned short u16;
typedef unsigned int u32;
#define dil_assert(expr) ((expr) ? 0 : panic("Devil assertion failed in file %s line %d", __FILE__, __LINE__))
#define dil_eq(x, y) ( dil_assert(!strcmp(x.filename, y.filename) && x.type == y.type), x.val == y.val)
static u16 dil_base_base;
static u8 dil_cache_ide_select;
struct Drive_t_ { const char *filename; int type; u32 val; };
typedef struct Drive_t_ Drive_t;
static const Drive_t MASTER = {__FILE__, 4, 0x0u};
static const Drive_t SLAVE = {__FILE__, 4, 0x1u};
static void reg_set_ide_select(u8 v)
{
    outb((u8)((v & 0x5fu) | 0xa0u), dil_base_base + 6);
    dil_cache_ide_select = v & 0x5fu;
}
static u8 reg_get_ide_select(void)
{
    u8 v = (u8)inb(dil_base_base + 6);
    dil_assert((v & 0xa0u) == 0xa0u);
    return v;
}
static void set_Drive(Drive_t v)
{
    dil_assert(v.type == 4);
    dil_assert(v.val == 0x1u || v.val == 0x0u);
    reg_set_ide_select((u8)((dil_cache_ide_select & 0xefu) | (v.val << 4)));
}
static Drive_t get_Drive(void)
{
    Drive_t v;
    u32 tmp_v = ((u32)reg_get_ide_select() >> 4) & 0x1u;
    v.filename = __FILE__; v.type = 4; v.val = tmp_v;
    return v;
}
"#;
        let driver = r#"
#include "ide.dil.h"
int probe(void)
{
    set_Drive(MASTER);
    if (dil_eq(get_Drive(), MASTER)) { return 1; }
    return 0;
}
"#;
        let r = compile_with_includes("drv.c", driver, &[("ide.dil.h", header)]);
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn type_confusion_in_cdevil_is_compile_error() {
        // Passing the *wrong family's* constant — the mutation the debug
        // stubs exist to catch.
        let header = r#"
typedef unsigned int u32;
struct Drive_t_ { const char *filename; int type; u32 val; };
typedef struct Drive_t_ Drive_t;
struct Irq_t_ { const char *filename; int type; u32 val; };
typedef struct Irq_t_ Irq_t;
static const Drive_t MASTER = {__FILE__, 4, 0x0u};
static const Irq_t IRQ_ON = {__FILE__, 5, 0x1u};
static void set_Drive(Drive_t v) { (void)v; }
"#;
        let bad = "#include \"h.h\"\nvoid f(void) { set_Drive(IRQ_ON); }";
        let e = compile_with_includes("drv.c", bad, &[("h.h", header)]).unwrap_err();
        assert_eq!(e.phase, CPhase::Check);
        assert!(e.message.contains("argument 1"), "{e}");
    }
}
