//! Runtime values for the interpreter.

use std::fmt;
use std::rc::Rc;

/// Identifier of a heap object (a global, local or string allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub usize);

/// An element address: object plus element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Place {
    /// Owning object.
    pub obj: ObjId,
    /// Element index within the object.
    pub idx: usize,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Any integer (width/signedness applied on store).
    Int(i64),
    /// A struct value: ordered field values.
    Struct(Rc<Vec<Value>>),
    /// A pointer; `None` is the null pointer.
    Ptr(Option<Place>),
    /// A string literal (the runtime shape of `const char *` literals).
    /// `Rc<String>` rather than `Rc<str>`: the thin pointer keeps the
    /// whole `Value` at 16 bytes, and values move constantly on the VM's
    /// operand stack.
    Str(Rc<String>),
}

impl Value {
    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// C truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Ptr(p) => p.is_some(),
            Value::Str(_) => true,
            Value::Struct(_) => true,
        }
    }

    /// Zero value of the "same shape" (used for default initialisation).
    pub fn zero_like(&self) -> Value {
        match self {
            Value::Int(_) => Value::Int(0),
            Value::Ptr(_) => Value::Ptr(None),
            Value::Str(_) => Value::Str(Rc::new(String::new())),
            Value::Struct(fields) => {
                Value::Struct(Rc::new(fields.iter().map(Value::zero_like).collect()))
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Struct(fs) => write!(f, "{{{} fields}}", fs.len()),
            Value::Ptr(None) => f.write_str("NULL"),
            Value::Ptr(Some(p)) => write!(f, "&obj{}[{}]", p.obj.0, p.idx),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// Truncate an integer to `bits` with the given signedness — what a C store
/// into a typed object does.
pub fn wrap_int(v: i64, bits: u8, signed: bool) -> i64 {
    if bits >= 64 {
        return v;
    }
    let mask = (1i64 << bits) - 1;
    let t = v & mask;
    if signed && t & (1i64 << (bits - 1)) != 0 {
        t | !mask
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_unsigned_and_signed() {
        assert_eq!(wrap_int(0x1FF, 8, false), 0xFF);
        assert_eq!(wrap_int(0xFF, 8, true), -1);
        assert_eq!(wrap_int(0x7F, 8, true), 127);
        assert_eq!(wrap_int(-1, 16, false), 0xFFFF);
        assert_eq!(wrap_int(0x12345, 16, false), 0x2345);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Ptr(None).truthy());
        assert!(Value::Ptr(Some(Place { obj: ObjId(0), idx: 0 })).truthy());
        assert!(Value::Str(Rc::new("x".into())).truthy());
    }

    #[test]
    fn zero_like_struct() {
        let s = Value::Struct(Rc::new(vec![Value::Int(5), Value::Str(Rc::new("f".into()))]));
        let z = s.zero_like();
        let Value::Struct(fields) = z else { panic!() };
        assert_eq!(fields[0], Value::Int(0));
    }
}
