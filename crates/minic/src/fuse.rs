//! The superinstruction peephole pass.
//!
//! Rewrites each lowered function's op vector, collapsing the polling-loop
//! shapes documented in [`crate::bytecode`] into single [`Op::FusedBr`] /
//! [`Op::IncDecJmp`] dispatches. The pass is purely structural: every
//! fused op replays the exact burn sequence, side effects and fault sites
//! of the ops it replaces, so the VM stays bit-identical to the
//! tree-walking oracle with fusion on or off.
//!
//! # Branch-in safety
//!
//! A fused op occupies one index, so a jump may land on the *first* op of
//! a fused span but never inside it. Before matching, the pass collects
//! every branch-in point — explicit jump targets, switch case/default/end
//! targets — and vetoes any candidate span with an interior target. All
//! surviving targets are then remapped through the old→new index map
//! (including this function's switch tables). Loop heads are pattern
//! *starts* by construction (`emit_expr` emits the condition's `Line`
//! first), so the common back-edges still land on fused ops.
//!
//! Global initialisers are never fused: they are checker-enforced
//! constant expressions with no loops to win back.

use crate::bytecode::{
    Builtin, CompiledProgram, FuseEnd, FuseRhs, FuseSrc, FuseStage, FusedOp, Op,
};

/// Run the pass over every function of a lowered program, in place.
/// Idempotent: already-fused ops never match a pattern again.
pub fn fuse(program: &mut CompiledProgram) {
    for fidx in 0..program.funcs.len() {
        let ops = std::mem::take(&mut program.funcs[fidx].ops);
        let (ops, tables) = fuse_ops(ops, program);
        // Remap this function's switch tables (collected during the scan).
        for (table, map) in tables {
            let t = &mut program.switches[table];
            for (_, s) in &mut t.cases {
                *s = map[*s as usize];
            }
            if let Some(d) = &mut t.default {
                *d = map[*d as usize];
            }
            t.end = map[t.end as usize];
        }
        program.funcs[fidx].ops = ops;
    }
}

/// A matched replacement and the number of input ops it covers.
enum Rep {
    Fused(FusedOp),
    IncDecJmp { slot: u16, global: bool, inc: bool, line: u32, target: u32 },
    StoreField { slot: u16, fidx: u16, line: u32 },
    InlineEnter { first_slot: u16, argc: u8, coerces: u32, call_line: u32, line: u32 },
    InlineExitPop,
    InlineExitJmp { target: u32 },
    InlineExitDecl { slot: u16, coerce: crate::bytecode::Coerce },
    InlineExitStore { slot: u16, line: u32 },
}

type TableRemaps = Vec<(usize, std::rc::Rc<[u32]>)>;

fn fuse_ops(ops: Vec<Op>, program: &mut CompiledProgram) -> (Vec<Op>, TableRemaps) {
    let n = ops.len();
    // ----- branch-in points -----------------------------------------------
    let mut is_target = vec![false; n + 1];
    let mark = |t: u32, is_target: &mut Vec<bool>| {
        if let Some(slot) = is_target.get_mut(t as usize) {
            *slot = true;
        }
    };
    let mut switch_tables = Vec::new();
    for op in &ops {
        match op {
            Op::Jump { target }
            | Op::JumpIfFalse { target }
            | Op::JumpIfTrue { target }
            | Op::BrFalseConst { target }
            | Op::BrTrueConst { target }
            | Op::IncDecJmp { target, .. }
            | Op::InlineExitJmp { target } => mark(*target, &mut is_target),
            Op::FusedBr { idx } => {
                let f = &program.fused[*idx as usize];
                if f.has_target() {
                    mark(f.target, &mut is_target);
                }
            }
            Op::Switch { table } => {
                switch_tables.push(*table as usize);
                let t = &program.switches[*table as usize];
                for (_, s) in &t.cases {
                    mark(*s, &mut is_target);
                }
                if let Some(d) = t.default {
                    mark(d, &mut is_target);
                }
                mark(t.end, &mut is_target);
            }
            _ => {}
        }
    }
    // ----- scan and rebuild -----------------------------------------------
    let mut out: Vec<Op> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        let new_idx = out.len() as u32;
        match match_at(&ops, i, &is_target) {
            Some((len, rep)) => {
                for slot in &mut map[i..i + len] {
                    *slot = new_idx;
                }
                out.push(match rep {
                    Rep::Fused(f) => {
                        program.fused.push(f);
                        Op::FusedBr { idx: program.fused.len() as u32 - 1 }
                    }
                    Rep::IncDecJmp { slot, global, inc, line, target } => {
                        Op::IncDecJmp { slot, global, inc, line, target }
                    }
                    Rep::StoreField { slot, fidx, line } => {
                        Op::StoreFieldLocalPop { slot, fidx, line }
                    }
                    Rep::InlineEnter { first_slot, argc, coerces, call_line, line } => {
                        Op::InlineEnter { first_slot, argc, coerces, call_line, line }
                    }
                    Rep::InlineExitPop => Op::InlineExitPop,
                    Rep::InlineExitJmp { target } => Op::InlineExitJmp { target },
                    Rep::InlineExitDecl { slot, coerce } => Op::InlineExitDecl { slot, coerce },
                    Rep::InlineExitStore { slot, line } => Op::InlineExitStore { slot, line },
                });
                i += len;
            }
            None => {
                map[i] = new_idx;
                out.push(ops[i].clone());
                i += 1;
            }
        }
    }
    map[n] = out.len() as u32;
    // ----- remap targets --------------------------------------------------
    for op in &mut out {
        match op {
            Op::Jump { target }
            | Op::JumpIfFalse { target }
            | Op::JumpIfTrue { target }
            | Op::BrFalseConst { target }
            | Op::BrTrueConst { target }
            | Op::IncDecJmp { target, .. }
            | Op::InlineExitJmp { target } => *target = map[*target as usize],
            Op::FusedBr { idx } => {
                let f = &mut program.fused[*idx as usize];
                if f.has_target() {
                    f.target = map[f.target as usize];
                }
            }
            _ => {}
        }
    }
    let map: std::rc::Rc<[u32]> = map.into();
    (out, switch_tables.into_iter().map(|t| (t, map.clone())).collect())
}

/// Try to match a fusable span starting at `at`. Returns the span length
/// and its replacement, or `None` when nothing (profitable) matches. A
/// span is rejected when any op after its first is a branch-in point.
fn match_at(ops: &[Op], at: usize, is_target: &[bool]) -> Option<(usize, Rep)> {
    let n = ops.len();
    let clear = |end: usize| (at + 1..=end).all(|k| !is_target[k]);
    // Leading burns — counted first, materialised only on a successful
    // match (this function runs at every op of every compiled mutant, so
    // the miss path must not allocate).
    let mut j = at;
    while j < n && matches!(ops[j], Op::Line(_)) {
        j += 1;
    }
    let n_pre = j - at;
    let pre_lines = |count: usize| -> Box<[u32]> {
        ops[at..at + count]
            .iter()
            .map(|op| match op {
                Op::Line(l) => *l,
                _ => unreachable!("counted as a Line"),
            })
            .collect()
    };
    // The for-loop step + back-jump pair: exactly `Line; IncDec*Pop; Jump`.
    if n_pre == 1 && j + 1 < n {
        let step = match &ops[j] {
            Op::IncDecLocalPop { slot, inc, line } => Some((*slot, false, *inc, *line)),
            Op::IncDecGlobalPop { gidx, inc, line } => Some((*gidx, true, *inc, *line)),
            _ => None,
        };
        if let (Some((slot, global, inc, line)), Op::Jump { target }) = (step, &ops[j + 1]) {
            if clear(j + 1) {
                return Some((
                    j + 2 - at,
                    Rep::IncDecJmp { slot, global, inc, line, target: *target },
                ));
            }
        }
    }
    // A zero-argument inlined call directly after its call expression's
    // `Line`: fold the burn into the `InlineEnter` itself. (With
    // arguments, their ops separate the two and the `Line` stays.)
    if n_pre == 1 && j < n {
        if let Op::InlineEnter { first_slot, argc, coerces, call_line: u32::MAX, line } =
            ops[j]
        {
            if clear(j) {
                let Op::Line(call_line) = ops[at] else { unreachable!("counted as a Line") };
                return Some((
                    2,
                    Rep::InlineEnter { first_slot, argc, coerces, call_line, line },
                ));
            }
        }
    }
    // A discarded inlined-call result (`InlineExit; Pop`) or a nested
    // call returned straight through (`InlineExit; Jump`), in one
    // dispatch each.
    if n_pre == 0 && j + 1 < n && matches!(ops[j], Op::InlineExit) && clear(j + 1) {
        match &ops[j + 1] {
            Op::Pop => return Some((2, Rep::InlineExitPop)),
            Op::Jump { target } => {
                return Some((2, Rep::InlineExitJmp { target: *target }))
            }
            Op::DeclScalar { slot, coerce } => {
                return Some((2, Rep::InlineExitDecl { slot: *slot, coerce: *coerce }))
            }
            Op::StoreLocalPop { slot, line } => {
                return Some((2, Rep::InlineExitStore { slot: *slot, line: *line }))
            }
            _ => {}
        }
    }
    // Statement-level member store: the `PlaceLocal; MemberStep; Store;
    // Pop` tail of `local.field = <rhs>;` — no leading burn (the
    // statement's `Line` sits before the rhs), no op in the span burns,
    // and single-source-line statements give all three ops one packed
    // line, which is all `Op::StoreFieldLocalPop` carries.
    if n_pre == 0 && j + 3 < n {
        if let (
            Op::PlaceLocal { slot, line: pl },
            Op::MemberStep { fidx, line: ml },
            Op::Store { line: sl },
            Op::Pop,
        ) = (&ops[j], &ops[j + 1], &ops[j + 2], &ops[j + 3])
        {
            if pl == ml && ml == sl && clear(j + 3) {
                return Some((4, Rep::StoreField { slot: *slot, fidx: *fidx, line: *pl }));
            }
        }
    }
    // Source value.
    let src = match ops.get(j)? {
        Op::LoadLocal { slot, line } => {
            j += 1;
            FuseSrc::Local { slot: *slot, line: *line }
        }
        Op::LoadGlobal { gidx, line } => {
            j += 1;
            FuseSrc::Global { gidx: *gidx, line: *line }
        }
        Op::PlaceLocal { slot, line }
            if matches!(ops.get(j + 1), Some(Op::MemberStep { .. }))
                && matches!(ops.get(j + 2), Some(Op::ReadPlace { .. })) =>
        {
            let Some(Op::MemberStep { fidx, line: ml }) = ops.get(j + 1) else {
                unreachable!("guard matched");
            };
            j += 3;
            FuseSrc::FieldLocal { slot: *slot, fidx: *fidx, place_line: *line, line: *ml }
        }
        Op::PlaceLocal { slot, line } => {
            let Some(Op::IncDec { inc, prefix, line: op_line }) = ops.get(j + 1) else {
                return None;
            };
            j += 2;
            FuseSrc::IncDecLocal {
                slot: *slot,
                inc: *inc,
                prefix: *prefix,
                place_line: *line,
                line: *op_line,
            }
        }
        Op::PlaceGlobal { gidx, line } => {
            let Some(Op::IncDec { inc, prefix, line: op_line }) = ops.get(j + 1) else {
                return None;
            };
            j += 2;
            FuseSrc::IncDecGlobal {
                gidx: *gidx,
                inc: *inc,
                prefix: *prefix,
                place_line: *line,
                line: *op_line,
            }
        }
        Op::Const { cidx, line } => match ops.get(j + 1) {
            Some(Op::CallBuiltin { which, argc: 1, .. })
                if matches!(which, Builtin::Inb | Builtin::Inw | Builtin::Inl) =>
            {
                j += 2;
                FuseSrc::PortIn { which: *which, cidx: *cidx, port_line: *line }
            }
            _ => {
                j += 1;
                FuseSrc::ConstVal { cidx: *cidx, line: *line }
            }
        },
        Op::ConstN { cidx, seq } => {
            j += 1;
            FuseSrc::ConstSeq { cidx: *cidx, seq: *seq }
        }
        // Anything else: the value may already be on the operand stack (a
        // call result, an earlier fused push). Matched only if a folded
        // middle op below proves the unfused ops would pop right here.
        _ => FuseSrc::StackTop,
    };
    if matches!(src, FuseSrc::StackTop) && n_pre != 0 {
        // Leading `Line`s before a stack-top span belong to enclosing
        // expressions; folding them is burn-order-identical, but an
        // empty-stack mismatch is not representable, so keep the span
        // tight and let the Lines fuse with whatever produced the value.
        return None;
    }
    // A folded struct-field pick of the freshly produced value.
    let field = match ops.get(j) {
        Some(Op::MemberValue { fidx, line }) => {
            j += 1;
            Some((*fidx, *line))
        }
        _ => None,
    };
    // Up to two folded binary stages.
    let mut stages: [Option<FuseStage>; 2] = [None, None];
    for stage in &mut stages {
        *stage = match ops.get(j) {
            Some(Op::BinConst { op, cidx, rhs_line, line }) => {
                j += 1;
                Some(FuseStage {
                    op: *op,
                    rhs: FuseRhs::Const { cidx: *cidx, line: *rhs_line },
                    line: *line,
                })
            }
            Some(Op::LoadLocal { slot, line: load_line }) => match ops.get(j + 1) {
                Some(Op::Bin { op, line }) => {
                    j += 2;
                    Some(FuseStage {
                        op: *op,
                        rhs: FuseRhs::Local { slot: *slot, line: *load_line },
                        line: *line,
                    })
                }
                _ => break,
            },
            Some(Op::LoadGlobal { gidx, line: load_line }) => match ops.get(j + 1) {
                Some(Op::Bin { op, line }) => {
                    j += 2;
                    Some(FuseStage {
                        op: *op,
                        rhs: FuseRhs::Global { gidx: *gidx, line: *load_line },
                        line: *line,
                    })
                }
                _ => break,
            },
            // `Line; PlaceLocal; MemberStep; ReadPlace; Bin` — a member
            // rvalue as the right operand (`a.val == b.val`).
            Some(Op::Line(burn)) => match (ops.get(j + 1), ops.get(j + 2), ops.get(j + 3), ops.get(j + 4)) {
                (
                    Some(Op::PlaceLocal { slot, line: pl }),
                    Some(Op::MemberStep { fidx, line: ml }),
                    Some(Op::ReadPlace { .. }),
                    Some(Op::Bin { op, line }),
                ) if burn == ml => {
                    j += 5;
                    Some(FuseStage {
                        op: *op,
                        rhs: FuseRhs::FieldLocal {
                            slot: *slot,
                            fidx: *fidx,
                            place_line: *pl,
                            line: *ml,
                        },
                        line: *line,
                    })
                }
                _ => break,
            },
            _ => break,
        };
    }
    let [stage1, stage2] = stages;
    // Optional postfix unaries, in the only order lowering emits them for
    // fusable shapes: a cast of the computed value, then the `&&`/`||`
    // boolean coercion.
    let cast = match ops.get(j) {
        Some(Op::Cast { kind, line }) => {
            j += 1;
            Some((*kind, *line))
        }
        _ => None,
    };
    let coerce_bool = matches!(ops.get(j), Some(Op::CoerceBool));
    if coerce_bool {
        j += 1;
    }
    // The value's consumer: a branch, a store/declaration sink, or (when
    // nothing fusable follows) a plain push.
    let (end, target, len) = match ops.get(j) {
        Some(Op::Jump { target }) => (FuseEnd::Jump, *target, j + 1 - at),
        Some(Op::Const { cidx, line })
            if matches!(
                ops.get(j + 1),
                Some(Op::CallBuiltin { which: Builtin::Outb | Builtin::Outw | Builtin::Outl, argc: 2, .. })
            ) =>
        {
            let Some(Op::CallBuiltin { which, .. }) = ops.get(j + 1) else {
                unreachable!("guard matched");
            };
            let pop = matches!(ops.get(j + 2), Some(Op::Pop));
            let len = if pop { j + 3 - at } else { j + 2 - at };
            (FuseEnd::PortOut { which: *which, cidx: *cidx, line: *line, pop }, 0, len)
        }
        Some(Op::CallBuiltin { which, argc: 1, .. })
            if matches!(which, Builtin::Inb | Builtin::Inw | Builtin::Inl) =>
        {
            (FuseEnd::In { which: *which }, 0, j + 1 - at)
        }
        Some(Op::CallBuiltin { which, argc: 2, .. })
            if matches!(which, Builtin::Outb | Builtin::Outw | Builtin::Outl) =>
        {
            let pop = matches!(ops.get(j + 1), Some(Op::Pop));
            let len = if pop { j + 2 - at } else { j + 1 - at };
            (FuseEnd::OutDyn { which: *which, pop }, 0, len)
        }
        Some(Op::LoadLocal { slot, line: l1 })
            if matches!(
                (ops.get(j + 1), ops.get(j + 2), ops.get(j + 3)),
                (
                    Some(Op::IndexPlace { line: l2, idx_line: l3 }),
                    Some(Op::Store { line: l4 }),
                    Some(Op::Pop),
                ) if l1 == l2 && l2 == l3 && l3 == l4
            ) =>
        {
            (FuseEnd::StoreIndexLocal { slot: *slot, line: *l1 }, 0, j + 4 - at)
        }
        Some(Op::JumpIfFalse { target }) => (FuseEnd::IfFalse, *target, j + 1 - at),
        Some(Op::JumpIfTrue { target }) => (FuseEnd::IfTrue, *target, j + 1 - at),
        Some(Op::BrFalseConst { target }) => (FuseEnd::FalseConst, *target, j + 1 - at),
        Some(Op::BrTrueConst { target }) => (FuseEnd::TrueConst, *target, j + 1 - at),
        Some(Op::StoreLocalPop { slot, line }) => {
            (FuseEnd::StoreLocal { slot: *slot, line: *line }, 0, j + 1 - at)
        }
        Some(Op::StoreGlobalPop { gidx, line }) => {
            (FuseEnd::StoreGlobal { gidx: *gidx, line: *line }, 0, j + 1 - at)
        }
        Some(Op::DeclScalar { slot, coerce }) => {
            (FuseEnd::DeclScalar { slot: *slot, coerce: *coerce }, 0, j + 1 - at)
        }
        Some(Op::PlaceLocal { slot, line: pl }) => match (ops.get(j + 1), ops.get(j + 2), ops.get(j + 3)) {
            (
                Some(Op::MemberStep { fidx, line: ml }),
                Some(Op::Store { line: sl }),
                Some(Op::Pop),
            ) if pl == ml && ml == sl => (
                FuseEnd::StoreField { slot: *slot, fidx: *fidx, line: *pl },
                0,
                j + 4 - at,
            ),
            _ => (FuseEnd::Push, 0, j - at),
        },
        _ => (FuseEnd::Push, 0, j - at),
    };
    // Profitability: one dispatch must replace at least two. CoerceBool
    // alone is its own op either way, so require real content around it.
    if len < 2 || !clear(at + len - 1) {
        return None;
    }
    // A stack-top source is only sound when some folded op provably pops
    // the stack at this exact point in the unfused encoding: a middle op
    // (field pick, stage, cast, bool coercion) or a value-consuming end.
    if matches!(src, FuseSrc::StackTop)
        && field.is_none()
        && stage1.is_none()
        && cast.is_none()
        && !coerce_bool
        && matches!(end, FuseEnd::Push)
    {
        return None;
    }
    Some((
        len,
        Rep::Fused(FusedOp {
            pre: pre_lines(n_pre),
            src,
            field,
            stage1,
            stage2,
            cast,
            coerce_bool,
            end,
            target,
        }),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::interp::{Interpreter, NullHost};
    use crate::value::Value;
    use crate::vm::Vm;

    /// Run a program through the interpreter, the unfused VM and the
    /// fused VM, asserting all observables agree, for a sweep of fuel
    /// budgets (so exhaustion lands on every interesting op boundary).
    fn differential(src: &str, entry: &str, args: &[Value], fuels: &[u64]) {
        let p = compile("t.c", src).expect("test program compiles");
        let unfused = p.to_bytecode_unfused();
        let fused = p.to_bytecode();
        assert_eq!(unfused.fused_op_count(), 0);
        for &fuel in fuels {
            let mut ih = NullHost::default();
            let mut interp = Interpreter::new(&p, &mut ih, fuel);
            let want = interp.call(entry, args);
            let want_fuel = interp.fuel_left();
            let want_cov = interp.coverage().clone();
            drop(interp);
            for compiled in [&unfused, &fused] {
                let mut vh = NullHost::default();
                let mut vm = Vm::new(compiled, &mut vh, fuel);
                let got = vm.call(entry, args);
                assert_eq!(got, want, "result diverged (fuel {fuel}) for {src}");
                assert_eq!(vm.fuel_left(), want_fuel, "fuel diverged (fuel {fuel}) for {src}");
                assert_eq!(*vm.coverage(), want_cov, "coverage diverged (fuel {fuel}) for {src}");
                drop(vm);
                assert_eq!(vh.log, ih.log, "console diverged (fuel {fuel}) for {src}");
            }
        }
    }

    fn fuel_sweep() -> Vec<u64> {
        (0..120).chain([500, 10_000, 1_000_000]).collect()
    }

    #[test]
    fn polling_loop_shapes_fuse_and_stay_identical() {
        let src = "
            int f(int n) {
                int t = 0;
                int retries = 5;
                while (t < n) { t++; }
                do { t = t + 2; } while ((t & 0x100) == 0 && --retries > 0);
                while (--n > 0) { t += n & 3; }
                return t;
            }";
        let c = compile("t.c", src).unwrap().to_bytecode();
        assert!(c.fused_op_count() >= 3, "loop conditions fuse: {}", c.fused_op_count());
        differential(src, "f", &[Value::Int(9)], &fuel_sweep());
    }

    #[test]
    fn status_spin_fuses_the_port_read() {
        let src = "
            int f(void) {
                int polls = 0;
                while ((inb(0x1F7) & 0x80) == 0x80) { polls++; if (polls > 3) return -1; }
                return polls;
            }";
        let c = compile("t.c", src).unwrap().to_bytecode();
        // The spin condition (Line x3, Const, CallBuiltin, BinConst x2,
        // JumpIfFalse — 8 ops) must collapse to one dispatch.
        assert!(c.fused_op_count() >= 1);
        // NullHost floats reads at 0xFF, so the loop spins to the bail-out.
        differential(src, "f", &[], &fuel_sweep());
    }

    #[test]
    fn for_loop_step_fuses_into_incdecjmp() {
        let src = "int f(int n) { int i; int s = 0; for (i = 0; i < n; i++) { s += i; } return s; }";
        let c = compile("t.c", src).unwrap().to_bytecode();
        let has_step = c.funcs[0]
            .ops
            .iter()
            .any(|op| matches!(op, Op::IncDecJmp { .. }));
        assert!(has_step, "for-loop step+jump must fuse: {:?}", c.funcs[0].ops);
        differential(src, "f", &[Value::Int(10)], &fuel_sweep());
    }

    #[test]
    fn local_bound_compare_fuses_via_load_rhs() {
        // `i < n` compares against a *local*, exercising FuseRhs::Local.
        let src = "int f(int n) { int i = 0; while (i < n) { i++; } return i; }";
        let c = compile("t.c", src).unwrap().to_bytecode();
        let load_rhs = c.fused.iter().any(|f| {
            f.stage1
                .as_ref()
                .is_some_and(|s| matches!(s.rhs, FuseRhs::Local { .. }))
        });
        assert!(load_rhs, "load-rhs compare must fuse");
        differential(src, "f", &[Value::Int(7)], &fuel_sweep());
    }

    #[test]
    fn fused_ops_never_swallow_a_branch_in_point() {
        // In `lhs && rhs` the short-circuit BrFalseConst targets the final
        // JumpIf* directly — a branch-in point in the middle of what would
        // otherwise be a fusable rhs span. The branch op must survive as
        // its own instruction; the rhs may only fuse branchlessly.
        let src = "
            int f(int a) {
                int r = 8;
                int hits = 0;
                do { hits++; } while ((a & 1) && --r > 0);
                return hits * 100 + r;
            }";
        let p = compile("t.c", src).unwrap();
        let c = p.to_bytecode();
        // Find every short-circuit op and check its target still lands on
        // a standalone branch op (not inside a fused span).
        let mut checked = 0;
        for f in &c.funcs {
            for op in &f.ops {
                let target = match op {
                    Op::BrFalseConst { target } | Op::BrTrueConst { target } => *target,
                    Op::FusedBr { idx } => {
                        let fu = &c.fused[*idx as usize];
                        if !matches!(fu.end, FuseEnd::FalseConst | FuseEnd::TrueConst) {
                            continue;
                        }
                        fu.target
                    }
                    _ => continue,
                };
                checked += 1;
                assert!(
                    matches!(
                        f.ops[target as usize],
                        Op::JumpIfFalse { .. } | Op::JumpIfTrue { .. }
                    ),
                    "short-circuit target must stay a branch op: {:?}",
                    f.ops[target as usize]
                );
            }
        }
        assert!(checked >= 1, "test must exercise a short-circuit");
        for a in [0i64, 1, 2, 3] {
            differential(src, "f", &[Value::Int(a)], &fuel_sweep());
        }
    }

    #[test]
    fn switch_case_targets_remap_through_fusion() {
        let src = "
            int f(int x) {
                int r = 0;
                int i;
                for (i = 0; i < 3; i++) {
                    switch (x + i) {
                        case 1: r += 1;
                        case 2: r += 10; break;
                        default: r += 100;
                    }
                }
                return r;
            }";
        for x in [0i64, 1, 2, 5] {
            differential(src, "f", &[Value::Int(x)], &fuel_sweep());
        }
    }


    #[test]
    fn small_calls_inline_and_ops_stay_compact() {
        // The inlining pass must flatten small helpers (no CallUser left)
        // and none of the new encodings may grow `Op` past 16 bytes — the
        // dispatch loop streams these, so size is part of the perf
        // contract.
        assert!(std::mem::size_of::<Op>() <= 16, "Op grew: {}", std::mem::size_of::<Op>());
        let src = "
            static int helper(int a) { return a + 1; }
            int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += helper(i); return s; }";
        let c = compile("t.c", src).unwrap().to_bytecode();
        let inl = c
            .funcs
            .iter()
            .flat_map(|f| &f.ops)
            .filter(|o| matches!(o, Op::InlineEnter { .. }))
            .count();
        let calls = c
            .funcs
            .iter()
            .flat_map(|f| &f.ops)
            .filter(|o| matches!(o, Op::CallUser { .. }))
            .count();
        assert!(inl >= 1, "small helper must inline");
        assert_eq!(calls, 0, "no out-of-line call should remain");
        differential(src, "f", &[Value::Int(12)], &fuel_sweep());
        // Recursion must keep the real call machinery (and its
        // StackOverflow fault), never inline into itself.
        let rec = "int f(int n) { if (n <= 1) return 1; return n * f(n - 1); }";
        let c = compile("t.c", rec).unwrap().to_bytecode();
        let calls = c
            .funcs
            .iter()
            .flat_map(|f| &f.ops)
            .filter(|o| matches!(o, Op::CallUser { .. }))
            .count();
        assert!(calls >= 1, "recursive calls must stay out of line");
        differential(rec, "f", &[Value::Int(6)], &fuel_sweep());
    }
    #[test]
    fn fusion_is_idempotent() {
        let src = "int f(int n) { int t = 0; while (t < n) { t++; } return t; }";
        let p = compile("t.c", src).unwrap();
        let once = p.to_bytecode();
        let mut twice = p.to_bytecode();
        fuse(&mut twice);
        assert_eq!(once.fused_op_count(), twice.fused_op_count());
        assert_eq!(once.funcs[0].ops.len(), twice.funcs[0].ops.len());
    }

    #[test]
    fn faulting_fused_sources_keep_their_sites() {
        // A pointer compared against a constant faults BadValue inside the
        // fused stage exactly where the unfused Bin would.
        let src = "
            int f(void) {
                int a[4];
                int *p = a;
                int n = 0;
                while (p < 3) { n++; }
                return n;
            }";
        differential(src, "f", &[], &fuel_sweep());
    }
}
